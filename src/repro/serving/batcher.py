"""Timeout-or-full dynamic batching as a deterministic event simulation.

The batcher coalesces queued requests into accelerator flushes: a batch
opens when the server frees up and the head request has arrived, admits
later arrivals until either the batch cap is hit (*full* flush, priced
immediately) or the flush timeout measured from the head request's arrival
expires (*timeout* flush), and each flush is priced as **one**
``infer_batch`` pass — N states ride a single PCIe round trip and one
amortised forward pass, the marginal-request economics
``FixarPlatform.infer_batch`` already models.  Time is entirely modelled:
the simulation advances a server-free clock from flush to flush, so the
same queue contents always produce the same flush plan.

The default timeout is derived from the latency SLO: ``slo_seconds`` minus
the cap-sized flush's service time, i.e. the longest the head request can
wait and still complete inside its SLO when its flush fills to the cap.
With ``batch_cap=1`` every flush is a singleton priced the moment the
server and the request are both ready — bit-exact with a sequential
``infer_batch(1)`` loop, the equivalence the property suite pins.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Tuple

from .request_queue import InferenceRequest, RequestQueue

__all__ = ["BatchFlush", "DynamicBatcher"]


@dataclass(frozen=True)
class BatchFlush:
    """One priced flush: which requests rode it and what it cost.

    Carries only plain tuples and floats, so whole flush plans (and the
    :class:`~repro.serving.server.ServingReport` built from them) compare
    with ``==`` — the exact-equality determinism tests rely on that.
    """

    request_ids: Tuple[int, ...]
    arrival_seconds: Tuple[float, ...]
    flush_seconds: float
    service_seconds: float
    completion_seconds: float
    pcie_bytes: int
    energy_joules: float

    @property
    def batch_size(self) -> int:
        return len(self.request_ids)

    @property
    def latencies(self) -> Tuple[float, ...]:
        """Modelled arrival-to-completion latency of each rider."""
        return tuple(
            self.completion_seconds - arrival for arrival in self.arrival_seconds
        )


class DynamicBatcher:
    """Coalesces a request queue into SLO-bounded accelerator flushes.

    ``platform`` is any object with the serving oracle surface —
    ``serving_round_seconds`` and ``infer_batch`` — so a single
    :class:`~repro.platform.FixarPlatform` and a sharding
    :class:`~repro.platform.AcceleratorPool` are interchangeable here,
    exactly like at the rollout engine's pricing joint.
    """

    def __init__(
        self,
        platform,
        batch_cap: int,
        slo_seconds: float,
        timeout_seconds=None,
    ):
        if batch_cap < 1:
            raise ValueError(f"batch_cap must be >= 1, got {batch_cap}")
        if slo_seconds <= 0:
            raise ValueError(f"slo_seconds must be positive, got {slo_seconds}")
        self.platform = platform
        self.batch_cap = int(batch_cap)
        self.slo_seconds = float(slo_seconds)
        if timeout_seconds is None:
            timeout_seconds = max(
                0.0,
                self.slo_seconds - platform.serving_round_seconds(self.batch_cap),
            )
        if timeout_seconds < 0:
            raise ValueError(
                f"timeout_seconds must be non-negative, got {timeout_seconds}"
            )
        self.timeout_seconds = float(timeout_seconds)

    def drain(
        self, queue: RequestQueue
    ) -> Iterator[Tuple[List[InferenceRequest], BatchFlush]]:
        """Drain the queue into priced flushes, FIFO within and across.

        Yields ``(requests, flush)`` pairs in service order.  The event
        loop per flush: the batch opens at ``max(server free,
        head arrival)``; requests already waiting (or arriving before the
        head's ``arrival + timeout`` deadline) join until the cap; a full
        batch flushes as soon as its last rider and the server are both
        ready, a partial one at the deadline (or at open time when the
        backlog already blew past it).
        """
        free_at = 0.0
        while True:
            head_batch = queue.pop_batch(1)
            if not head_batch:
                return
            head = head_batch[0]
            open_seconds = max(free_at, head.arrival_seconds)
            deadline = head.arrival_seconds + self.timeout_seconds
            join_by = max(open_seconds, deadline)
            batch = [head]
            while len(batch) < self.batch_cap:
                candidate = queue.peek()
                if candidate is None or candidate.arrival_seconds > join_by:
                    break
                batch.extend(queue.pop_batch(1))
            if len(batch) == self.batch_cap:
                flush_at = max(open_seconds, batch[-1].arrival_seconds)
            else:
                flush_at = join_by
            report = self.platform.infer_batch(len(batch))
            service = self.platform.serving_round_seconds(len(batch))
            completion = flush_at + service
            flush = BatchFlush(
                request_ids=tuple(request.request_id for request in batch),
                arrival_seconds=tuple(
                    request.arrival_seconds for request in batch
                ),
                flush_seconds=flush_at,
                service_seconds=service,
                completion_seconds=completion,
                pcie_bytes=report.pcie_bytes,
                energy_joules=report.energy_joules,
            )
            free_at = completion
            yield batch, flush

    def plan(self, queue: RequestQueue) -> List[BatchFlush]:
        """The full flush plan of a queue (drains it), without the requests."""
        return [flush for _batch, flush in self.drain(queue)]
