"""Seeded synthetic load generation — Poisson-like arrivals, no wall clock.

An open-loop traffic model: inter-arrival gaps are exponential draws at
the offered QPS (the memoryless arrivals of a Poisson process) and each
request carries a seeded Gaussian state vector.  Everything comes from one
explicitly seeded ``np.random.default_rng`` stream, so two generators
built with the same ``(seed, qps, state_dim)`` emit bit-identical traces
forever — the determinism the serving property suite pins and the
``deterministic-oracles`` lint rule enforces over ``repro/serving/``.
"""

from __future__ import annotations

from typing import List

import numpy as np

from .request_queue import InferenceRequest, RequestQueue

__all__ = ["SyntheticLoadGenerator"]


class SyntheticLoadGenerator:
    """Deterministic request traffic at a configured offered load.

    Parameters
    ----------
    state_dim:
        Width of each request's state vector (the benchmark's state_dim).
    qps:
        Offered load — the mean arrival rate in requests per modelled
        second (exponential gaps with scale ``1 / qps``).
    seed:
        Seed of the private RNG stream; the whole trace (gaps *and*
        states) is a pure function of it.
    state_scale:
        Standard deviation of the Gaussian state entries.
    """

    def __init__(
        self,
        state_dim: int,
        qps: float,
        seed: int = 0,
        state_scale: float = 1.0,
    ):
        if state_dim <= 0:
            raise ValueError(f"state_dim must be positive, got {state_dim}")
        if qps <= 0:
            raise ValueError(f"qps must be positive, got {qps}")
        self.state_dim = int(state_dim)
        self.qps = float(qps)
        self.seed = int(seed)
        self.state_scale = float(state_scale)

    def generate(self, num_requests: int) -> List[InferenceRequest]:
        """The first ``num_requests`` of the trace, arrival-sorted.

        Request ids are the 0-based arrival ranks, so FIFO queue order,
        arrival order, and id order all coincide — the invariant the
        batcher's conservation tests lean on.
        """
        if num_requests <= 0:
            raise ValueError(f"num_requests must be positive, got {num_requests}")
        rng = np.random.default_rng(self.seed)
        gaps = rng.exponential(scale=1.0 / self.qps, size=num_requests)
        arrivals = np.cumsum(gaps)
        states = self.state_scale * rng.standard_normal(
            (num_requests, self.state_dim)
        )
        return [
            InferenceRequest(
                request_id=index,
                state=states[index],
                arrival_seconds=float(arrivals[index]),
            )
            for index in range(num_requests)
        ]

    def fill(self, queue: RequestQueue, num_requests: int) -> List[InferenceRequest]:
        """Generate a trace and enqueue it; returns the generated requests."""
        requests = self.generate(num_requests)
        queue.enqueue_many(requests)
        return requests
