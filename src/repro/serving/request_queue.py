"""The request queue feeding the policy-serving front end.

Serving mirrors the collection subsystem's concurrency shape: producers
(the load front end) enqueue inference requests while the dynamic batcher
drains them flush by flush, exactly like async collectors ``add_batch``-ing
into the :class:`~repro.rl.replay_buffer.ReplayBuffer` while the learner
samples.  The queue therefore follows the same lock discipline — every
state mutation happens inside ``with self._lock`` — and the
``lock-discipline`` lint rule statically covers :class:`RequestQueue`
alongside ``ReplayBuffer``.

Arrival time is *modelled* seconds from the load generator's seeded
stream, never a wall clock: the whole serving path sits inside the
``deterministic-oracles`` lint scope.
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass
from typing import Deque, Iterable, List, Optional

import numpy as np

__all__ = ["InferenceRequest", "RequestQueue"]


@dataclass(frozen=True)
class InferenceRequest:
    """One state vector awaiting an action, stamped with its modelled arrival."""

    request_id: int
    state: np.ndarray
    arrival_seconds: float


class RequestQueue:
    """Thread-safe FIFO of :class:`InferenceRequest`, the batcher's source.

    The conservation counters (``enqueued_total`` / ``popped_total``) let
    property tests pin that every request enqueued is popped exactly once
    — the serving-side equivalent of the replay buffer's torn-transition
    guarantees.
    """

    def __init__(self):
        self._lock = threading.RLock()
        self._requests: Deque[InferenceRequest] = deque()
        self._enqueued = 0
        self._popped = 0

    def enqueue(self, request: InferenceRequest) -> None:
        """Append one request to the tail."""
        with self._lock:
            self._requests.append(request)
            self._enqueued += 1

    def enqueue_many(self, requests: Iterable[InferenceRequest]) -> int:
        """Append requests in iteration order; returns how many joined."""
        with self._lock:
            count = 0
            for request in requests:
                self._requests.append(request)
                count += 1
            self._enqueued += count
            return count

    def peek(self) -> Optional[InferenceRequest]:
        """The head request without removing it (``None`` when empty)."""
        with self._lock:
            return self._requests[0] if self._requests else None

    def pop_batch(self, max_size: int) -> List[InferenceRequest]:
        """Remove and return up to ``max_size`` requests, FIFO order.

        One atomic critical section: a concurrent enqueue lands either
        entirely before or entirely after the pop, never interleaved —
        the race the threaded stress test pins.
        """
        if max_size <= 0:
            raise ValueError(f"max_size must be positive, got {max_size}")
        with self._lock:
            batch: List[InferenceRequest] = []
            while self._requests and len(batch) < max_size:
                batch.append(self._requests.popleft())
            self._popped += len(batch)
            return batch

    def __len__(self) -> int:
        with self._lock:
            return len(self._requests)

    @property
    def enqueued_total(self) -> int:
        """Requests ever enqueued (conservation counter)."""
        with self._lock:
            return self._enqueued

    @property
    def popped_total(self) -> int:
        """Requests ever popped (conservation counter)."""
        with self._lock:
            return self._popped
