"""The policy server: a checkpointed actor behind the dynamic batcher.

``PolicyServer`` is the serving front end's top object: it wraps a
detached :class:`~repro.rl.workers.ActorPolicy` (never the learner's
mutable networks), prices every flush on a platform oracle re-priced
through :meth:`~repro.platform.FixarPlatform.with_precision_state` for the
actor's restored precision plan, and folds a drained flush plan into a
:class:`ServingReport` — modelled QPS, p50/p99 latency, per-request PCIe
payload, SLO attainment.  The restore path rebuilds a compatible agent
from a checkpoint alone (hidden sizes inferred from the saved actor
parameter shapes, numerics from the metadata), so a run checkpointed
mid-way through a per-layer precision schedule serves — and is priced —
with its partially-switched quantizers intact.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..nn import DynamicFixedPointNumerics, make_numerics
from ..rl import (
    ActorPolicy,
    DDPGAgent,
    DDPGConfig,
    TD3Agent,
    TD3Config,
    load_agent_into,
)
from .batcher import BatchFlush, DynamicBatcher
from .load import SyntheticLoadGenerator
from .request_queue import InferenceRequest, RequestQueue

__all__ = [
    "ServingConfig",
    "ServingReport",
    "ServingResult",
    "PolicyServer",
    "restore_serving_agent",
]

#: Placements accepted by :class:`ServingConfig` (the pool's vocabulary).
_SERVING_PLACEMENTS = ("colocated", "disaggregated")


@dataclass(frozen=True)
class ServingConfig:
    """Knobs of one serving run.

    Mirrors ``TrainingConfig``'s CLI contract: every field either has a
    ``repro serve`` flag or a documented exclusion in ``cli.py``'s
    ``SERVING_FIELDS_WITHOUT_FLAGS``, statically checked by the
    ``config-cli-parity`` lint rule.
    """

    num_requests: int = 512
    qps: float = 2000.0
    slo_seconds: float = 0.02
    batch_cap: int = 8
    seed: int = 0
    devices: int = 1
    placement: str = "colocated"
    #: Flush timeout; ``None`` derives SLO minus the cap-sized service time.
    timeout_seconds: Optional[float] = None

    def __post_init__(self):
        if self.num_requests < 1:
            raise ValueError(f"num_requests must be >= 1, got {self.num_requests}")
        if self.qps <= 0:
            raise ValueError(f"qps must be positive, got {self.qps}")
        if self.slo_seconds <= 0:
            raise ValueError(f"slo_seconds must be positive, got {self.slo_seconds}")
        if self.batch_cap < 1:
            raise ValueError(f"batch_cap must be >= 1, got {self.batch_cap}")
        if self.devices < 1:
            raise ValueError(f"devices must be >= 1, got {self.devices}")
        if self.placement not in _SERVING_PLACEMENTS:
            raise ValueError(
                f"unknown placement {self.placement!r}; "
                f"choose from {_SERVING_PLACEMENTS}"
            )
        if self.timeout_seconds is not None and self.timeout_seconds < 0:
            raise ValueError(
                f"timeout_seconds must be non-negative, got {self.timeout_seconds}"
            )


def _nearest_rank(sorted_values: Sequence[float], quantile: float) -> float:
    """Nearest-rank quantile — deterministic, interpolation-free."""
    index = max(0, math.ceil(quantile * len(sorted_values)) - 1)
    return sorted_values[min(index, len(sorted_values) - 1)]


@dataclass(frozen=True)
class ServingReport:
    """Modelled outcome of one serving run, built from the flush plan.

    Pure tuples and floats, so two runs with identical inputs produce
    reports that compare equal with ``==`` — the determinism pin of the
    property suite.  Latency aggregates are derived properties of the
    flushes, never stored, so the report cannot disagree with its plan.
    """

    num_requests: int
    batch_cap: int
    slo_seconds: float
    timeout_seconds: float
    flushes: Tuple[BatchFlush, ...]

    @property
    def num_flushes(self) -> int:
        return len(self.flushes)

    @property
    def mean_batch_size(self) -> float:
        return self.num_requests / self.num_flushes

    @property
    def makespan_seconds(self) -> float:
        """Modelled time from the epoch to the last flush's completion."""
        return max(flush.completion_seconds for flush in self.flushes)

    @property
    def qps(self) -> float:
        """Modelled served throughput over the whole run."""
        return self.num_requests / self.makespan_seconds

    @property
    def latencies(self) -> Tuple[float, ...]:
        """Per-request modelled latency, in request-id (arrival) order."""
        ordered = sorted(
            (request_id, latency)
            for flush in self.flushes
            for request_id, latency in zip(flush.request_ids, flush.latencies)
        )
        return tuple(latency for _request_id, latency in ordered)

    @property
    def p50_seconds(self) -> float:
        return _nearest_rank(sorted(self.latencies), 0.50)

    @property
    def p99_seconds(self) -> float:
        return _nearest_rank(sorted(self.latencies), 0.99)

    @property
    def max_latency_seconds(self) -> float:
        return max(self.latencies)

    @property
    def pcie_bytes(self) -> int:
        """Total PCIe payload across every flush."""
        return sum(flush.pcie_bytes for flush in self.flushes)

    @property
    def pcie_bytes_per_request(self) -> float:
        """Marginal PCIe payload of one served request."""
        return self.pcie_bytes / self.num_requests

    @property
    def energy_joules(self) -> float:
        return sum(flush.energy_joules for flush in self.flushes)

    @property
    def slo_violations(self) -> int:
        return sum(1 for latency in self.latencies if latency > self.slo_seconds)

    @property
    def slo_attainment(self) -> float:
        return 1.0 - self.slo_violations / self.num_requests

    def summary(self) -> Dict[str, float]:
        """The headline numbers, as printed by ``repro serve``."""
        return {
            "qps": self.qps,
            "p50_ms": self.p50_seconds * 1e3,
            "p99_ms": self.p99_seconds * 1e3,
            "max_latency_ms": self.max_latency_seconds * 1e3,
            "mean_batch": self.mean_batch_size,
            "pcie_bytes_per_request": self.pcie_bytes_per_request,
            "slo_attainment": self.slo_attainment,
        }


@dataclass(frozen=True, eq=False)
class ServingResult:
    """A report plus the served actions (request-id order)."""

    report: ServingReport
    actions: np.ndarray


def restore_serving_agent(path: Union[str, Path]):
    """Rebuild a compatible agent from a checkpoint alone.

    ``load_agent_into`` needs an already-shaped agent; the serving path
    has only the ``.npz``, so the hidden sizes are inferred from the saved
    actor weight shapes (each dense weight is ``(in_features,
    out_features)``) and the numerics from the metadata's regime name.
    Returns ``(agent, metadata)`` with the checkpoint fully restored —
    including any partially-switched per-layer quantizers.
    """
    path = Path(path)
    with np.load(path, allow_pickle=False) as archive:
        metadata = json.loads(
            bytes(archive["__metadata__"].tobytes()).decode("utf-8")
        )
        weight_keys = sorted(
            (
                key
                for key in archive.files
                if key.startswith("actor::") and key.endswith(".weight")
            ),
            key=lambda key: int(key.split("::", 1)[1].split(".", 1)[0]),
        )
        hidden_sizes = tuple(
            int(archive[key].shape[1]) for key in weight_keys[:-1]
        )
    regime = metadata["numerics"]["name"]
    num_bits = int(metadata["numerics"].get("num_bits") or 16)
    numerics = make_numerics(regime, num_bits=num_bits)
    state_dim = int(metadata["state_dim"])
    action_dim = int(metadata["action_dim"])
    agent_class = metadata["agent_class"]
    rng = np.random.default_rng(0)  # init values are overwritten by the load
    if agent_class == "DDPGAgent":
        agent = DDPGAgent(
            state_dim,
            action_dim,
            DDPGConfig(hidden_sizes=hidden_sizes),
            numerics=numerics,
            rng=rng,
        )
    elif agent_class == "TD3Agent":
        agent = TD3Agent(
            state_dim,
            action_dim,
            TD3Config(hidden_sizes=hidden_sizes),
            numerics=numerics,
            rng=rng,
        )
    else:
        raise ValueError(f"checkpoint holds an unknown agent class {agent_class!r}")
    load_agent_into(agent, path)
    return agent, metadata


def _precision_state(numerics) -> Optional[Dict]:
    """The platform-prices precision state of an agent's numerics.

    Dynamic regimes expose their resolved per-layer profile; static
    fixed-point regimes collapse to a uniform state at their activation
    width (fixed16 serves with the half-precision PCIe payload).  Float
    numerics price as the legacy full-precision platform.
    """
    if isinstance(numerics, DynamicFixedPointNumerics):
        return numerics.precision_profile()
    bits = numerics.describe().get("activation_bits")
    if bits is None:
        return None
    return {"default": int(bits), "layers": {}}


class PolicyServer:
    """Serves a detached actor through the dynamic batcher, priced end to end.

    ``platform`` may be a single :class:`~repro.platform.FixarPlatform` or
    an :class:`~repro.platform.AcceleratorPool` — the batcher only touches
    the shared oracle surface, so a pool shards each flush over its
    collection devices with state-count conservation.
    """

    def __init__(self, policy: ActorPolicy, platform, config: ServingConfig):
        self.policy = policy
        self.platform = platform
        self.config = config
        self.batcher = DynamicBatcher(
            platform,
            batch_cap=config.batch_cap,
            slo_seconds=config.slo_seconds,
            timeout_seconds=config.timeout_seconds,
        )

    @classmethod
    def from_agent(
        cls, agent, platform, config: ServingConfig, rng_seed: int = 0
    ) -> "PolicyServer":
        """Wrap an agent's actor replica, re-pricing for its precision state."""
        state = _precision_state(agent.numerics)
        if state is not None:
            platform = platform.with_precision_state(state)
        policy = ActorPolicy.from_agent(
            agent, rng=np.random.default_rng(rng_seed)
        )
        return cls(policy, platform, config)

    @classmethod
    def from_checkpoint(
        cls, path: Union[str, Path], platform, config: ServingConfig
    ) -> "PolicyServer":
        """Restore a checkpointed actor straight into a server."""
        agent, _metadata = restore_serving_agent(path)
        return cls.from_agent(agent, platform, config)

    def serve(self, requests: Sequence[InferenceRequest]) -> ServingResult:
        """Serve a request trace through the queue and batcher.

        Requests flow through a fresh :class:`RequestQueue` (arrival
        order), the batcher drains it into priced flushes, and each
        flush's states take one batched actor forward.  Actions come back
        in request-id order.
        """
        requests = list(requests)
        if not requests:
            raise ValueError("serve() needs at least one request")
        queue = RequestQueue()
        queue.enqueue_many(requests)
        flushes: List[BatchFlush] = []
        chunks: List[np.ndarray] = []
        order: List[int] = []
        for batch, flush in self.batcher.drain(queue):
            states = np.stack([request.state for request in batch])
            chunks.append(self.policy.act_batch(states))
            order.extend(request.request_id for request in batch)
            flushes.append(flush)
        actions = np.concatenate(chunks, axis=0)
        ranks = np.argsort(np.asarray(order), kind="stable")
        report = ServingReport(
            num_requests=len(requests),
            batch_cap=self.config.batch_cap,
            slo_seconds=self.config.slo_seconds,
            timeout_seconds=self.batcher.timeout_seconds,
            flushes=tuple(flushes),
        )
        return ServingResult(report=report, actions=actions[ranks])

    def serve_load(
        self, load: SyntheticLoadGenerator, num_requests: Optional[int] = None
    ) -> ServingResult:
        """Generate a seeded trace and serve it."""
        count = self.config.num_requests if num_requests is None else num_requests
        return self.serve(load.generate(count))
