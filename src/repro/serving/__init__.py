"""Policy-serving front end: request queue, dynamic batcher, policy server.

The "millions of users" story needs an inference *service*, not just
training loops.  This package models one deterministically: a seeded
synthetic load generator feeds a thread-safe :class:`RequestQueue`, a
:class:`DynamicBatcher` coalesces requests up to the accelerator's batch
sweet spot under a latency SLO (timeout-or-full flushes, each priced as
one ``infer_batch`` pass on a :class:`~repro.platform.FixarPlatform` or a
sharding :class:`~repro.platform.AcceleratorPool`), and a
:class:`PolicyServer` restores a checkpointed — possibly partially
precision-switched — actor and serves it through
``with_precision_state``-priced oracles into a :class:`ServingReport`
(modelled QPS, p50/p99, per-request PCIe payload, SLO attainment).
"""

from .batcher import BatchFlush, DynamicBatcher
from .load import SyntheticLoadGenerator
from .request_queue import InferenceRequest, RequestQueue
from .server import (
    PolicyServer,
    ServingConfig,
    ServingReport,
    ServingResult,
    restore_serving_agent,
)

__all__ = [
    "InferenceRequest",
    "RequestQueue",
    "SyntheticLoadGenerator",
    "BatchFlush",
    "DynamicBatcher",
    "ServingConfig",
    "ServingReport",
    "ServingResult",
    "PolicyServer",
    "restore_serving_agent",
]
