"""Swimmer-like benchmark (8-dimensional state, 2-dimensional action).

The paper's Swimmer benchmark has an 8-dimensional state and a 2-dimensional
action.  Swimmer never falls; its dynamics are more heavily damped than
HalfCheetah's (a swimmer coasts slowly), so the achievable reward level is
lower — consistent with the modest Swimmer returns typical of DDPG.
"""

from __future__ import annotations

from typing import Optional

from .locomotion import LocomotionConfig, LocomotionEnv

__all__ = ["SwimmerEnv"]


class SwimmerEnv(LocomotionEnv):
    """Synthetic Swimmer: undulate forward through a viscous medium."""

    STATE_DIM = 8
    ACTION_DIM = 2

    def __init__(self, seed: Optional[int] = None, max_episode_steps: int = 1000):
        config = LocomotionConfig(
            state_dim=self.STATE_DIM,
            action_dim=self.ACTION_DIM,
            gain=0.5,
            damping=0.15,
            control_cost=0.0001,
            posture_dim=3,
            posture_coupling=0.2,
            posture_decay=0.95,
            fall_threshold=None,
            alive_bonus=0.0,
            max_episode_steps=max_episode_steps,
            structure_seed=8,
        )
        super().__init__(config, seed=seed, name="Swimmer")
