"""Lock-step vectorized execution of N registered environments.

FIXAR's adaptive data-level parallelism only pays off when the platform is
fed batches: one actor inference for N states instead of N single-state
round-trips.  :class:`VectorEnv` supplies the environment half of that
bargain — it steps N environments in lock-step, auto-resets finished
episodes, and seeds every environment independently (``seed + i``), so a
batched rollout observes exactly the trajectories N scalar environments
would have produced.

Two execution paths back the same API:

* **vectorized** — when every environment is a
  :class:`~repro.envs.locomotion.LocomotionEnv` with an identical
  configuration, the physics runs through the batched
  :class:`~repro.envs.locomotion.LocomotionDynamics` kernel: one set of
  ``(N, ...)`` array operations per step, with only the per-environment RNG
  draws left in a Python loop.  Because the kernel's reductions are bitwise
  batch-invariant and each environment keeps its own generator, the
  trajectories are *bitwise identical* to scalar stepping — the property
  ``tests/test_vector_env.py`` enforces for every N.  In this mode the
  wrapped environment objects act as seed/metadata templates; their
  per-episode scalar state is not kept in sync (their RNGs are the
  authoritative streams).
* **loop** — arbitrary :class:`~repro.envs.base.Environment` objects are
  stepped one by one.  Slower, but supports heterogeneous or custom
  environments with the same auto-reset semantics.

Auto-reset follows the training loop's convention: when an episode ends,
``step`` returns the *reset* observation for that slot and stashes the
terminal observation in ``infos[i]["final_observation"]`` so replay buffers
can store the true transition.
"""

from __future__ import annotations

from dataclasses import dataclass
from time import perf_counter
from typing import Dict, List, Optional, Sequence, Union

import numpy as np

from .base import Environment, StepResult
from .locomotion import LocomotionEnv
from .registry import make as make_env

__all__ = ["VectorStepResult", "LazyInfos", "VectorEnv"]


class LazyInfos:
    """On-demand per-environment info dicts for one vectorized lock-step.

    The eager path boxed five floats/bools into N fresh dicts every
    lock-step, and the only consumer on the hot path — the rollout engine —
    reads nothing but ``final_observation`` on done rows.  This sequence
    defers the boxing: it holds references to the step's output arrays and
    materialises ``infos[i]`` only when indexed, producing exactly the dict
    the eager path produced (``tests/test_profiling.py`` pins the
    equivalence against the scalar oracle).

    Each access builds a fresh dict, so mutations of a returned dict do not
    persist across accesses; the engine and the test suites only read.
    ``final_observations`` exposes the done rows' terminal observations
    directly (``{row: observation}``) so the engine can patch ``next_states``
    without materialising any dict.
    """

    __slots__ = (
        "_velocity",
        "_posture_norms",
        "_control_costs",
        "_fallen",
        "_truncated",
        "_final",
    )

    def __init__(
        self,
        velocity: np.ndarray,
        posture_norms: np.ndarray,
        control_costs: np.ndarray,
        fallen: np.ndarray,
        truncated: np.ndarray,
        final: Optional[Dict[int, np.ndarray]],
    ):
        self._velocity = velocity
        self._posture_norms = posture_norms
        self._control_costs = control_costs
        self._fallen = fallen
        self._truncated = truncated
        self._final = final

    @property
    def final_observations(self) -> Dict[int, np.ndarray]:
        """Terminal observations of the rows that finished, ``{row: obs}``."""
        final = self._final
        return {} if final is None else final

    def __len__(self) -> int:
        return self._velocity.shape[0]

    def __getitem__(self, index: int) -> dict:
        n = self._velocity.shape[0]
        i = int(index)
        if i < 0:
            i += n
        if not 0 <= i < n:
            raise IndexError(f"info index {index} out of range for {n} envs")
        fallen = self._fallen[i]
        info = {
            "velocity": float(self._velocity[i]),
            "posture_norm": float(self._posture_norms[i]),
            "control_cost": float(self._control_costs[i]),
            "terminated": bool(fallen),
            "truncated": bool(self._truncated[i] and not fallen),
        }
        final = self._final
        if final is not None:
            observation = final.get(i)
            if observation is not None:
                info["final_observation"] = observation
        return info

    def __iter__(self):
        for i in range(len(self)):
            yield self[i]


@dataclass(frozen=True)
class VectorStepResult:
    """The outcome of one lock-step across all environments.

    ``observations`` already reflect auto-resets (they are what the policy
    should act on next); the pre-reset terminal observation of a finished
    episode lives in ``infos[i]["final_observation"]``.  On the vectorized
    path ``infos`` is a :class:`LazyInfos` (dict-per-index on demand); the
    loop path returns a plain list of dicts.
    """

    observations: np.ndarray
    rewards: np.ndarray
    dones: np.ndarray
    infos: Sequence[dict]

    def __iter__(self):
        """Allow ``obs, rewards, dones, infos = vec_env.step(actions)``."""
        return iter((self.observations, self.rewards, self.dones, self.infos))


class VectorEnv:
    """Steps N environments in lock-step with auto-reset.

    Parameters
    ----------
    envs:
        The environments to drive.  All must share observation and action
        spaces.
    vectorized:
        Force (``True``) or forbid (``False``) the batched locomotion fast
        path; ``None`` auto-detects (homogeneous ``LocomotionEnv`` configs).
    """

    def __init__(
        self,
        envs: Sequence[Environment],
        *,
        vectorized: Optional[bool] = None,
    ):
        envs = list(envs)
        if not envs:
            raise ValueError("VectorEnv needs at least one environment")
        first = envs[0]
        for env in envs[1:]:
            if (
                env.observation_space != first.observation_space
                or env.action_space != first.action_space
            ):
                raise ValueError("all environments must share the same spaces")
        self.envs: List[Environment] = envs
        self.num_envs = len(envs)
        self.observation_space = first.observation_space
        self.action_space = first.action_space
        self.name = first.name

        eligible = all(
            isinstance(env, LocomotionEnv) and env.config == first.config
            for env in envs
        ) and isinstance(first, LocomotionEnv)
        if vectorized and not eligible:
            raise ValueError(
                "vectorized=True requires homogeneous LocomotionEnv instances"
            )
        self._vectorized = eligible if vectorized is None else vectorized

        if self._vectorized:
            cfg = first.config
            self._dynamics = first._dynamics
            self._rngs = [env._rng for env in envs]
            n = self.num_envs
            self._velocity = np.zeros(n)
            self._phase = np.zeros(n)
            self._posture = np.zeros((n, cfg.posture_dim))
            self._previous_action = np.zeros((n, cfg.action_dim))
            self._elapsed = np.zeros(n, dtype=np.int64)
            # Hot-path scratch and hoisted lookups: the per-step noise
            # buffers are refilled in place, _previous_action double-buffers
            # through _action_scratch (no per-step actions.copy()), and the
            # config / bound-method lookups happen once here instead of
            # every lock-step.
            self._cfg = cfg
            self._max_steps = first.max_episode_steps
            self._rows = np.arange(n)
            self._posture_noise = np.empty((n, cfg.posture_dim))
            self._velocity_noise = np.empty(n)
            self._obs_noise = np.empty((n, cfg.state_dim))
            self._action_scratch = np.zeros((n, cfg.action_dim))
            self._dynamics_step = self._dynamics.step
            self._dynamics_observe = self._dynamics.observe
        self._clip = self.action_space.clip
        self._step_shape = (self.num_envs, self.action_space.dim)
        #: Optional :class:`~repro.rl.profiling.StageTimers`; attached by
        #: ``RolloutEngine.set_profiler``, never constructed here.
        self.profiler = None
        self._needs_reset = True

    # ------------------------------------------------------------------ #
    # Construction helpers
    # ------------------------------------------------------------------ #
    @classmethod
    def make(
        cls,
        benchmark: str,
        num_envs: int,
        seed: Optional[int] = None,
        *,
        vectorized: Optional[bool] = None,
        **kwargs,
    ) -> "VectorEnv":
        """Build N copies of a registered benchmark, seeded ``seed + i``."""
        if num_envs <= 0:
            raise ValueError(f"num_envs must be positive, got {num_envs}")
        seeds = cls.spawn_seeds(seed, num_envs)
        envs = [make_env(benchmark, seed=s, **kwargs) for s in seeds]
        return cls(envs, vectorized=vectorized)

    @classmethod
    def from_template(
        cls,
        env: Environment,
        num_envs: int,
        seed: Optional[int] = None,
        *,
        vectorized: Optional[bool] = None,
    ) -> "VectorEnv":
        """Build N fresh siblings of an existing environment instance.

        Tries ``type(env)(seed=..., max_episode_steps=...)`` first (the
        benchmark subclasses' signature), then the registry by name.  The
        replicas must come out as the *same class* as the template —
        otherwise (e.g. a wrapped environment whose ``name`` resolves to the
        bare registry benchmark) replication would silently change the
        training dynamics, so it raises instead; pass a prebuilt
        :class:`VectorEnv` of the wrapped environments in that case.
        """
        if num_envs <= 0:
            raise ValueError(f"num_envs must be positive, got {num_envs}")
        seeds = cls.spawn_seeds(seed, num_envs)
        try:
            envs = [
                type(env)(seed=s, max_episode_steps=env.max_episode_steps)
                for s in seeds
            ]
        except TypeError:
            try:
                envs = [make_env(env.name, seed=s) for s in seeds]
            except KeyError:
                raise ValueError(
                    f"cannot replicate {type(env).__name__}: it takes neither the "
                    "(seed, max_episode_steps) signature nor a registered name"
                ) from None
            if type(envs[0]) is not type(env):
                raise ValueError(
                    f"cannot replicate {type(env).__name__}: the registry builds "
                    f"{type(envs[0]).__name__} for {env.name!r}, which would drop "
                    "the template's wrapping/configuration — construct the "
                    "environments yourself and pass a VectorEnv"
                )
        return cls(envs, vectorized=vectorized)

    @staticmethod
    def spawn_seeds(seed: Optional[int], num_envs: int) -> List[Optional[int]]:
        """The per-environment seeding rule: ``seed + i`` (or all-None)."""
        if seed is None:
            return [None] * num_envs
        return [seed + i for i in range(num_envs)]

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def state_dim(self) -> int:
        return self.observation_space.dim

    @property
    def action_dim(self) -> int:
        return self.action_space.dim

    @property
    def is_vectorized(self) -> bool:
        """Whether the batched locomotion fast path is active."""
        return self._vectorized

    def __len__(self) -> int:
        return self.num_envs

    # ------------------------------------------------------------------ #
    # Core API
    # ------------------------------------------------------------------ #
    def seed(self, seed: Optional[int]) -> None:
        """Re-seed every environment with the ``seed + i`` rule."""
        for env, env_seed in zip(self.envs, self.spawn_seeds(seed, self.num_envs)):
            env.seed(env_seed)
        if self._vectorized:
            self._rngs = [env._rng for env in self.envs]
        self._needs_reset = True

    def reset(self) -> np.ndarray:
        """Start a fresh episode in every environment; returns ``(N, S)``."""
        self._needs_reset = False
        if not self._vectorized:
            return np.stack([env.reset() for env in self.envs])
        self._reset_rows(self._rows)
        return self._observe_rows(self._rows)

    def step(self, actions: np.ndarray) -> VectorStepResult:
        """Advance every environment by one timestep (with auto-reset)."""
        if self._needs_reset:
            raise RuntimeError(f"{self.name}: step() called before reset()")
        actions = np.asarray(actions, dtype=np.float64)
        if actions.shape != self._step_shape:
            raise ValueError(
                f"actions must have shape ({self.num_envs}, {self.action_dim}), "
                f"got {actions.shape}"
            )
        if self._vectorized:
            return self._step_vectorized(actions)
        return self._step_loop(actions)

    # ------------------------------------------------------------------ #
    # Loop path
    # ------------------------------------------------------------------ #
    def _step_loop(self, actions: np.ndarray) -> VectorStepResult:
        observations = np.empty((self.num_envs, self.state_dim))
        rewards = np.empty(self.num_envs)
        dones = np.zeros(self.num_envs, dtype=bool)
        infos: List[dict] = []
        for i, env in enumerate(self.envs):
            result: StepResult = env.step(actions[i])
            rewards[i] = result.reward
            dones[i] = result.done
            info = dict(result.info)
            if result.done:
                info["final_observation"] = result.observation
                observations[i] = env.reset()
            else:
                observations[i] = result.observation
            infos.append(info)
        return VectorStepResult(observations, rewards, dones, infos)

    # ------------------------------------------------------------------ #
    # Vectorized locomotion path
    # ------------------------------------------------------------------ #
    # repro-lint: hot
    def _step_vectorized(self, actions: np.ndarray) -> VectorStepResult:
        cfg = self._cfg
        clip = self._clip
        actions = clip(actions)
        prof = self.profiler

        posture_dim = cfg.posture_dim
        dynamics_noise = cfg.dynamics_noise
        posture_noise = self._posture_noise
        velocity_noise = self._velocity_noise
        if prof is not None:
            t0 = perf_counter()
        for i, rng in enumerate(self._rngs):
            posture_noise[i] = rng.normal(scale=dynamics_noise, size=posture_dim)
            velocity_noise[i] = rng.normal(scale=dynamics_noise)
        if prof is not None:
            prof.add("noise-draw", perf_counter() - t0)
            t0 = perf_counter()

        dynamics_step = self._dynamics_step
        (
            velocity,
            phase,
            posture,
            rewards,
            fallen,
            posture_norms,
            control_costs,
        ) = dynamics_step(
            self._velocity,
            self._phase,
            self._posture,
            self._previous_action,
            actions,
            posture_noise,
            velocity_noise,
        )
        self._velocity = velocity
        self._phase = phase
        self._posture = posture
        # Double-buffer instead of actions.copy(): the clipped array is a
        # fresh allocation (np.clip), so copying it into last step's retired
        # buffer and swapping is equivalent and allocation-free.
        scratch = self._action_scratch
        np.copyto(scratch, actions)
        self._action_scratch = self._previous_action
        self._previous_action = scratch
        elapsed = self._elapsed
        elapsed += 1
        truncated = elapsed >= self._max_steps
        dones = fallen | truncated
        if prof is not None:
            prof.add("dynamics-kernel", perf_counter() - t0)
            t0 = perf_counter()

        observations = self._observe_all()
        if prof is not None:
            prof.add("observe", perf_counter() - t0)
            t0 = perf_counter()

        final = None
        done_rows = np.flatnonzero(dones)
        if done_rows.size:
            # _reset_rows zeroes the finished rows of the velocity array in
            # place; the infos must keep the terminal values, so snapshot it
            # (only on steps where an episode actually ended).
            velocity = velocity.copy()
            final = self._finish_done_rows(observations, done_rows)
        infos = LazyInfos(
            velocity, posture_norms, control_costs, fallen, truncated, final
        )
        if prof is not None:
            prof.add("info-build", perf_counter() - t0)
        return VectorStepResult(observations, rewards, dones, infos)

    def _finish_done_rows(
        self, observations: np.ndarray, done_rows: np.ndarray
    ) -> Dict[int, np.ndarray]:
        """Capture terminal observations, then restart the finished rows.

        Returns the ``{row: terminal observation}`` map the step's
        :class:`LazyInfos` serves as ``final_observation``; the finished
        rows of ``observations`` are overwritten in place with their fresh
        post-reset observations.  Off the hot annotation on purpose —
        episodes end once per hundreds of lock-steps.
        """
        final = {}
        for i in done_rows:
            final[int(i)] = observations[i].copy()
        self._reset_rows(done_rows)
        observations[done_rows] = self._observe_rows(done_rows)
        return final

    # repro-lint: hot
    def _observe_all(self) -> np.ndarray:
        """Observations for every environment — the full-batch fast path.

        Equivalent to ``_observe_rows(arange(n))`` but hands the state
        arrays to the kernel directly (no fancy-index copies) and refills a
        preallocated noise buffer.  The RNG draws are identical: ``size=K``
        consumes the same K normals as ``size=(1, K)``.
        """
        cfg = self._cfg
        noise = None
        observation_noise = cfg.observation_noise
        if observation_noise > 0.0:
            noise = self._obs_noise
            state_dim = cfg.state_dim
            for i, rng in enumerate(self._rngs):
                noise[i] = rng.normal(scale=observation_noise, size=state_dim)
        dynamics_observe = self._dynamics_observe
        return dynamics_observe(
            self._velocity,
            self._phase,
            self._posture,
            self._previous_action,
            noise,
        )

    def _reset_rows(self, rows: np.ndarray) -> None:
        """Re-initialise the selected environments' physical state in place."""
        cfg = self._cfg
        self._velocity[rows] = 0.0
        self._previous_action[rows] = 0.0
        self._elapsed[rows] = 0
        for i in rows:
            rng = self._rngs[i]
            self._phase[i] = rng.uniform(0.0, 2.0 * np.pi)
            self._posture[i] = rng.normal(scale=0.05, size=cfg.posture_dim)

    def _observe_rows(self, rows: np.ndarray) -> np.ndarray:
        """Observations for the selected environments (fresh noise draws)."""
        cfg = self._cfg
        noise = None
        if cfg.observation_noise > 0.0:
            noise = np.empty((rows.size, cfg.state_dim))
            for j, i in enumerate(rows):
                noise[j] = self._rngs[i].normal(
                    scale=cfg.observation_noise, size=(1, cfg.state_dim)
                )
        return self._dynamics.observe(
            self._velocity[rows],
            self._phase[rows],
            self._posture[rows],
            self._previous_action[rows],
            noise,
        )
