"""Hopper-like benchmark (11-dimensional state, 6-dimensional action).

The paper describes the Hopper benchmark as having an 11-dimensional state
and a 6-dimensional action.  (The stock MuJoCo Hopper exposes 3 actuators;
we follow the paper's stated dimensions so the accelerator workloads have
the same matrix shapes as in the evaluation.)  Hopper terminates the episode
when the agent falls over, which the synthetic model reproduces with a
posture-norm fall threshold and an alive bonus.
"""

from __future__ import annotations

from typing import Optional

from .locomotion import LocomotionConfig, LocomotionEnv

__all__ = ["HopperEnv"]


class HopperEnv(LocomotionEnv):
    """Synthetic Hopper: hop forward without falling over."""

    STATE_DIM = 11
    ACTION_DIM = 6

    def __init__(self, seed: Optional[int] = None, max_episode_steps: int = 1000):
        config = LocomotionConfig(
            state_dim=self.STATE_DIM,
            action_dim=self.ACTION_DIM,
            gain=2.0,
            damping=0.25,
            control_cost=0.001,
            posture_dim=4,
            posture_coupling=0.5,
            posture_decay=0.92,
            fall_threshold=1.3,
            fall_penalty=1.0,
            alive_bonus=1.0,
            max_episode_steps=max_episode_steps,
            structure_seed=11,
        )
        super().__init__(config, seed=seed, name="Hopper")
