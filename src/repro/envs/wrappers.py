"""Environment wrappers: the host-side plumbing around the raw benchmarks.

Real DDPG deployments wrap the environment with a few standard utilities —
running observation normalization, action repeat ("frame skip"), reward
scaling, and episode statistics.  These wrappers follow the same
:class:`~repro.envs.base.Environment` interface, so anything that accepts an
environment (the training loop, the co-simulation, the platform model's
calibration) accepts a wrapped one too.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from .base import Environment, StepResult

__all__ = [
    "EnvironmentWrapper",
    "ObservationNormalizer",
    "ActionRepeat",
    "RewardScaler",
    "EpisodeStatistics",
]


class EnvironmentWrapper(Environment):
    """Base wrapper delegating everything to the wrapped environment."""

    def __init__(self, env: Environment):
        super().__init__(seed=None)
        self.env = env
        self.observation_space = env.observation_space
        self.action_space = env.action_space
        self.max_episode_steps = env.max_episode_steps
        self.name = env.name

    def seed(self, seed: Optional[int]) -> None:
        self.env.seed(seed)

    def reset(self) -> np.ndarray:
        self._elapsed_steps = 0
        self._needs_reset = False
        return self._reset()

    def step(self, action: np.ndarray) -> StepResult:
        result = self._wrapped_step(action)
        self._elapsed_steps = self.env.elapsed_steps
        if result.done:
            self._needs_reset = True
        return result

    # Subclass hooks ----------------------------------------------------- #
    def _reset(self) -> np.ndarray:
        return self.env.reset()

    def _wrapped_step(self, action: np.ndarray) -> StepResult:
        return self.env.step(action)


class ObservationNormalizer(EnvironmentWrapper):
    """Normalizes observations with running mean/variance (Welford update).

    Fixed-point training is sensitive to the activation range; normalizing
    observations keeps the first layer's inputs within a narrow, predictable
    band, which tightens the captured quantization range.
    """

    def __init__(self, env: Environment, epsilon: float = 1e-8, clip: float = 10.0):
        super().__init__(env)
        if epsilon <= 0 or clip <= 0:
            raise ValueError("epsilon and clip must be positive")
        self.epsilon = epsilon
        self.clip = clip
        self._count = 0
        self._mean = np.zeros(env.state_dim)
        self._m2 = np.zeros(env.state_dim)

    def _update(self, observation: np.ndarray) -> None:
        self._count += 1
        delta = observation - self._mean
        self._mean += delta / self._count
        self._m2 += delta * (observation - self._mean)

    @property
    def running_mean(self) -> np.ndarray:
        return self._mean.copy()

    @property
    def running_std(self) -> np.ndarray:
        if self._count < 2:
            return np.ones_like(self._mean)
        return np.sqrt(self._m2 / (self._count - 1) + self.epsilon)

    def normalize(self, observation: np.ndarray) -> np.ndarray:
        normalized = (observation - self._mean) / (self.running_std + self.epsilon)
        return np.clip(normalized, -self.clip, self.clip)

    def _reset(self) -> np.ndarray:
        observation = self.env.reset()
        self._update(observation)
        return self.normalize(observation)

    def _wrapped_step(self, action: np.ndarray) -> StepResult:
        result = self.env.step(action)
        self._update(result.observation)
        return StepResult(self.normalize(result.observation), result.reward, result.done, result.info)


class ActionRepeat(EnvironmentWrapper):
    """Repeats each action for ``repeat`` physics steps, summing rewards.

    Action repeat lowers the host-CPU control rate (fewer policy inferences
    per simulated second) — a common knob when the environment step is the
    platform bottleneck, as it is at small batch sizes in Fig. 9.
    """

    def __init__(self, env: Environment, repeat: int = 2):
        super().__init__(env)
        if repeat < 1:
            raise ValueError(f"repeat must be >= 1, got {repeat}")
        self.repeat = repeat

    def _wrapped_step(self, action: np.ndarray) -> StepResult:
        total_reward = 0.0
        result: Optional[StepResult] = None
        for _ in range(self.repeat):
            result = self.env.step(action)
            total_reward += result.reward
            if result.done:
                break
        assert result is not None
        return StepResult(result.observation, total_reward, result.done, result.info)


class RewardScaler(EnvironmentWrapper):
    """Scales rewards by a constant (keeps TD targets in fixed-point range)."""

    def __init__(self, env: Environment, scale: float):
        super().__init__(env)
        if scale <= 0:
            raise ValueError(f"scale must be positive, got {scale}")
        self.scale = scale

    def _wrapped_step(self, action: np.ndarray) -> StepResult:
        result = self.env.step(action)
        return StepResult(result.observation, result.reward * self.scale, result.done, result.info)


class EpisodeStatistics(EnvironmentWrapper):
    """Records per-episode returns and lengths (host-side bookkeeping)."""

    def __init__(self, env: Environment):
        super().__init__(env)
        self.episode_returns: list = []
        self.episode_lengths: list = []
        self._current_return = 0.0
        self._current_length = 0

    def _reset(self) -> np.ndarray:
        self._current_return = 0.0
        self._current_length = 0
        return self.env.reset()

    def _wrapped_step(self, action: np.ndarray) -> StepResult:
        result = self.env.step(action)
        self._current_return += result.reward
        self._current_length += 1
        if result.done:
            self.episode_returns.append(self._current_return)
            self.episode_lengths.append(self._current_length)
        return result

    def statistics(self) -> Tuple[float, float]:
        """Mean episode return and mean episode length so far."""
        if not self.episode_returns:
            return float("nan"), float("nan")
        return float(np.mean(self.episode_returns)), float(np.mean(self.episode_lengths))
