"""HalfCheetah-like benchmark (17-dimensional state, 6-dimensional action).

The paper's HalfCheetah task "aims to train a cheetah to run by giving 6
action outputs based on the cheetah's state including 17 physical
conditions".  The reward is forward velocity minus a quadratic control cost
and the episode never terminates early (only the 1000-step horizon applies),
mirroring the MuJoCo task's structure.  The trained cumulative reward per
episode saturates around the 2000 level, matching the scale of Fig. 7.
"""

from __future__ import annotations

from typing import Optional

from .locomotion import LocomotionConfig, LocomotionEnv

__all__ = ["HalfCheetahEnv"]


class HalfCheetahEnv(LocomotionEnv):
    """Synthetic HalfCheetah: run forward as fast as possible, no falling."""

    STATE_DIM = 17
    ACTION_DIM = 6

    def __init__(self, seed: Optional[int] = None, max_episode_steps: int = 1000):
        config = LocomotionConfig(
            state_dim=self.STATE_DIM,
            action_dim=self.ACTION_DIM,
            gain=1.4,
            damping=0.2,
            control_cost=0.1,
            posture_dim=6,
            posture_coupling=0.25,
            posture_decay=0.9,
            fall_threshold=None,
            alive_bonus=0.0,
            max_episode_steps=max_episode_steps,
            structure_seed=17,
        )
        super().__init__(config, seed=seed, name="HalfCheetah")
