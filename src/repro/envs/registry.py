"""Benchmark registry: build environments by name.

The paper evaluates on three MuJoCo locomotion benchmarks; this registry
exposes them (and any environment a user adds) through a single ``make``
factory so training scripts, benchmarks, and the platform model can select
workloads by name.  Names are case-insensitive: ``make("hopper")`` and
``make("Hopper")`` build the same benchmark.

:func:`register` is the extension point the heterogeneous collector fleets
rely on: a fleet spec such as ``"HalfCheetah:2,Hopper:2"``
(:func:`repro.rl.workers.parse_fleet_spec`) resolves every benchmark name
through this registry, so registering a new environment factory is all it
takes for that benchmark to participate in mixed-fleet training runs,
``VectorEnv.make``, and the CLI.

:func:`benchmark_dimensions` answers the "what workload shape does this
benchmark present?" question that fleet construction and the platform
timing models ask per benchmark.  It is cheap: factories that expose
class-level ``STATE_DIM`` / ``ACTION_DIM`` attributes (all built-in
benchmarks do) are read without instantiating an environment — no RNG is
created — and factories without them are instantiated once, with the result
cached, so building an N-benchmark fleet does not pay N env builds up
front.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from .base import Environment
from .halfcheetah import HalfCheetahEnv
from .hopper import HopperEnv
from .swimmer import SwimmerEnv

__all__ = ["make", "register", "available_benchmarks", "BENCHMARK_SUITE", "benchmark_dimensions"]

_REGISTRY: Dict[str, Callable[..., Environment]] = {}

#: Cache of :func:`benchmark_dimensions` results, keyed like ``_REGISTRY``.
_DIMENSIONS_CACHE: Dict[str, Dict[str, int]] = {}

#: The three benchmarks used throughout the paper's evaluation.
BENCHMARK_SUITE = ("HalfCheetah", "Hopper", "Swimmer")


def register(name: str, factory: Callable[..., Environment]) -> None:
    """Register an environment factory under a (case-insensitive) name.

    The factory must accept a ``seed`` keyword argument (all benchmark
    classes do via their constructor).  Registration makes the benchmark
    available to :func:`make`, ``VectorEnv.make``, the CLI's benchmark
    options, and — through the fleet-spec grammar — heterogeneous collector
    fleets; it is the supported way to open a new workload.

    Raises ``ValueError`` if the name is already taken.
    """
    key = name.lower()
    if key in _REGISTRY:
        raise ValueError(f"benchmark {name!r} is already registered")
    _REGISTRY[key] = factory
    # A stale cache entry can only exist if the name was registered before;
    # register() rejects that above, so dropping defensively keeps the cache
    # coherent even if _REGISTRY was manipulated directly (tests do).
    _DIMENSIONS_CACHE.pop(key, None)


def make(name: str, seed: Optional[int] = None, **kwargs) -> Environment:
    """Instantiate a registered benchmark environment by name."""
    key = name.lower()
    if key not in _REGISTRY:
        raise KeyError(
            f"unknown benchmark {name!r}; available: {sorted(available_benchmarks())}"
        )
    return _REGISTRY[key](seed=seed, **kwargs)


def available_benchmarks() -> List[str]:
    """Names of all registered benchmarks (lowercase registry keys)."""
    return sorted(_REGISTRY)


def benchmark_dimensions(name: str) -> Dict[str, int]:
    """State / action dimensionality of a benchmark, without a full env build.

    Factories exposing class-level ``STATE_DIM`` / ``ACTION_DIM`` integers
    are read directly — no environment (and no RNG) is instantiated.  Other
    factories are instantiated once and the result is cached, so repeated
    queries (fleet construction asks once per benchmark per run) stay cheap.
    """
    key = name.lower()
    if key not in _REGISTRY:
        raise KeyError(
            f"unknown benchmark {name!r}; available: {sorted(available_benchmarks())}"
        )
    if key not in _DIMENSIONS_CACHE:
        factory = _REGISTRY[key]
        state_dim = getattr(factory, "STATE_DIM", None)
        action_dim = getattr(factory, "ACTION_DIM", None)
        if isinstance(state_dim, int) and isinstance(action_dim, int):
            _DIMENSIONS_CACHE[key] = {"state_dim": state_dim, "action_dim": action_dim}
        else:
            env = factory(seed=None)
            _DIMENSIONS_CACHE[key] = {
                "state_dim": env.state_dim,
                "action_dim": env.action_dim,
            }
    return dict(_DIMENSIONS_CACHE[key])


register("HalfCheetah", HalfCheetahEnv)
register("Hopper", HopperEnv)
register("Swimmer", SwimmerEnv)
