"""Benchmark registry: build environments by name.

The paper evaluates on three MuJoCo locomotion benchmarks; this registry
exposes them (and the generic parametric locomotion task) through a single
``make`` factory so training scripts, benchmarks, and the platform model can
select workloads by name.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from .base import Environment
from .halfcheetah import HalfCheetahEnv
from .hopper import HopperEnv
from .swimmer import SwimmerEnv

__all__ = ["make", "register", "available_benchmarks", "BENCHMARK_SUITE", "benchmark_dimensions"]

_REGISTRY: Dict[str, Callable[..., Environment]] = {}

#: The three benchmarks used throughout the paper's evaluation.
BENCHMARK_SUITE = ("HalfCheetah", "Hopper", "Swimmer")


def register(name: str, factory: Callable[..., Environment]) -> None:
    """Register an environment factory under a (case-insensitive) name."""
    key = name.lower()
    if key in _REGISTRY:
        raise ValueError(f"benchmark {name!r} is already registered")
    _REGISTRY[key] = factory


def make(name: str, seed: Optional[int] = None, **kwargs) -> Environment:
    """Instantiate a registered benchmark environment by name."""
    key = name.lower()
    if key not in _REGISTRY:
        raise KeyError(
            f"unknown benchmark {name!r}; available: {sorted(available_benchmarks())}"
        )
    return _REGISTRY[key](seed=seed, **kwargs)


def available_benchmarks() -> List[str]:
    """Names of all registered benchmarks."""
    return sorted(_REGISTRY)


def benchmark_dimensions(name: str) -> Dict[str, int]:
    """State / action dimensionality of a benchmark without instantiating it fully."""
    env = make(name)
    return {"state_dim": env.state_dim, "action_dim": env.action_dim}


register("HalfCheetah", HalfCheetahEnv)
register("Hopper", HopperEnv)
register("Swimmer", SwimmerEnv)
