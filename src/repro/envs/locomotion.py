"""Synthetic locomotion environments standing in for the MuJoCo benchmarks.

The paper evaluates on HalfCheetah, Hopper, and Swimmer from the MuJoCo
physics engine.  MuJoCo itself is a closed physics substrate we cannot ship,
so this module provides a parametric locomotion model that preserves the
properties the FIXAR experiments rely on:

* continuous observation / action vectors with the paper's dimensionalities;
* a dense reward of the MuJoCo locomotion form
  ``forward velocity − control cost (− fall penalty)``;
* episode termination on falling (Hopper-style) or only on the 1000-step
  horizon (HalfCheetah / Swimmer-style);
* a policy-improvable structure: the agent must learn to push along a
  state-dependent "gait" direction while keeping its posture stable, so a
  DDPG agent's learning curve rises and saturates like the paper's Fig. 7.

The dynamics are deliberately simple (damped velocity + posture integrator
driven by the joint torques) but are honest dynamical systems: rewards are
computed from the simulated physical state, not from a lookup of the action.

All physics is implemented by :class:`LocomotionDynamics`, a *batched*
kernel operating on ``(N, ...)`` state arrays.  The scalar environment calls
it with ``N = 1`` and :class:`~repro.envs.vector.VectorEnv` calls it with
``N = num_envs``, so a vectorized rollout is bitwise identical to stepping N
independently seeded scalar environments.  To keep that guarantee the kernel
only uses elementwise operations and multiply+sum reductions along the last
axis (whose result per row does not depend on the batch size), never BLAS
matmuls (whose blocking does).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

import numpy as np

from .base import Environment
from .spaces import Box

__all__ = ["LocomotionConfig", "LocomotionDynamics", "LocomotionEnv"]


@dataclass(frozen=True)
class LocomotionConfig:
    """Parameters of the synthetic locomotion dynamics."""

    #: Observation dimensionality (the benchmark's state size).
    state_dim: int
    #: Action (joint torque) dimensionality.
    action_dim: int
    #: How strongly a well-aligned torque accelerates the body.
    gain: float = 4.0
    #: Per-step velocity damping (0 < damping < 1).
    damping: float = 0.2
    #: Quadratic control cost coefficient (MuJoCo uses 0.1 for HalfCheetah).
    control_cost: float = 0.1
    #: Dimensionality of the internal posture vector.
    posture_dim: int = 4
    #: How strongly torques disturb the posture.
    posture_coupling: float = 0.3
    #: Per-step posture decay toward upright.
    posture_decay: float = 0.9
    #: Posture norm beyond which the agent falls (None = never falls).
    fall_threshold: Optional[float] = None
    #: Penalty applied on falling.
    fall_penalty: float = 1.0
    #: Constant "alive" bonus per step (Hopper-style healthy reward).
    alive_bonus: float = 0.0
    #: Standard deviation of observation noise.
    observation_noise: float = 0.01
    #: Standard deviation of the dynamics noise.
    dynamics_noise: float = 0.02
    #: Episode horizon.
    max_episode_steps: int = 1000
    #: Seed for the environment's fixed gait direction and projection.
    structure_seed: int = 0

    def __post_init__(self) -> None:
        if self.state_dim <= 0 or self.action_dim <= 0:
            raise ValueError("state_dim and action_dim must be positive")
        if not 0.0 < self.damping < 1.0:
            raise ValueError(f"damping must lie in (0, 1), got {self.damping}")
        if not 0.0 < self.posture_decay <= 1.0:
            raise ValueError(f"posture_decay must lie in (0, 1], got {self.posture_decay}")
        if self.max_episode_steps <= 0:
            raise ValueError("max_episode_steps must be positive")


class LocomotionDynamics:
    """Batched locomotion physics shared by the scalar and vector paths.

    The kernel is a pure function of the physical state, the actions, and
    externally drawn noise (the caller owns the per-environment RNG streams),
    operating on ``(N, ...)`` arrays.  Every reduction is a multiply+sum
    along the last axis so each row's result is bitwise independent of how
    many rows are processed together — the property the vectorized rollout
    tests rely on.
    """

    def __init__(self, config: LocomotionConfig):
        self.config = config
        structure_rng = np.random.default_rng(config.structure_seed)
        direction = structure_rng.normal(size=config.action_dim)
        self.gait_direction = direction / np.sqrt((direction * direction).sum())
        self.internal_dim = 2 + config.posture_dim + config.action_dim
        self.observation_matrix = structure_rng.normal(
            scale=1.0 / np.sqrt(self.internal_dim),
            size=(config.state_dim, self.internal_dim),
        )
        self.observation_bias = structure_rng.normal(scale=0.05, size=config.state_dim)
        #: ``np.resize(delta, posture_dim)`` as a cyclic column gather.
        self._posture_columns = np.arange(config.posture_dim) % config.action_dim

    # ------------------------------------------------------------------ #
    # Kernels
    # ------------------------------------------------------------------ #
    def step(
        self,
        velocity: np.ndarray,
        phase: np.ndarray,
        posture: np.ndarray,
        previous_action: np.ndarray,
        actions: np.ndarray,
        posture_noise: np.ndarray,
        velocity_noise: np.ndarray,
    ) -> Tuple[np.ndarray, ...]:
        """Advance N bodies by one timestep.

        Returns ``(velocity, phase, posture, rewards, fallen, posture_norms,
        control_costs)``, all shaped ``(N, ...)``.
        """
        cfg = self.config
        thrust = (actions * self.gait_direction).sum(axis=1)

        delta = actions - previous_action
        posture = (
            cfg.posture_decay * posture
            + cfg.posture_coupling * delta[:, self._posture_columns]
            + posture_noise
        )
        posture_norms = np.sqrt((posture * posture).sum(axis=1))
        traction = 1.0 / (1.0 + posture_norms)

        velocity = (1.0 - cfg.damping) * velocity + cfg.damping * (
            cfg.gain * thrust * traction
        )
        velocity = velocity + velocity_noise
        phase = phase + 0.1 * velocity

        control_costs = cfg.control_cost * (actions * actions).sum(axis=1)
        rewards = velocity - control_costs + cfg.alive_bonus

        if cfg.fall_threshold is not None:
            fallen = posture_norms > cfg.fall_threshold
            rewards = np.where(fallen, rewards - cfg.fall_penalty, rewards)
        else:
            fallen = np.zeros(actions.shape[0], dtype=bool)
        return velocity, phase, posture, rewards, fallen, posture_norms, control_costs

    def observe(
        self,
        velocity: np.ndarray,
        phase: np.ndarray,
        posture: np.ndarray,
        previous_action: np.ndarray,
        observation_noise: Optional[np.ndarray],
    ) -> np.ndarray:
        """Project N physical states into ``(N, state_dim)`` observations."""
        internal = np.concatenate(
            (velocity[:, None], np.sin(phase)[:, None], posture, previous_action),
            axis=1,
        )
        observations = (
            internal[:, None, :] * self.observation_matrix[None, :, :]
        ).sum(axis=2) + self.observation_bias
        if observation_noise is not None:
            observations = observations + observation_noise
        return observations


class LocomotionEnv(Environment):
    """A damped point-body locomotion task driven by joint torques.

    Internal physical state:

    * ``velocity`` — scalar forward velocity of the body;
    * ``posture`` — vector of joint/torso deviations from the stable gait;
    * ``phase`` — scalar gait phase that advances with velocity.

    The observation is a fixed affine projection of the physical state (plus
    the previous action) into ``state_dim`` dimensions with a little sensor
    noise, so the benchmark's nominal observation size is preserved no matter
    how small the internal state is.
    """

    def __init__(self, config: LocomotionConfig, seed: Optional[int] = None, name: str = "locomotion"):
        super().__init__(seed)
        self.config = config
        self.name = name
        self.max_episode_steps = config.max_episode_steps
        self.observation_space = Box(-np.inf, np.inf, shape=(config.state_dim,))
        self.action_space = Box(-1.0, 1.0, shape=(config.action_dim,))

        # Fixed task structure: the gait direction the torques must align
        # with, and the projection from internal physical state to the
        # observation vector.  These are functions of the structure seed, not
        # of the per-episode RNG, so every instance of a benchmark presents
        # the same task.
        self._dynamics = LocomotionDynamics(config)
        self._gait_direction = self._dynamics.gait_direction

        self._velocity = 0.0
        self._phase = 0.0
        self._posture = np.zeros(config.posture_dim)
        self._previous_action = np.zeros(config.action_dim)

    # ------------------------------------------------------------------ #
    # Environment hooks
    # ------------------------------------------------------------------ #
    def _reset(self) -> np.ndarray:
        cfg = self.config
        self._velocity = 0.0
        self._phase = float(self._rng.uniform(0.0, 2.0 * np.pi))
        self._posture = self._rng.normal(scale=0.05, size=cfg.posture_dim)
        self._previous_action = np.zeros(cfg.action_dim)
        return self._observe()

    def _step(self, action: np.ndarray) -> Tuple[np.ndarray, float, bool, dict]:
        cfg = self.config
        # Noise draws in the fixed per-stream order (posture, velocity,
        # observation) that the vectorized path reproduces env by env.
        posture_noise = self._rng.normal(scale=cfg.dynamics_noise, size=cfg.posture_dim)
        velocity_noise = self._rng.normal(scale=cfg.dynamics_noise)

        velocity, phase, posture, rewards, fallen_mask, posture_norms, control_costs = (
            self._dynamics.step(
                np.array([self._velocity]),
                np.array([self._phase]),
                self._posture[None, :],
                self._previous_action[None, :],
                np.asarray(action, dtype=np.float64)[None, :],
                posture_noise[None, :],
                np.array([velocity_noise]),
            )
        )
        self._velocity = float(velocity[0])
        self._phase = float(phase[0])
        self._posture = posture[0]
        posture_norm = float(posture_norms[0])
        control_cost = float(control_costs[0])
        reward = float(rewards[0])
        fallen = bool(fallen_mask[0])

        self._previous_action = action.copy()
        info = {
            "velocity": self._velocity,
            "posture_norm": posture_norm,
            "control_cost": control_cost,
            "terminated": fallen,
        }
        return self._observe(), reward, fallen, info

    # ------------------------------------------------------------------ #
    # Internal helpers
    # ------------------------------------------------------------------ #
    def _observe(self) -> np.ndarray:
        noise = None
        if self.config.observation_noise > 0.0:
            noise = self._rng.normal(
                scale=self.config.observation_noise, size=(1, self.config.state_dim)
            )
        observation = self._dynamics.observe(
            np.array([self._velocity]),
            np.array([self._phase]),
            self._posture[None, :],
            self._previous_action[None, :],
            noise,
        )
        return observation[0]

    # ------------------------------------------------------------------ #
    # Oracle helpers (used by tests and examples)
    # ------------------------------------------------------------------ #
    @property
    def gait_direction(self) -> np.ndarray:
        """The torque direction that maximises forward thrust."""
        return self._gait_direction.copy()

    def optimal_action(self) -> np.ndarray:
        """A near-optimal constant action (full thrust along the gait).

        The truly optimal torque trades thrust against control cost; the
        unit-norm gait direction is close enough to serve as an oracle for
        sanity checks and reward-scale calibration.
        """
        return self.action_space.clip(self._gait_direction)
