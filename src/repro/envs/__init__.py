"""Continuous-control environments emulated on the host CPU.

These are synthetic stand-ins for the MuJoCo locomotion benchmarks the paper
uses (HalfCheetah, Hopper, Swimmer), preserving their state/action
dimensionality, reward structure, and episode semantics.

Two execution granularities are exposed:

* scalar — one :class:`Environment` stepped transition by transition, the
  host-CPU role in the paper's Fig. 3 loop;
* vectorized — :class:`VectorEnv` steps N registered environments in
  lock-step with auto-reset and per-env seeding (``seed + i``), batching the
  physics through the shared :class:`LocomotionDynamics` kernel so batched
  rollouts are bitwise identical to N scalar trajectories.  This is the
  environment half of the vectorized rollout subsystem
  (:mod:`repro.rl.rollout` is the agent half); future async-worker or
  sharded-accelerator layers should drive :class:`VectorEnv` rather than
  stepping scalar environments, so the batch dimension survives end to end.
"""

from .base import Environment, StepResult
from .halfcheetah import HalfCheetahEnv
from .hopper import HopperEnv
from .locomotion import LocomotionConfig, LocomotionDynamics, LocomotionEnv
from .registry import (
    BENCHMARK_SUITE,
    available_benchmarks,
    benchmark_dimensions,
    make,
    register,
)
from .spaces import Box
from .swimmer import SwimmerEnv
from .vector import VectorEnv, VectorStepResult
from .wrappers import (
    ActionRepeat,
    EnvironmentWrapper,
    EpisodeStatistics,
    ObservationNormalizer,
    RewardScaler,
)

__all__ = [
    "Environment",
    "StepResult",
    "Box",
    "LocomotionConfig",
    "LocomotionDynamics",
    "LocomotionEnv",
    "VectorEnv",
    "VectorStepResult",
    "HalfCheetahEnv",
    "HopperEnv",
    "SwimmerEnv",
    "make",
    "register",
    "available_benchmarks",
    "benchmark_dimensions",
    "BENCHMARK_SUITE",
    "EnvironmentWrapper",
    "ObservationNormalizer",
    "ActionRepeat",
    "RewardScaler",
    "EpisodeStatistics",
]
