"""Continuous-control environments emulated on the host CPU.

These are synthetic stand-ins for the MuJoCo locomotion benchmarks the paper
uses (HalfCheetah, Hopper, Swimmer), preserving their state/action
dimensionality, reward structure, and episode semantics.
"""

from .base import Environment, StepResult
from .halfcheetah import HalfCheetahEnv
from .hopper import HopperEnv
from .locomotion import LocomotionConfig, LocomotionEnv
from .registry import (
    BENCHMARK_SUITE,
    available_benchmarks,
    benchmark_dimensions,
    make,
    register,
)
from .spaces import Box
from .swimmer import SwimmerEnv
from .wrappers import (
    ActionRepeat,
    EnvironmentWrapper,
    EpisodeStatistics,
    ObservationNormalizer,
    RewardScaler,
)

__all__ = [
    "Environment",
    "StepResult",
    "Box",
    "LocomotionConfig",
    "LocomotionEnv",
    "HalfCheetahEnv",
    "HopperEnv",
    "SwimmerEnv",
    "make",
    "register",
    "available_benchmarks",
    "benchmark_dimensions",
    "BENCHMARK_SUITE",
    "EnvironmentWrapper",
    "ObservationNormalizer",
    "ActionRepeat",
    "RewardScaler",
    "EpisodeStatistics",
]
