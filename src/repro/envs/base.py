"""Environment interface for the host-CPU side of the FIXAR platform.

In the paper the host CPU runs the MuJoCo environment: it receives the
action computed on the FPGA, advances the physics, computes the reward, and
hands the next state (plus a sampled replay batch) back to the accelerator.
This module defines the minimal environment API those components need.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from .spaces import Box

__all__ = ["StepResult", "Environment"]


@dataclass(frozen=True)
class StepResult:
    """The outcome of one environment step."""

    observation: np.ndarray
    reward: float
    done: bool
    info: dict

    def __iter__(self):
        """Allow ``obs, reward, done, info = env.step(action)`` unpacking."""
        return iter((self.observation, self.reward, self.done, self.info))


class Environment:
    """Base class for continuous-control environments.

    Subclasses must set :attr:`observation_space` and :attr:`action_space`
    and implement :meth:`_reset` and :meth:`_step`.
    """

    observation_space: Box
    action_space: Box

    #: Episode length used by the paper's evaluation (1000 timesteps).
    max_episode_steps: int = 1000

    #: Benchmark name (for registries and reports).
    name: str = "environment"

    def __init__(self, seed: Optional[int] = None):
        self._rng = np.random.default_rng(seed)
        self._elapsed_steps = 0
        self._needs_reset = True

    # ------------------------------------------------------------------ #
    # Public API
    # ------------------------------------------------------------------ #
    def seed(self, seed: Optional[int]) -> None:
        """Re-seed the environment's random number generator."""
        self._rng = np.random.default_rng(seed)

    def reset(self) -> np.ndarray:
        """Start a new episode and return the initial observation."""
        self._elapsed_steps = 0
        self._needs_reset = False
        observation = self._reset()
        return np.asarray(observation, dtype=np.float64)

    def step(self, action: np.ndarray) -> StepResult:
        """Advance the environment by one timestep.

        The action is clipped into the action space before being applied,
        matching how the platform saturates the actor's noisy output.
        """
        if self._needs_reset:
            raise RuntimeError(
                f"{self.name}: step() called before reset() or after the episode ended"
            )
        action = self.action_space.clip(np.asarray(action, dtype=np.float64).ravel())
        observation, reward, done, info = self._step(action)
        self._elapsed_steps += 1
        truncated = self._elapsed_steps >= self.max_episode_steps
        done = bool(done or truncated)
        if done:
            self._needs_reset = True
        info = dict(info)
        info.setdefault("truncated", truncated and not info.get("terminated", False))
        return StepResult(np.asarray(observation, dtype=np.float64), float(reward), done, info)

    # ------------------------------------------------------------------ #
    # Introspection helpers
    # ------------------------------------------------------------------ #
    @property
    def state_dim(self) -> int:
        """Observation dimensionality (the paper's "state" size)."""
        return self.observation_space.dim

    @property
    def action_dim(self) -> int:
        """Action dimensionality."""
        return self.action_space.dim

    @property
    def elapsed_steps(self) -> int:
        """Steps taken in the current episode."""
        return self._elapsed_steps

    # ------------------------------------------------------------------ #
    # Subclass hooks
    # ------------------------------------------------------------------ #
    def _reset(self) -> np.ndarray:
        raise NotImplementedError

    def _step(self, action: np.ndarray) -> Tuple[np.ndarray, float, bool, dict]:
        raise NotImplementedError
