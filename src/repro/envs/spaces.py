"""Observation and action spaces for the continuous-control environments.

Only box (bounded real-vector) spaces are needed: the paper's benchmarks all
target continuous action spaces with per-dimension bounds of ±1 for actions
and unbounded observations.
"""

from __future__ import annotations

import numpy as np

__all__ = ["Box"]


class Box:
    """A bounded (or unbounded) real-valued vector space."""

    def __init__(self, low, high, shape=None, dtype=np.float64):
        if shape is None:
            low_arr = np.asarray(low, dtype=dtype)
            high_arr = np.asarray(high, dtype=dtype)
            if low_arr.shape != high_arr.shape:
                raise ValueError(
                    f"low shape {low_arr.shape} != high shape {high_arr.shape}"
                )
            shape = low_arr.shape
        else:
            shape = tuple(shape)
            low_arr = np.full(shape, low, dtype=dtype)
            high_arr = np.full(shape, high, dtype=dtype)
        if np.any(low_arr > high_arr):
            raise ValueError("low must not exceed high anywhere")
        self.low = low_arr
        self.high = high_arr
        self.shape = shape
        self.dtype = dtype

    @property
    def dim(self) -> int:
        """Number of scalar components in the space."""
        return int(np.prod(self.shape)) if self.shape else 1

    @property
    def bounded(self) -> bool:
        """Whether every dimension has finite bounds."""
        return bool(np.all(np.isfinite(self.low)) and np.all(np.isfinite(self.high)))

    def contains(self, value) -> bool:
        """Whether ``value`` lies inside the box (inclusive bounds)."""
        arr = np.asarray(value, dtype=self.dtype)
        if arr.shape != self.shape:
            return False
        return bool(np.all(arr >= self.low) and np.all(arr <= self.high))

    def clip(self, value) -> np.ndarray:
        """Clip a value into the box."""
        return np.clip(np.asarray(value, dtype=self.dtype), self.low, self.high)

    def sample(self, rng: np.random.Generator) -> np.ndarray:
        """Uniform sample from the box (standard normal if unbounded)."""
        if self.bounded:
            return rng.uniform(self.low, self.high).astype(self.dtype)
        return rng.standard_normal(self.shape).astype(self.dtype)

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, Box)
            and self.shape == other.shape
            and np.array_equal(self.low, other.low)
            and np.array_equal(self.high, other.high)
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Box(shape={self.shape}, low={self.low.min()}, high={self.high.max()})"
