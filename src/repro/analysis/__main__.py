"""CLI of the invariant linter: ``python -m repro.analysis``.

Usage::

    PYTHONPATH=src python -m repro.analysis --strict src benchmarks examples
    PYTHONPATH=src python -m repro.analysis --format json src
    PYTHONPATH=src python -m repro.analysis --list-rules

Exit codes: ``0`` when clean, ``1`` on findings (``error`` severity always
fails; ``warning`` findings fail only under ``--strict``), ``2`` on usage
errors.  This is the command the CI lint job runs.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from .engine import analyze
from .rules import RULES, resolve_rules

__all__ = ["build_parser", "main"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description=(
            "AST-based invariant linter for the FIXAR reproduction: "
            "enforces the ROADMAP's durable contracts (batch-invariant env "
            "kernels, deterministic pricing oracles, ReplayBuffer lock "
            "discipline, the blessed seeding scheme, oracle-surface parity, "
            "config/CLI parity) at diff time"
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="output format (json emits the full report object)",
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="exit non-zero on any unsuppressed finding, warnings included",
    )
    parser.add_argument(
        "--rule",
        action="append",
        default=None,
        metavar="RULE-ID",
        help="run only the named rule (repeatable; default: all rules)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the registered rules and exit",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule_id, cls in RULES.items():
            print(f"{rule_id:24s} [{cls.severity:7s}] {cls.description}")
        return 0

    try:
        rules = resolve_rules(args.rule)
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    try:
        report = analyze(args.paths, rules=rules)
    except FileNotFoundError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2

    if args.format == "json":
        print(json.dumps(report.to_dict(), indent=2))
    else:
        for finding in report.findings:
            print(finding.render())
        summary = (
            f"{len(report.files)} files, {len(report.rules)} rules: "
            f"{len(report.findings)} finding"
            f"{'s' if len(report.findings) != 1 else ''}"
        )
        if report.suppressed:
            summary += f" ({len(report.suppressed)} suppressed by pragma)"
        print(summary)
    return report.exit_code(strict=args.strict)


if __name__ == "__main__":
    sys.exit(main())
