"""The invariant linter's engine: collect sources, run rules, suppress.

The engine walks the requested paths, parses every ``.py`` file once into a
:class:`SourceModule`, runs each registered rule — module-scoped rules see
one module at a time, project rules see the whole parsed set (that is how
the cross-file parity rules compare ``FixarPlatform`` against
``AcceleratorPool``, and ``TrainingConfig`` against the CLI) — and then
applies the inline suppression pragmas, producing an
:class:`AnalysisReport`.

Everything here is :mod:`ast`-based and import-free: the linter never
executes the code it checks, so it runs identically in CI, on broken
branches, and on files with heavy import-time dependencies.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from .findings import Finding
from .pragmas import suppressed_lines

__all__ = ["SourceModule", "AnalysisReport", "collect_sources", "analyze"]


@dataclass
class SourceModule:
    """One parsed source file, as every rule sees it."""

    #: Path as passed on the command line (repo-relative from the repo root).
    file: str
    #: Normalized posix path used for scope matching (``repro/envs/...``).
    posix: str
    #: Raw source text.
    source: str
    #: Parsed module AST.
    tree: ast.Module

    def in_scope(self, *fragments: str) -> bool:
        """Whether this module lives under any of the given path fragments.

        Fragments are posix path substrings like ``"repro/envs/"`` — rules
        use them to scope themselves to the layers whose invariants they
        enforce.
        """
        return any(fragment in self.posix for fragment in fragments)


@dataclass
class AnalysisReport:
    """Outcome of one linter run."""

    #: Unsuppressed findings, ordered by file then line.
    findings: List[Finding] = field(default_factory=list)
    #: Findings silenced by a justified pragma (kept for reporting).
    suppressed: List[Finding] = field(default_factory=list)
    #: Files analyzed.
    files: List[str] = field(default_factory=list)
    #: Rule ids that ran.
    rules: List[str] = field(default_factory=list)

    @property
    def errors(self) -> List[Finding]:
        return [finding for finding in self.findings if finding.severity == "error"]

    def exit_code(self, strict: bool = False) -> int:
        """Process exit code: errors always fail, warnings only under strict."""
        if self.errors:
            return 1
        if strict and self.findings:
            return 1
        return 0

    def to_dict(self) -> dict:
        """JSON-serializable form of the whole report."""
        return {
            "files": list(self.files),
            "rules": list(self.rules),
            "findings": [finding.to_dict() for finding in self.findings],
            "suppressed": [finding.to_dict() for finding in self.suppressed],
        }


def _iter_python_files(path: Path) -> List[Path]:
    if path.is_file():
        return [path] if path.suffix == ".py" else []
    return sorted(candidate for candidate in path.rglob("*.py"))


def collect_sources(paths: Sequence) -> List[SourceModule]:
    """Parse every ``.py`` file under the given files/directories.

    Paths are kept as given (so findings print repo-relative paths when the
    CLI runs from the repo root); a file that does not parse raises
    ``SyntaxError`` — the linter has nothing useful to say about code the
    interpreter itself would reject.
    """
    modules = []
    seen = set()
    for raw in paths:
        root = Path(raw)
        if not root.exists():
            raise FileNotFoundError(f"no such file or directory: {raw}")
        for file_path in _iter_python_files(root):
            posix = file_path.as_posix()
            if posix in seen:
                continue
            seen.add(posix)
            source = file_path.read_text()
            modules.append(
                SourceModule(
                    file=str(file_path),
                    posix=posix,
                    source=source,
                    tree=ast.parse(source, filename=str(file_path)),
                )
            )
    return modules


def analyze(
    paths: Sequence,
    rules: Optional[Sequence] = None,
) -> AnalysisReport:
    """Run the invariant linter over the given paths.

    ``rules`` defaults to every registered rule (see
    :data:`repro.analysis.rules.RULES`); pass a sequence of rule instances
    to run a subset — the fixture tests use this to probe one rule at a
    time.
    """
    from .rules import default_rules

    active = list(default_rules() if rules is None else rules)
    modules = collect_sources(paths)

    raw: List[Finding] = []
    for rule in active:
        if rule.project_scope:
            raw.extend(rule.check_project(modules))
        else:
            for module in modules:
                raw.extend(rule.check(module))

    # Pragma pass: justified pragmas move findings to the suppressed list;
    # malformed pragmas contribute findings of their own.
    allowed_by_file: Dict[str, Dict[str, set]] = {}
    for module in modules:
        allowed, meta = suppressed_lines(module.source, module.file)
        allowed_by_file[module.file] = allowed
        raw.extend(meta)

    findings: List[Finding] = []
    suppressed: List[Finding] = []
    for finding in raw:
        allowed = allowed_by_file.get(finding.file, {})
        if finding.line in allowed.get(finding.rule, ()):
            suppressed.append(finding)
        else:
            findings.append(finding)

    order = lambda f: (f.file, f.line, f.rule)  # noqa: E731 - local sort key
    return AnalysisReport(
        findings=sorted(findings, key=order),
        suppressed=sorted(suppressed, key=order),
        files=[module.file for module in modules],
        rules=[rule.rule_id for rule in active],
    )
