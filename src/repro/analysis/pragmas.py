"""Inline suppression pragmas for the invariant linter.

A finding is suppressed by an inline comment on the finding's line (or a
standalone comment on the line directly above it)::

    elapsed = time.perf_counter() - start  # repro-lint: allow[deterministic-oracles]: measures real wall clock

The grammar is::

    pragma        ::= "# repro-lint: allow[" rule-id "]" separator justification
    separator     ::= ":" | "--"

The justification text is **required**: a suppression is a reviewed,
documented exception to a durable invariant, not an escape hatch.  A pragma
without one does not suppress anything — it instead produces its own
``pragma-justification`` finding, so an undocumented ``allow`` can never
slip through CI silently.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Dict, List, Tuple

from .findings import Finding

__all__ = ["Pragma", "PRAGMA_RULE_ID", "scan_pragmas", "suppressed_lines"]

#: Rule id of the meta-findings emitted for malformed pragmas.
PRAGMA_RULE_ID = "pragma-justification"

_PRAGMA = re.compile(
    r"#\s*repro-lint:\s*allow\[(?P<rule>[A-Za-z0-9_-]+)\]"
    r"(?:\s*(?::|--)\s*(?P<why>.*))?"
)


@dataclass(frozen=True)
class Pragma:
    """One parsed ``repro-lint: allow`` comment."""

    #: 1-based line the pragma comment sits on.
    line: int
    #: Rule id the pragma allows.
    rule: str
    #: Required justification text ("" when missing — an invalid pragma).
    justification: str

    @property
    def valid(self) -> bool:
        return bool(self.justification.strip())


def scan_pragmas(source: str) -> List[Pragma]:
    """All ``repro-lint: allow`` pragmas in a source text, in line order.

    Purely lexical (a regex over raw lines), so pragmas inside string
    literals are matched too; in practice the linter's own fixture tests are
    the only place that writes pragma text into strings, and those build
    sources from concatenation precisely to stay invisible here.
    """
    pragmas = []
    for lineno, text in enumerate(source.splitlines(), start=1):
        for match in _PRAGMA.finditer(text):
            pragmas.append(
                Pragma(
                    line=lineno,
                    rule=match.group("rule"),
                    justification=(match.group("why") or "").strip(),
                )
            )
    return pragmas


def suppressed_lines(
    source: str, file: str
) -> Tuple[Dict[str, set], List[Finding]]:
    """Suppression map and pragma meta-findings of one source file.

    Returns ``(allowed, meta)`` where ``allowed`` maps a rule id to the set
    of line numbers that rule is suppressed on — the pragma's own line plus
    the line below it, so a standalone pragma comment covers the following
    statement — and ``meta`` holds one ``pragma-justification`` error per
    pragma missing its justification text.
    """
    allowed: Dict[str, set] = {}
    meta: List[Finding] = []
    for pragma in scan_pragmas(source):
        if not pragma.valid:
            meta.append(
                Finding(
                    file=file,
                    line=pragma.line,
                    rule=PRAGMA_RULE_ID,
                    severity="error",
                    message=(
                        f"suppression pragma allow[{pragma.rule}] has no "
                        "justification; write '# repro-lint: "
                        f"allow[{pragma.rule}]: <why this exception is "
                        "sound>' — unjustified pragmas suppress nothing"
                    ),
                )
            )
            continue
        allowed.setdefault(pragma.rule, set()).update(
            (pragma.line, pragma.line + 1)
        )
    return allowed, meta
