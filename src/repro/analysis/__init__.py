"""Static analysis of the repro's durable invariants.

The ROADMAP's contracts — batch-invariant env kernels, deterministic
pricing oracles, ``ReplayBuffer`` lock discipline, the
``seed + env_offset(w) + i`` seeding scheme, the duck-typed oracle surface
shared by :class:`~repro.platform.FixarPlatform` and
:class:`~repro.platform.AcceleratorPool`, and ``TrainingConfig``/CLI parity
— were enforced only by convention and after-the-fact regression tests.
This package enforces them *statically*, at diff time, with an AST-visitor
rule framework symmetric with the scheduler's pluggable policies:

* :class:`~repro.analysis.rules.Rule` subclasses register via
  :func:`~repro.analysis.rules.register_rule` (the extension point);
* :func:`~repro.analysis.engine.analyze` parses the requested paths once
  and runs every rule, producing structured
  :class:`~repro.analysis.findings.Finding` records;
* inline ``# repro-lint: allow[rule-id]: <justification>`` pragmas suppress
  individual findings — the justification text is mandatory;
* ``python -m repro.analysis --strict src benchmarks examples`` is the CI
  gate (text or ``--format json`` output).

The linter is pure :mod:`ast` — it never imports or executes the code it
checks.
"""

from .engine import AnalysisReport, SourceModule, analyze, collect_sources
from .findings import SEVERITIES, Finding
from .pragmas import PRAGMA_RULE_ID, Pragma, scan_pragmas, suppressed_lines
from .rules import (
    RULES,
    BatchInvariantKernels,
    ConfigCliParity,
    DeterministicOracles,
    HotPathDiscipline,
    LockDiscipline,
    OracleSurfaceParity,
    PrecisionPolicyParity,
    Rule,
    SeedingScheme,
    default_rules,
    register_rule,
    resolve_rules,
)

__all__ = [
    "AnalysisReport",
    "SourceModule",
    "analyze",
    "collect_sources",
    "SEVERITIES",
    "Finding",
    "PRAGMA_RULE_ID",
    "Pragma",
    "scan_pragmas",
    "suppressed_lines",
    "RULES",
    "Rule",
    "register_rule",
    "default_rules",
    "resolve_rules",
    "BatchInvariantKernels",
    "DeterministicOracles",
    "LockDiscipline",
    "SeedingScheme",
    "OracleSurfaceParity",
    "ConfigCliParity",
    "PrecisionPolicyParity",
    "HotPathDiscipline",
]
