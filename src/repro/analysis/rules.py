"""The invariant rules the linter enforces, and their registry.

Each rule encodes one of the ROADMAP's durable contracts as an AST check,
the same way the round scheduler's :class:`~repro.rl.scheduler.SchedulePolicy`
and :class:`~repro.rl.scheduler.DeviceAssignmentPolicy` encode scheduling
behavior: a small class, a registry, and a resolve function.  Module rules
(``project_scope = False``) see one parsed :class:`~repro.analysis.engine.
SourceModule` at a time; project rules see the whole parsed set, which is
how the parity rules compare classes that live in different files.

Adding a rule is three steps: subclass :class:`Rule`, set ``rule_id`` /
``severity`` / ``description``, and decorate with :func:`register_rule`.
Every rule must ship a fixture test in ``tests/test_analysis.py`` proving
it both fires on a violation and stays quiet on conforming code.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Optional, Sequence, Set, Type

from .engine import SourceModule
from .findings import Finding

__all__ = [
    "Rule",
    "RULES",
    "register_rule",
    "default_rules",
    "resolve_rules",
    "BatchInvariantKernels",
    "DeterministicOracles",
    "LockDiscipline",
    "SeedingScheme",
    "OracleSurfaceParity",
    "ConfigCliParity",
    "PrecisionPolicyParity",
    "HotPathDiscipline",
]


class Rule:
    """One checkable invariant.

    ``project_scope`` selects the hook the engine calls: :meth:`check` per
    module, or :meth:`check_project` once with every parsed module.
    """

    rule_id = ""
    severity = "error"
    description = ""
    project_scope = False

    def check(self, module: SourceModule) -> List[Finding]:
        return []

    def check_project(self, modules: Sequence[SourceModule]) -> List[Finding]:
        return []

    def finding(self, file: str, line: int, message: str) -> Finding:
        return Finding(
            file=file,
            line=line,
            rule=self.rule_id,
            severity=self.severity,
            message=message,
        )


#: Registry of shipped rules, keyed by rule id (insertion-ordered).
RULES: Dict[str, Type[Rule]] = {}


def register_rule(cls: Type[Rule]) -> Type[Rule]:
    """Class decorator adding a rule to :data:`RULES` (the extension point)."""
    if not cls.rule_id:
        raise ValueError(f"{cls.__name__} must set a non-empty rule_id")
    if cls.rule_id in RULES:
        raise ValueError(f"duplicate rule id {cls.rule_id!r}")
    RULES[cls.rule_id] = cls
    return cls


def default_rules() -> List[Rule]:
    """One instance of every registered rule, registration order."""
    return [cls() for cls in RULES.values()]


def resolve_rules(names: Optional[Iterable[str]]) -> List[Rule]:
    """Instances for the named rules (``None`` = all), unknown names raise."""
    if names is None:
        return default_rules()
    rules = []
    for name in names:
        if name not in RULES:
            raise ValueError(
                f"unknown rule {name!r}; registered rules are {sorted(RULES)}"
            )
        rules.append(RULES[name]())
    return rules


# --------------------------------------------------------------------- #
# AST helpers shared by the rules
# --------------------------------------------------------------------- #
def _dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, ``None`` for anything else."""
    parts = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _identifiers(node: ast.AST) -> Set[str]:
    """Every Name id and Attribute attr in a subtree (``args.seed`` → seed)."""
    names = set()
    for child in ast.walk(node):
        if isinstance(child, ast.Name):
            names.add(child.id)
        elif isinstance(child, ast.Attribute):
            names.add(child.attr)
    return names


# --------------------------------------------------------------------- #
# Rule 1: env kernels must stay batch-invariant (no BLAS matmuls)
# --------------------------------------------------------------------- #
@register_rule
class BatchInvariantKernels(Rule):
    """``src/repro/envs/`` may not call BLAS matmul entry points.

    The vectorized fast path is bit-exact with scalar stepping only because
    the physics kernels are elementwise ops plus multiply/sum reductions;
    ``np.dot``/``np.matmul``/``np.einsum`` (and the ``@`` operator) route
    through BLAS, whose reduction order — and therefore floating-point
    result — varies with batch shape and thread count.
    """

    rule_id = "batch-invariant-kernels"
    severity = "error"
    description = (
        "env kernels may not call np.dot/np.matmul/np.einsum or use '@' "
        "(BLAS reductions are not batch-invariant)"
    )

    SCOPE = ("repro/envs/",)
    BANNED_CALLS = frozenset(
        f"{module}.{function}"
        for module in ("np", "numpy")
        for function in ("dot", "matmul", "einsum", "tensordot", "inner", "vdot")
    )

    def check(self, module: SourceModule) -> List[Finding]:
        if not module.in_scope(*self.SCOPE):
            return []
        findings = []
        for node in ast.walk(module.tree):
            if isinstance(node, (ast.BinOp, ast.AugAssign)) and isinstance(
                node.op, ast.MatMult
            ):
                findings.append(
                    self.finding(
                        module.file,
                        node.lineno,
                        "matrix-multiply operator '@' in an env kernel; "
                        "batch-invariant physics use elementwise ops and "
                        "explicit multiply/sum reductions (see "
                        "LocomotionDynamics)",
                    )
                )
            elif isinstance(node, ast.Call):
                name = _dotted_name(node.func)
                if name in self.BANNED_CALLS:
                    findings.append(
                        self.finding(
                            module.file,
                            node.lineno,
                            f"{name}() in an env kernel routes through BLAS "
                            "and is not batch-invariant; use elementwise "
                            "ops with explicit sum reductions",
                        )
                    )
        return findings


# --------------------------------------------------------------------- #
# Rule 2: pricing oracles must stay deterministic
# --------------------------------------------------------------------- #
@register_rule
class DeterministicOracles(Rule):
    """``platform``/``accelerator``/``serving`` modules may not read wall
    clocks or global randomness.

    The platform layer is the pricing *oracle* of the scheduler, the
    weighted policy, and every throughput contract: two calls with the same
    arguments must price identically, forever.  Wall-clock reads and
    module-level random draws (stdlib ``random``, unseeded ``np.random``)
    make the oracle's answers depend on when — not what — it was asked.
    The serving front end is in scope too: its load traces, flush plans,
    and QPS/latency reports are modelled quantities with exact-equality
    determinism pins, so a wall-clock or global-RNG read there breaks the
    same contract.
    """

    rule_id = "deterministic-oracles"
    severity = "error"
    description = (
        "platform/accelerator/serving modules may not call wall-clock or "
        "module-level/unseeded random APIs (pricing must be deterministic)"
    )

    SCOPE = ("repro/platform/", "repro/accelerator/", "repro/serving/")
    WALL_CLOCK = frozenset(
        f"time.{function}"
        for function in (
            "time",
            "time_ns",
            "perf_counter",
            "perf_counter_ns",
            "monotonic",
            "monotonic_ns",
        )
    )
    #: Module-level np.random APIs (all share one hidden global state).
    GLOBAL_NP_RANDOM = frozenset(
        {
            "rand",
            "randn",
            "random",
            "random_sample",
            "ranf",
            "sample",
            "randint",
            "uniform",
            "normal",
            "standard_normal",
            "choice",
            "shuffle",
            "permutation",
            "seed",
            "get_state",
            "set_state",
        }
    )

    def check(self, module: SourceModule) -> List[Finding]:
        if not module.in_scope(*self.SCOPE):
            return []
        findings = []
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            name = _dotted_name(node.func)
            if name is None:
                continue
            if name in self.WALL_CLOCK:
                findings.append(
                    self.finding(
                        module.file,
                        node.lineno,
                        f"{name}() reads the wall clock inside a pricing "
                        "oracle; model time must be derived from the timing "
                        "models, not measured",
                    )
                )
            elif name.startswith("random."):
                findings.append(
                    self.finding(
                        module.file,
                        node.lineno,
                        f"{name}() draws from the stdlib global RNG; oracles "
                        "must be deterministic — take an explicit seeded "
                        "np.random.Generator if randomness is required",
                    )
                )
            elif name.startswith(("np.random.", "numpy.random.")):
                tail = name.rsplit(".", 1)[1]
                if tail in self.GLOBAL_NP_RANDOM:
                    findings.append(
                        self.finding(
                            module.file,
                            node.lineno,
                            f"{name}() uses numpy's hidden global RNG state; "
                            "use an explicit seeded np.random.Generator",
                        )
                    )
                elif tail == "default_rng" and not (node.args or node.keywords):
                    findings.append(
                        self.finding(
                            module.file,
                            node.lineno,
                            "np.random.default_rng() without a seed is "
                            "entropy-seeded; pricing oracles must pass an "
                            "explicit seed",
                        )
                    )
        return findings


# --------------------------------------------------------------------- #
# Rule 3: ReplayBuffer state mutations must hold the lock
# --------------------------------------------------------------------- #
@register_rule
class LockDiscipline(Rule):
    """Methods of the shared producer/consumer classes may mutate state
    only under ``self._lock``.

    ``ReplayBuffer`` is the single shared sink of the collection subsystem
    — async workers ``add_batch`` while the learner ``sample``s — and the
    serving front end's ``RequestQueue`` has the same shape (producers
    enqueue while the batcher flushes), so any private-attribute write
    outside a ``with self._lock`` block reintroduces the torn-transition
    races PR 2 closed.  ``__init__`` is exempt (no concurrent aliases
    exist before construction returns).
    """

    rule_id = "lock-discipline"
    severity = "error"
    description = (
        "ReplayBuffer/RequestQueue methods must mutate shared state inside "
        "'with self._lock' (producer/consumer classes of the async paths)"
    )

    TARGET_CLASSES = ("ReplayBuffer", "RequestQueue")
    EXEMPT_METHODS = frozenset({"__init__"})

    def check(self, module: SourceModule) -> List[Finding]:
        findings = []
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ClassDef) and node.name in self.TARGET_CLASSES:
                for item in node.body:
                    if (
                        isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
                        and item.name not in self.EXEMPT_METHODS
                    ):
                        self._check_method(module, node.name, item, findings)
        return findings

    @staticmethod
    def _holds_lock(with_node: ast.With) -> bool:
        for item in with_node.items:
            name = _dotted_name(item.context_expr)
            if name is not None and name.startswith("self.") and "lock" in name:
                return True
        return False

    @staticmethod
    def _mutated_attr(target: ast.AST) -> Optional[str]:
        """The ``self._x`` attribute a store target writes, if any."""
        if isinstance(target, (ast.Subscript, ast.Starred)):
            return LockDiscipline._mutated_attr(target.value)
        if isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                attr = LockDiscipline._mutated_attr(element)
                if attr is not None:
                    return attr
            return None
        if isinstance(target, ast.Attribute):
            if (
                isinstance(target.value, ast.Name)
                and target.value.id == "self"
                and target.attr.startswith("_")
            ):
                return target.attr
        return None

    def _check_method(self, module, class_name, method, findings: List[Finding]) -> None:
        def visit(statements, locked: bool) -> None:
            for statement in statements:
                if isinstance(statement, (ast.With, ast.AsyncWith)):
                    visit(
                        statement.body,
                        locked or self._holds_lock(statement),
                    )
                    continue
                targets = []
                if isinstance(statement, ast.Assign):
                    targets = statement.targets
                elif isinstance(statement, (ast.AugAssign, ast.AnnAssign)):
                    targets = [statement.target]
                for target in targets:
                    attr = self._mutated_attr(target)
                    if attr is not None and not locked:
                        findings.append(
                            self.finding(
                                module.file,
                                statement.lineno,
                                f"{class_name}.{method.name} writes "
                                f"self.{attr} outside 'with self._lock'; "
                                "the state is shared across the async "
                                "producer/consumer threads",
                            )
                        )
                # Recurse into compound statements (if/for/while/try),
                # preserving the lock state; nested defs start a new scope
                # whose lock usage the rule does not track.
                for field_name in ("body", "orelse", "finalbody"):
                    body = getattr(statement, field_name, None)
                    if isinstance(body, list) and not isinstance(
                        statement,
                        (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef),
                    ):
                        visit(body, locked)
                for handler in getattr(statement, "handlers", []) or []:
                    visit(handler.body, locked)

        visit(method.body, locked=False)


# --------------------------------------------------------------------- #
# Rule 4: seed arithmetic stays inside the blessed helper
# --------------------------------------------------------------------- #
@register_rule
class SeedingScheme(Rule):
    """Worker/env seed arithmetic belongs in ``worker_env_seed``.

    The fleet's determinism contract is the single scheme
    ``seed + env_offset(w) + i``; re-deriving a worker offset inline
    (``seed + w * num_envs``-style arithmetic) forks the scheme and breaks
    the moment widths stop being uniform — exactly the drift the
    cumulative-offset refactor closed.  Call
    :func:`repro.rl.workers.worker_env_seed` instead.
    """

    rule_id = "seeding-scheme"
    severity = "warning"
    description = (
        "worker/env seed offset arithmetic outside worker_env_seed forks "
        "the seed + env_offset(w) + i scheme"
    )

    #: Functions allowed to do raw seed arithmetic (the scheme's home).
    BLESSED_FUNCTIONS = frozenset({"worker_env_seed"})
    #: Identifiers whose product with anything marks worker-offset math.
    OFFSET_NAMES = frozenset(
        {"num_envs", "num_workers", "width", "worker_id", "env_offset"}
    )

    def check(self, module: SourceModule) -> List[Finding]:
        findings = []

        def is_offset_product(node: ast.AST) -> bool:
            for child in ast.walk(node):
                if isinstance(child, ast.BinOp) and isinstance(child.op, ast.Mult):
                    if _identifiers(child) & self.OFFSET_NAMES:
                        return True
            return False

        def visit(node: ast.AST, blessed: bool) -> None:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                blessed = blessed or node.name in self.BLESSED_FUNCTIONS
            if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Add):
                sides = (node.left, node.right)
                seedish = any(
                    any("seed" in name for name in _identifiers(side))
                    for side in sides
                )
                offset = any(is_offset_product(side) for side in sides)
                if seedish and offset and not blessed:
                    findings.append(
                        self.finding(
                            module.file,
                            node.lineno,
                            "inline worker seed arithmetic; derive the seed "
                            "via repro.rl.workers.worker_env_seed so the "
                            "cumulative env_offset scheme stays the single "
                            "source of truth",
                        )
                    )
            for child in ast.iter_child_nodes(node):
                visit(child, blessed)

        visit(module.tree, blessed=False)
        return findings


# --------------------------------------------------------------------- #
# Rule 5: the pool must mirror the platform's oracle surface
# --------------------------------------------------------------------- #
@register_rule
class OracleSurfaceParity(Rule):
    """``AcceleratorPool`` must define every oracle method of
    ``FixarPlatform``.

    The scheduler and training paths talk to whichever platform object the
    caller passed — single accelerator or pool — through duck typing, so a
    public ``infer_*`` / ``fleet_*`` / ``*_round_seconds`` method added to
    ``FixarPlatform`` but not the pool silently prices multi-device runs on
    an AttributeError away from working.  This rule statically pins the
    surface.
    """

    rule_id = "oracle-surface-parity"
    severity = "error"
    description = (
        "AcceleratorPool must statically define every public infer_*/"
        "fleet_*/*_round_seconds method FixarPlatform defines"
    )
    project_scope = True

    SOURCE_CLASS = "FixarPlatform"
    MIRROR_CLASS = "AcceleratorPool"
    SCOPE = ("repro/platform/",)

    @staticmethod
    def _oracle_surface(class_node: ast.ClassDef) -> Set[str]:
        names = set()
        for item in class_node.body:
            if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                name = item.name
                if name.startswith("_"):
                    continue
                if (
                    name.startswith("infer_")
                    or name.startswith("fleet_")
                    or name.endswith("_round_seconds")
                ):
                    names.add(name)
        return names

    def _find_class(self, modules, class_name: str):
        for module in modules:
            if not module.in_scope(*self.SCOPE):
                continue
            for node in module.tree.body:
                if isinstance(node, ast.ClassDef) and node.name == class_name:
                    return module, node
        return None, None

    def check_project(self, modules: Sequence[SourceModule]) -> List[Finding]:
        _source_module, source = self._find_class(modules, self.SOURCE_CLASS)
        mirror_module, mirror = self._find_class(modules, self.MIRROR_CLASS)
        if source is None or mirror is None:
            # The rule compares the two platform classes; a scan that does
            # not include both (e.g. linting only benchmarks/) has nothing
            # to check.
            return []
        missing = sorted(
            self._oracle_surface(source) - self._oracle_surface(mirror)
        )
        return [
            self.finding(
                mirror_module.file,
                mirror.lineno,
                f"{self.MIRROR_CLASS} is missing {self.SOURCE_CLASS}'s "
                f"oracle method {name}(); the duck-typed pricing surface "
                "must not drift between the single platform and the pool",
            )
            for name in missing
        ]


# --------------------------------------------------------------------- #
# Rule 6: every TrainingConfig field is reachable from the CLI
# --------------------------------------------------------------------- #
@register_rule
class ConfigCliParity(Rule):
    """Every config field has a CLI flag or a documented exclusion.

    For each covered config class (``TrainingConfig`` ↔ the ``train``
    flags, ``ServingConfig`` ↔ the ``serve`` flags), ``cli.py`` declares a
    flag-alias mapping (field → flag, for flags whose spelling is not the
    mechanical ``--field-name``) and an exclusion list (field → one-line
    reason).  A config field covered by neither is a knob users cannot
    reach — the drift this rule pins at diff time instead of issue-report
    time.  Stale alias or exclusion entries (naming no current field) are
    flagged too.
    """

    rule_id = "config-cli-parity"
    severity = "error"
    description = (
        "every TrainingConfig/ServingConfig field needs a CLI flag in "
        "cli.py or an entry in its documented exclusion list"
    )
    project_scope = True

    #: (config class, config scope, aliases constant, exclusions constant).
    SPECS = (
        (
            "TrainingConfig",
            ("repro/rl/",),
            "CONFIG_FLAG_ALIASES",
            "CONFIG_FIELDS_WITHOUT_FLAGS",
        ),
        (
            "ServingConfig",
            ("repro/serving/",),
            "SERVING_FLAG_ALIASES",
            "SERVING_FIELDS_WITHOUT_FLAGS",
        ),
    )
    CLI_SCOPE = ("repro/cli.py",)

    def _config_fields(self, modules, config_class, config_scope):
        for module in modules:
            if not module.in_scope(*config_scope):
                continue
            for node in ast.walk(module.tree):
                if isinstance(node, ast.ClassDef) and node.name == config_class:
                    fields = {}
                    for item in node.body:
                        if isinstance(item, ast.AnnAssign) and isinstance(
                            item.target, ast.Name
                        ):
                            fields[item.target.id] = item.lineno
                    return module, fields
        return None, {}

    def _cli_module(self, modules):
        for module in modules:
            if module.in_scope(*self.CLI_SCOPE):
                return module
        return None

    @staticmethod
    def _module_constant(module, name: str):
        """(literal value, line) of a module-level constant, if present."""
        for node in module.tree.body:
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    if isinstance(target, ast.Name) and target.id == name:
                        try:
                            return ast.literal_eval(node.value), node.lineno
                        except ValueError:
                            return None, node.lineno
        return None, None

    @staticmethod
    def _declared_flags(module) -> Set[str]:
        flags = set()
        for node in ast.walk(module.tree):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "add_argument"
            ):
                for argument in node.args:
                    if isinstance(argument, ast.Constant) and isinstance(
                        argument.value, str
                    ):
                        if argument.value.startswith("--"):
                            flags.add(argument.value)
        return flags

    def check_project(self, modules: Sequence[SourceModule]) -> List[Finding]:
        cli = self._cli_module(modules)
        if cli is None:
            return []
        flags = self._declared_flags(cli)
        findings = []
        for config_class, config_scope, aliases_name, exclusions_name in self.SPECS:
            config_module, fields = self._config_fields(
                modules, config_class, config_scope
            )
            if config_module is None or not fields:
                # A scan without this config class (e.g. the fixture trees
                # in the rule tests) has nothing to check for this spec.
                continue
            aliases, aliases_line = self._module_constant(cli, aliases_name)
            exclusions, exclusions_line = self._module_constant(
                cli, exclusions_name
            )
            aliases = dict(aliases or {})
            exclusions = dict(exclusions or {})

            for field_name, line in fields.items():
                flag = aliases.get(field_name, "--" + field_name.replace("_", "-"))
                if flag in flags or field_name in exclusions:
                    continue
                findings.append(
                    self.finding(
                        config_module.file,
                        line,
                        f"{config_class}.{field_name} has no CLI flag "
                        f"({flag} is not declared in cli.py) and no "
                        f"{exclusions_name} entry; add the flag or document "
                        "the exclusion",
                    )
                )
            for stale in sorted(set(aliases) - set(fields)):
                findings.append(
                    self.finding(
                        cli.file,
                        aliases_line or 1,
                        f"{aliases_name} names {stale!r}, which is not a "
                        f"{config_class} field (stale alias)",
                    )
                )
            for stale in sorted(set(exclusions) - set(fields)):
                findings.append(
                    self.finding(
                        cli.file,
                        exclusions_line or 1,
                        f"{exclusions_name} names {stale!r}, which is not a "
                        f"{config_class} field (stale exclusion)",
                    )
                )
        return findings


# --------------------------------------------------------------------- #
# Rule 7: every PrecisionPolicy subclass is registered
# --------------------------------------------------------------------- #
@register_rule
class PrecisionPolicyParity(Rule):
    """Every concrete ``PrecisionPolicy`` subclass must be registered.

    ``--precision-policy`` and :func:`~repro.rl.precision.resolve_precision`
    look policies up in the ``PRECISION_POLICIES`` registry, which is
    populated only by the :func:`~repro.rl.precision.register_precision_policy`
    decorator.  A subclass someone writes but forgets to decorate is a
    policy users cannot select — exactly the silent drift the schedule and
    assignment registries already guard against by convention.  This rule
    pins the convention statically: every class in ``repro/rl/`` that
    derives (transitively, within the scanned files) from ``PrecisionPolicy``
    must carry the ``@register_precision_policy`` decorator.
    """

    rule_id = "precision-policy-parity"
    severity = "error"
    description = (
        "every PrecisionPolicy subclass in repro/rl/ must be decorated with "
        "@register_precision_policy so --precision-policy can resolve it"
    )
    project_scope = True

    BASE_CLASS = "PrecisionPolicy"
    REGISTRAR = "register_precision_policy"
    SCOPE = ("repro/rl/",)

    def _scoped_classes(self, modules):
        classes = {}
        for module in modules:
            if not module.in_scope(*self.SCOPE):
                continue
            for node in ast.walk(module.tree):
                if isinstance(node, ast.ClassDef):
                    classes[node.name] = (module, node)
        return classes

    def _derives_from_base(self, name, classes, _seen=None) -> bool:
        seen = _seen or set()
        if name in seen:
            return False
        seen.add(name)
        _module, node = classes[name]
        for base in node.bases:
            base_name = _dotted_name(base)
            if base_name is None:
                continue
            base_name = base_name.rsplit(".", 1)[-1]
            if base_name == self.BASE_CLASS:
                return True
            if base_name in classes and self._derives_from_base(
                base_name, classes, seen
            ):
                return True
        return False

    def _is_registered(self, node: ast.ClassDef) -> bool:
        for decorator in node.decorator_list:
            target = decorator.func if isinstance(decorator, ast.Call) else decorator
            name = _dotted_name(target)
            if name is not None and name.rsplit(".", 1)[-1] == self.REGISTRAR:
                return True
        return False

    def check_project(self, modules: Sequence[SourceModule]) -> List[Finding]:
        classes = self._scoped_classes(modules)
        if self.BASE_CLASS not in classes:
            # A scan that does not include the precision module (e.g.
            # linting only benchmarks/) has nothing to check.
            return []
        findings = []
        for name in sorted(classes):
            if name == self.BASE_CLASS or name.startswith("_"):
                continue
            module, node = classes[name]
            if not self._derives_from_base(name, classes):
                continue
            if self._is_registered(node):
                continue
            findings.append(
                self.finding(
                    module.file,
                    node.lineno,
                    f"{name} subclasses {self.BASE_CLASS} but is not decorated "
                    f"with @{self.REGISTRAR}; unregistered policies cannot be "
                    "selected via --precision-policy or resolve_precision()",
                )
            )
        return findings


# --------------------------------------------------------------------- #
# Rule 8: hot-annotated functions stay allocation-disciplined
# --------------------------------------------------------------------- #
@register_rule
class HotPathDiscipline(Rule):
    """Functions marked ``# repro-lint: hot`` may not re-allocate per call.

    The rollout hot path earns its measured-throughput contract
    (``bench_hotpath``) by hoisting per-lock-step allocations and lookups:
    index vectors are cached, info dicts are lazy, and ``self.a.b`` chains
    are bound once.  The hot marker — placed on the ``def`` line or the
    line directly above it — declares a function part of that path, and
    this rule keeps the discipline from regressing: inside a hot function
    it flags ``np.arange`` calls (per-call index allocation), dict
    displays/comprehensions (per-call boxing), and loads of ``self.x.y``
    attribute chains (re-resolved every call; bind them in ``__init__`` or
    to a local).  Warnings, like ``seeding-scheme`` — but CI runs
    ``--strict``, so shipped hot functions stay clean.
    """

    rule_id = "hot-path-discipline"
    severity = "warning"
    description = (
        "functions annotated '# repro-lint" ": hot' may not call np.arange, "
        "build dict literals, or load self.x.y attribute chains per call"
    )

    #: The marker, concatenated so this file's own source never matches.
    HOT_MARKER = "# repro-lint" ": hot"
    ARANGE_CALLS = frozenset({"np.arange", "numpy.arange"})

    def _hot_functions(self, module: SourceModule):
        lines = module.source.splitlines()
        marked = {
            lineno
            for lineno, line in enumerate(lines, start=1)
            if self.HOT_MARKER in line
        }
        if not marked:
            return
        for node in ast.walk(module.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if node.lineno in marked or node.lineno - 1 in marked:
                    yield node

    def check(self, module: SourceModule) -> List[Finding]:
        findings = []
        for function in self._hot_functions(module):
            # Only the outermost attribute of a chain is reported (walking
            # self.a.b.c also visits self.a.b, which would double-count).
            inner_attributes = {
                id(node.value)
                for node in ast.walk(function)
                if isinstance(node, ast.Attribute)
            }
            for node in ast.walk(function):
                if isinstance(node, ast.Call):
                    name = _dotted_name(node.func)
                    if name in self.ARANGE_CALLS:
                        findings.append(
                            self.finding(
                                module.file,
                                node.lineno,
                                f"{name}() inside hot {function.name}() "
                                "allocates an index vector every call; cache "
                                "it (e.g. in __init__) or use slice writes",
                            )
                        )
                elif isinstance(node, (ast.Dict, ast.DictComp)):
                    findings.append(
                        self.finding(
                            module.file,
                            node.lineno,
                            f"dict construction inside hot {function.name}() "
                            "boxes values every call; build dicts lazily "
                            "outside the hot path (see LazyInfos)",
                        )
                    )
                elif (
                    isinstance(node, ast.Attribute)
                    and isinstance(node.ctx, ast.Load)
                    and id(node) not in inner_attributes
                ):
                    name = _dotted_name(node)
                    if (
                        name is not None
                        and name.startswith("self.")
                        and name.count(".") >= 2
                    ):
                        findings.append(
                            self.finding(
                                module.file,
                                node.lineno,
                                f"attribute chain {name} inside hot "
                                f"{function.name}() re-resolves every call; "
                                "bind it to a local or cache the bound "
                                "method in __init__",
                            )
                        )
        return findings
