"""Structured findings of the repro's static-analysis pass.

A :class:`Finding` is one rule violation anchored to a file and line — the
unit the engine collects, the pragma layer suppresses, and the CLI renders
as text or JSON.  Findings are plain data (no AST references), so a report
round-trips through JSON losslessly.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass

__all__ = ["SEVERITIES", "Finding"]

#: Finding severities, most severe first.  ``error`` findings fail the run
#: unconditionally; ``warning`` findings fail it only under ``--strict``.
SEVERITIES = ("error", "warning")


@dataclass(frozen=True)
class Finding:
    """One rule violation at a specific source location."""

    #: Path of the offending file, as passed to the engine (repo-relative
    #: when the CLI is invoked from the repo root).
    file: str
    #: 1-based source line the finding anchors to.
    line: int
    #: Identifier of the rule that produced the finding (``Rule.rule_id``).
    rule: str
    #: ``"error"`` or ``"warning"`` (see :data:`SEVERITIES`).
    severity: str
    #: Human-readable description of the violation and the expected fix.
    message: str

    def __post_init__(self):
        if self.severity not in SEVERITIES:
            raise ValueError(
                f"severity must be one of {SEVERITIES}, got {self.severity!r}"
            )
        if self.line < 1:
            raise ValueError(f"line must be >= 1, got {self.line}")

    def to_dict(self) -> dict:
        """JSON-serializable mapping (inverse of :meth:`from_dict`)."""
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "Finding":
        """Rebuild a finding from :meth:`to_dict` output."""
        return cls(
            file=str(data["file"]),
            line=int(data["line"]),
            rule=str(data["rule"]),
            severity=str(data["severity"]),
            message=str(data["message"]),
        )

    def render(self) -> str:
        """One-line text form: ``file:line: severity[rule] message``."""
        return f"{self.file}:{self.line}: {self.severity}[{self.rule}] {self.message}"
