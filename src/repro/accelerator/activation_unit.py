"""Activation unit: the non-linear functions applied to accumulated outputs.

After the accumulator, the output vector passes through the activation unit
(ReLU for hidden layers, tanh for the actor output, identity for the critic
output) and is written back to the activation memory.  The unit operates on
fixed-point values; tanh is evaluated with a piecewise-linear approximation
like a hardware lookup implementation would.
"""

from __future__ import annotations

from enum import Enum

import numpy as np

from ..fixedpoint import FxpArray, QFormat

__all__ = ["ActivationFunction", "ActivationUnit"]


class ActivationFunction(str, Enum):
    """Supported non-linearities."""

    IDENTITY = "identity"
    RELU = "relu"
    TANH = "tanh"


def _piecewise_linear_tanh(values: np.ndarray, segments: int = 64) -> np.ndarray:
    """A hardware-friendly piecewise-linear tanh on [-4, 4].

    The approximation interpolates ``tanh`` over ``segments`` uniform pieces
    and clamps to ±1 outside the interval, which is how a small LUT-based
    activation unit behaves.
    """
    values = np.asarray(values, dtype=np.float64)
    limit = 4.0
    knots = np.linspace(-limit, limit, segments + 1)
    table = np.tanh(knots)
    clipped = np.clip(values, -limit, limit)
    return np.interp(clipped, knots, table)


class ActivationUnit:
    """Applies the layer non-linearity in fixed point."""

    def __init__(self, output_format: QFormat, tanh_segments: int = 64):
        if tanh_segments < 2:
            raise ValueError(f"tanh_segments must be >= 2, got {tanh_segments}")
        self.output_format = output_format
        self.tanh_segments = tanh_segments
        self.invocations = 0

    def apply(self, values: FxpArray, function: ActivationFunction) -> FxpArray:
        """Apply the non-linearity and re-quantize to the output format."""
        self.invocations += 1
        real = values.to_float()
        if function is ActivationFunction.RELU:
            real = np.maximum(real, 0.0)
        elif function is ActivationFunction.TANH:
            real = _piecewise_linear_tanh(real, self.tanh_segments)
        elif function is ActivationFunction.IDENTITY:
            pass
        else:  # pragma: no cover - exhaustive enum
            raise ValueError(f"unknown activation function {function!r}")
        return FxpArray.from_float(real, self.output_format)

    def apply_relu(self, values: FxpArray) -> FxpArray:
        return self.apply(values, ActivationFunction.RELU)

    def apply_tanh(self, values: FxpArray) -> FxpArray:
        return self.apply(values, ActivationFunction.TANH)
