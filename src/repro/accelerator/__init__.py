"""Cycle-approximate functional simulator of the FIXAR FPGA accelerator.

Models the adaptive array processing cores (16×16 configurable PEs), the
on-chip weight / gradient / activation memories, the column-wise dataflow
with intra-layer and intra-batch parallelism, the Adam weight-update module,
the exploration-noise PRNG, and the analytical resource / timing / power
models calibrated against the paper's Alveo U50 implementation.
"""

from .aap_core import AAPCore
from .accelerator import FixarAccelerator, LoadedLayer
from .accumulator import ColumnAccumulator, CrossCoreAccumulator
from .activation_unit import ActivationFunction, ActivationUnit
from .adam_unit import AdamUnit, AdamUnitConfig
from .config import AcceleratorConfig
from .dataflow import (
    ArrayGeometry,
    Parallelism,
    TileSchedule,
    column_wise_mvm,
    inference_schedule,
    interleave_columns,
    partition_batch,
    training_schedule,
)
from .line_buffer import ActivationLineBuffer
from .memory import (
    ActivationMemory,
    BRAM_BYTES,
    GradientMemory,
    MemoryError_,
    OnChipMemory,
    WeightMemory,
)
from .pe import PrecisionMode, ProcessingElement
from .power import PowerBreakdown, PowerModel
from .prng import GaloisLfsr32, HardwareNoiseGenerator
from .resources import ALVEO_U50, DeviceCapacity, ResourceModel, ResourceUsage
from .schedule_report import (
    layer_mapping_report,
    memory_footprint_report,
    workload_mapping_report,
)
from .timing import CycleBreakdown, TimingModel
from .trainer import LayerCache, OnChipTrainer, TrainingStepResult

__all__ = [
    "AcceleratorConfig",
    "FixarAccelerator",
    "LoadedLayer",
    "AAPCore",
    "ProcessingElement",
    "PrecisionMode",
    "ActivationLineBuffer",
    "ColumnAccumulator",
    "CrossCoreAccumulator",
    "ActivationFunction",
    "ActivationUnit",
    "AdamUnit",
    "AdamUnitConfig",
    "GaloisLfsr32",
    "HardwareNoiseGenerator",
    "OnChipMemory",
    "WeightMemory",
    "GradientMemory",
    "ActivationMemory",
    "MemoryError_",
    "BRAM_BYTES",
    "ArrayGeometry",
    "Parallelism",
    "TileSchedule",
    "column_wise_mvm",
    "interleave_columns",
    "partition_batch",
    "inference_schedule",
    "training_schedule",
    "TimingModel",
    "CycleBreakdown",
    "OnChipTrainer",
    "LayerCache",
    "TrainingStepResult",
    "layer_mapping_report",
    "workload_mapping_report",
    "memory_footprint_report",
    "ResourceModel",
    "ResourceUsage",
    "DeviceCapacity",
    "ALVEO_U50",
    "PowerModel",
    "PowerBreakdown",
]
