"""Analytical FPGA resource model (reproduces Table I).

The paper reports the Alveo U50 resource usage of each accelerator component.
This model derives the same accounting from the structural configuration:
per-PE LUT/FF/DSP costs scale with the PE count, the on-chip memory BRAM/URAM
count scales with the memory capacities, and the infrastructure components
(control, kernel interface, HBM interface, PCIe DMA) are fixed blocks.  The
per-unit coefficients are calibrated so the paper's default configuration
(2 cores × 256 PEs, 1.05 MB weight + gradient memories) reproduces Table I.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from .config import AcceleratorConfig
from .memory import BRAM_BYTES

__all__ = ["ResourceUsage", "DeviceCapacity", "ALVEO_U50", "ResourceModel"]


@dataclass(frozen=True)
class ResourceUsage:
    """LUT/FF/BRAM/URAM/DSP usage of one component."""

    lut: int = 0
    ff: int = 0
    bram: int = 0
    uram: int = 0
    dsp: int = 0

    def __add__(self, other: "ResourceUsage") -> "ResourceUsage":
        return ResourceUsage(
            lut=self.lut + other.lut,
            ff=self.ff + other.ff,
            bram=self.bram + other.bram,
            uram=self.uram + other.uram,
            dsp=self.dsp + other.dsp,
        )

    def as_dict(self) -> Dict[str, int]:
        return {"LUT": self.lut, "FF": self.ff, "BRAM": self.bram, "URAM": self.uram, "DSP": self.dsp}


@dataclass(frozen=True)
class DeviceCapacity:
    """Total resources of the target FPGA device."""

    name: str
    lut: int
    ff: int
    bram: int
    uram: int
    dsp: int

    def utilization(self, usage: ResourceUsage) -> Dict[str, float]:
        """Fractional utilization of each resource class."""
        return {
            "LUT": usage.lut / self.lut,
            "FF": usage.ff / self.ff,
            "BRAM": usage.bram / self.bram,
            "URAM": usage.uram / self.uram,
            "DSP": usage.dsp / self.dsp,
        }

    def fits(self, usage: ResourceUsage) -> bool:
        """Whether the design fits the device."""
        return all(fraction <= 1.0 for fraction in self.utilization(usage).values())


#: Xilinx Alveo U50 (XCU50) capacities.
ALVEO_U50 = DeviceCapacity(
    name="Xilinx Alveo U50", lut=870_000, ff=1_740_000, bram=1344, uram=640, dsp=5952
)


# --------------------------------------------------------------------------- #
# Calibrated per-unit coefficients (paper Table I / 512 PEs, 2.1 MB of BRAM
# memories, 128 URAM for gradient storage)
# --------------------------------------------------------------------------- #
#: Logic cost of one configurable-datapath PE (two 32x16 multipliers).
_LUT_PER_PE = 422.5
_FF_PER_PE = 316.0
_DSP_PER_PE = 4.4824
#: Memory control logic per allocated BRAM block.
_LUT_PER_BRAM = 17.6
#: Fixed blocks reported by the paper (independent of the array size).
_ADAM_OPTIMIZER = ResourceUsage(lut=46_700, ff=70_200, dsp=3)
_CONTROL_UNIT = ResourceUsage(lut=69_000, ff=45_400)
_KERNEL_INTERFACE = ResourceUsage(lut=68_800, ff=15_200, bram=12)
_HBM_INTERFACE = ResourceUsage(lut=8_200, ff=13_100, bram=2)
_PCIE_DMA = ResourceUsage(lut=88_800, ff=103_200, bram=176, dsp=4)
#: URAM blocks used for the gradient memory in the paper's implementation.
_GRADIENT_URAM_BLOCKS = 128
#: BRAM multiplier covering the gradient memory (same size as the weight
#: memory), activation storage, line buffers, and double buffering beyond the
#: raw weight-storage requirement (calibration constant for Table I).
_MEMORY_BRAM_OVERHEAD_FACTOR = 2.44


class ResourceModel:
    """Estimates FPGA resource usage for an accelerator configuration."""

    def __init__(self, config: AcceleratorConfig | None = None, device: DeviceCapacity = ALVEO_U50):
        self.config = config or AcceleratorConfig()
        self.device = device

    # ------------------------------------------------------------------ #
    # Per-component estimates
    # ------------------------------------------------------------------ #
    def processing_elements(self) -> ResourceUsage:
        """The PE arrays of all AAP cores."""
        pes = self.config.pe_count
        return ResourceUsage(
            lut=int(round(_LUT_PER_PE * pes)),
            ff=int(round(_FF_PER_PE * pes)),
            dsp=int(round(_DSP_PER_PE * pes)),
        )

    def on_chip_memory(self) -> ResourceUsage:
        """Weight / gradient / activation memories and line buffers."""
        weight_brams = int(np.ceil(self.config.weight_memory_bytes / BRAM_BYTES))
        activation_brams = max(1, int(np.ceil(self.config.activation_memory_bytes / BRAM_BYTES)))
        total_brams = int(round(weight_brams * _MEMORY_BRAM_OVERHEAD_FACTOR)) + activation_brams
        return ResourceUsage(
            lut=int(round(_LUT_PER_BRAM * total_brams)),
            bram=total_brams,
            uram=_GRADIENT_URAM_BLOCKS,
        )

    def adam_optimizer(self) -> ResourceUsage:
        return _ADAM_OPTIMIZER

    def control_unit(self) -> ResourceUsage:
        return _CONTROL_UNIT

    def kernel_interface(self) -> ResourceUsage:
        return _KERNEL_INTERFACE

    def hbm_interface(self) -> ResourceUsage:
        return _HBM_INTERFACE

    def pcie_dma(self) -> ResourceUsage:
        return _PCIE_DMA

    # ------------------------------------------------------------------ #
    # Aggregation (Table I)
    # ------------------------------------------------------------------ #
    def components(self) -> Dict[str, ResourceUsage]:
        """Per-component usage in the paper's Table I order."""
        return {
            "PEs": self.processing_elements(),
            "On-chip Memory": self.on_chip_memory(),
            "Adam Optimizer": self.adam_optimizer(),
            "Control Unit": self.control_unit(),
            "Kernel Interface": self.kernel_interface(),
            "HBM Interface": self.hbm_interface(),
            "PCIe DMA": self.pcie_dma(),
        }

    def total(self) -> ResourceUsage:
        """Total usage across all components."""
        total = ResourceUsage()
        for usage in self.components().values():
            total = total + usage
        return total

    def utilization(self) -> Dict[str, float]:
        """Device utilization fractions for the total usage."""
        return self.device.utilization(self.total())

    def fits_device(self) -> bool:
        """Whether the configured design fits the target device."""
        return self.device.fits(self.total())

    def table(self) -> List[Dict[str, object]]:
        """Table I as a list of rows (components, total, utilization)."""
        rows: List[Dict[str, object]] = []
        for name, usage in self.components().items():
            row: Dict[str, object] = {"Component": name}
            row.update(usage.as_dict())
            rows.append(row)
        total = self.total()
        total_row: Dict[str, object] = {"Component": "Total"}
        total_row.update(total.as_dict())
        rows.append(total_row)
        util_row: Dict[str, object] = {"Component": "Utilization (%)"}
        util_row.update(
            {key: round(100.0 * value, 1) for key, value in self.device.utilization(total).items()}
        )
        rows.append(util_row)
        return rows
