"""Pseudo-random number generator (PRNG) module.

The accelerator injects random noise into the actor's inference output to
drive action exploration.  On the FPGA this is a small linear-feedback shift
register (LFSR); the software model implements a 32-bit Galois LFSR and
derives uniform and approximately Gaussian noise from it, so the exploration
path can be made bit-reproducible against a hardware implementation.
"""

from __future__ import annotations

import numpy as np

__all__ = ["GaloisLfsr32", "HardwareNoiseGenerator"]

#: Taps of the maximal-length 32-bit Galois LFSR polynomial
#: ``x^32 + x^30 + x^26 + x^25 + 1`` (0xA3000000 in mask form).
_DEFAULT_TAP_MASK = 0xA3000000
_WORD_MASK = 0xFFFFFFFF


class GaloisLfsr32:
    """A 32-bit Galois linear-feedback shift register."""

    def __init__(self, seed: int = 0xACE1_2468, tap_mask: int = _DEFAULT_TAP_MASK):
        seed = int(seed) & _WORD_MASK
        if seed == 0:
            raise ValueError("LFSR seed must be non-zero")
        self._state = seed
        self._tap_mask = int(tap_mask) & _WORD_MASK

    @property
    def state(self) -> int:
        """Current register contents."""
        return self._state

    def next_bit(self) -> int:
        """Advance one cycle and return the output bit."""
        lsb = self._state & 1
        self._state >>= 1
        if lsb:
            self._state ^= self._tap_mask
        return lsb

    def next_word(self, bits: int = 32) -> int:
        """Produce a ``bits``-wide unsigned random word (one bit per cycle)."""
        if not 1 <= bits <= 63:
            raise ValueError(f"bits must lie in [1, 63], got {bits}")
        word = 0
        for _ in range(bits):
            word = (word << 1) | self.next_bit()
        return word

    def uniform(self) -> float:
        """A uniform sample in [0, 1) from one 32-bit word."""
        return self.next_word(32) / float(1 << 32)


class HardwareNoiseGenerator:
    """Exploration-noise source backed by the on-chip LFSR.

    Gaussian-like noise is produced with the Irwin–Hall construction (sum of
    12 uniforms minus 6), which is what small hardware noise generators use:
    no multipliers or transcendental functions are required.
    """

    def __init__(self, seed: int = 0xACE1_2468, sigma: float = 0.1):
        if sigma < 0:
            raise ValueError(f"sigma must be non-negative, got {sigma}")
        self._lfsr = GaloisLfsr32(seed)
        self.sigma = sigma

    def uniform_vector(self, size: int) -> np.ndarray:
        """A vector of uniform samples in [0, 1)."""
        return np.array([self._lfsr.uniform() for _ in range(size)], dtype=np.float64)

    def gaussian_vector(self, size: int) -> np.ndarray:
        """A vector of approximately standard-normal samples (Irwin–Hall)."""
        samples = np.empty(size, dtype=np.float64)
        for index in range(size):
            total = sum(self._lfsr.uniform() for _ in range(12))
            samples[index] = total - 6.0
        return samples

    def exploration_noise(self, action_dim: int) -> np.ndarray:
        """Noise added to the actor's output before it is sent to the host."""
        return self.sigma * self.gaussian_vector(action_dim)
