"""On-chip memory models (weight, gradient, and activation memories).

FIXAR keeps the entire model on chip: a 1.05 MB weight memory and an
equally-sized gradient memory built from BRAMs, plus a 2.94 KB activation
memory holding the activations of all three layers.  The weight memory is
512 bits wide (16 × 32-bit weights per row), shared by all AAP cores, and is
read row-by-row — a row feeds a PE-array *column* during inference and a
PE-array *row* during training, which is how the design sidesteps the matrix
transpose problem.

The classes here model capacity, word layout, bandwidth (one row per cycle),
and access counting; the stored payloads are plain numpy arrays of raw
fixed-point codes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

__all__ = [
    "MemoryError_",
    "OnChipMemory",
    "WeightMemory",
    "GradientMemory",
    "ActivationMemory",
    "BRAM_BYTES",
]

#: Capacity of one Xilinx BRAM36 block in bytes (36 Kbit).
BRAM_BYTES = 36 * 1024 // 8


class MemoryError_(RuntimeError):
    """Raised when an on-chip memory's capacity or layout is violated."""


@dataclass
class MemoryStats:
    """Access counters for one memory."""

    reads: int = 0
    writes: int = 0
    read_rows: int = 0
    written_rows: int = 0

    def reset(self) -> None:
        self.reads = 0
        self.writes = 0
        self.read_rows = 0
        self.written_rows = 0


class OnChipMemory:
    """A banked on-chip memory with a fixed capacity and row width.

    Parameters
    ----------
    name:
        Human-readable name used in error messages and reports.
    capacity_bytes:
        Total capacity.
    row_bits:
        Width of one physical row (512 for the weight/gradient memories).
    word_bits:
        Width of one stored word (32 for weights/gradients).
    """

    def __init__(self, name: str, capacity_bytes: int, row_bits: int = 512, word_bits: int = 32):
        if capacity_bytes <= 0:
            raise ValueError(f"{name}: capacity must be positive")
        if row_bits <= 0 or word_bits <= 0 or row_bits % word_bits != 0:
            raise ValueError(f"{name}: row_bits must be a positive multiple of word_bits")
        self.name = name
        self.capacity_bytes = int(capacity_bytes)
        self.row_bits = int(row_bits)
        self.word_bits = int(word_bits)
        self.stats = MemoryStats()
        self._segments: Dict[str, np.ndarray] = {}

    # ------------------------------------------------------------------ #
    # Layout properties
    # ------------------------------------------------------------------ #
    @property
    def words_per_row(self) -> int:
        """Number of words delivered by one row access (16 for 512/32)."""
        return self.row_bits // self.word_bits

    @property
    def total_rows(self) -> int:
        """Number of physical rows available."""
        return self.capacity_bytes * 8 // self.row_bits

    @property
    def used_bytes(self) -> int:
        """Bytes currently allocated across all segments."""
        return sum(arr.size * self.word_bits // 8 for arr in self._segments.values())

    @property
    def free_bytes(self) -> int:
        return self.capacity_bytes - self.used_bytes

    @property
    def utilization(self) -> float:
        """Fraction of the capacity currently allocated."""
        return self.used_bytes / self.capacity_bytes

    def bram_count(self) -> int:
        """Number of BRAM36 blocks needed for this capacity."""
        return int(np.ceil(self.capacity_bytes / BRAM_BYTES))

    # ------------------------------------------------------------------ #
    # Segment management
    # ------------------------------------------------------------------ #
    def allocate(self, segment: str, shape, fill: float = 0) -> np.ndarray:
        """Reserve a named segment of raw words (int64-backed)."""
        if segment in self._segments:
            raise MemoryError_(f"{self.name}: segment {segment!r} already exists")
        array = np.full(shape, fill, dtype=np.int64)
        needed = array.size * self.word_bits // 8
        if needed > self.free_bytes:
            raise MemoryError_(
                f"{self.name}: allocating {segment!r} needs {needed} B but only "
                f"{self.free_bytes} B of {self.capacity_bytes} B remain"
            )
        self._segments[segment] = array
        return array

    def free(self, segment: str) -> None:
        """Release a named segment."""
        if segment not in self._segments:
            raise MemoryError_(f"{self.name}: unknown segment {segment!r}")
        del self._segments[segment]

    def segments(self) -> Dict[str, tuple]:
        """Shapes of all allocated segments."""
        return {name: arr.shape for name, arr in self._segments.items()}

    def has_segment(self, segment: str) -> bool:
        return segment in self._segments

    # ------------------------------------------------------------------ #
    # Accesses
    # ------------------------------------------------------------------ #
    def write(self, segment: str, data: np.ndarray, offset: int = 0) -> int:
        """Write raw words into a segment; returns the row-access count."""
        if segment not in self._segments:
            raise MemoryError_(f"{self.name}: unknown segment {segment!r}")
        target = self._segments[segment].reshape(-1)
        data = np.asarray(data, dtype=np.int64).reshape(-1)
        if offset < 0 or offset + data.size > target.size:
            raise MemoryError_(
                f"{self.name}: write of {data.size} words at offset {offset} "
                f"overflows segment {segment!r} ({target.size} words)"
            )
        target[offset:offset + data.size] = data
        rows = int(np.ceil(data.size / self.words_per_row))
        self.stats.writes += 1
        self.stats.written_rows += rows
        return rows

    def read(self, segment: str, count: Optional[int] = None, offset: int = 0) -> np.ndarray:
        """Read raw words from a segment; updates the row-access counters."""
        if segment not in self._segments:
            raise MemoryError_(f"{self.name}: unknown segment {segment!r}")
        source = self._segments[segment].reshape(-1)
        count = source.size - offset if count is None else count
        if offset < 0 or count < 0 or offset + count > source.size:
            raise MemoryError_(
                f"{self.name}: read of {count} words at offset {offset} "
                f"overflows segment {segment!r} ({source.size} words)"
            )
        rows = int(np.ceil(count / self.words_per_row)) if count else 0
        self.stats.reads += 1
        self.stats.read_rows += rows
        return source[offset:offset + count].copy()

    def view(self, segment: str) -> np.ndarray:
        """Direct (mutable) view of a segment's raw words, without counting."""
        if segment not in self._segments:
            raise MemoryError_(f"{self.name}: unknown segment {segment!r}")
        return self._segments[segment]


class WeightMemory(OnChipMemory):
    """The centralized 1.05 MB weight memory shared by all AAP cores."""

    #: Paper value: the actor + critic parameters fit in 1.05 MB of BRAM.
    DEFAULT_CAPACITY_BYTES = int(1.05 * 1024 * 1024)

    def __init__(self, capacity_bytes: int = DEFAULT_CAPACITY_BYTES):
        super().__init__("weight_memory", capacity_bytes, row_bits=512, word_bits=32)


class GradientMemory(OnChipMemory):
    """The gradient memory (same size and organisation as the weight memory)."""

    def __init__(self, capacity_bytes: int = WeightMemory.DEFAULT_CAPACITY_BYTES):
        super().__init__("gradient_memory", capacity_bytes, row_bits=512, word_bits=32)


class ActivationMemory(OnChipMemory):
    """The 2.94 KB activation memory holding all three layers' activations."""

    #: Paper value: 2.94 KB of activation storage.
    DEFAULT_CAPACITY_BYTES = int(2.94 * 1024)

    def __init__(self, capacity_bytes: int = DEFAULT_CAPACITY_BYTES):
        super().__init__("activation_memory", capacity_bytes, row_bits=512, word_bits=32)
