"""On-chip Adam optimizer module.

Because the entire model lives in on-chip BRAM, the weight update never
leaves the FPGA: a dedicated Adam module streams weights and accumulated
gradients out of the weight / gradient memories, updates them lane-by-lane
(16 words per 512-bit row), and writes the new weights back.

The functional behaviour matches :class:`repro.nn.optim.Adam`; the extra
value here is the fixed-point storage of the optimizer state and the cycle
accounting used by the timing model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np

from ..fixedpoint import QFormat, WEIGHT_FORMAT

__all__ = ["AdamUnitConfig", "AdamUnit"]


@dataclass(frozen=True)
class AdamUnitConfig:
    """Hardware Adam parameters."""

    learning_rate: float = 1e-4
    beta1: float = 0.9
    beta2: float = 0.999
    epsilon: float = 1e-8
    #: Parallel update lanes (one 512-bit row of 16 words per cycle).
    lanes: int = 16
    #: Fixed-point format weights are stored in.
    weight_format: QFormat = WEIGHT_FORMAT

    def __post_init__(self) -> None:
        if self.learning_rate <= 0:
            raise ValueError("learning_rate must be positive")
        if not 0 <= self.beta1 < 1 or not 0 <= self.beta2 < 1:
            raise ValueError("betas must lie in [0, 1)")
        if self.lanes <= 0:
            raise ValueError("lanes must be positive")


class AdamUnit:
    """Streaming Adam weight-update engine."""

    def __init__(self, config: AdamUnitConfig | None = None):
        self.config = config or AdamUnitConfig()
        self._moment1: Dict[str, np.ndarray] = {}
        self._moment2: Dict[str, np.ndarray] = {}
        self.step_count = 0
        self.cycle_count = 0

    def register(self, name: str, shape) -> None:
        """Allocate optimizer state for one parameter tensor."""
        if name in self._moment1:
            raise ValueError(f"parameter {name!r} already registered")
        self._moment1[name] = np.zeros(shape, dtype=np.float64)
        self._moment2[name] = np.zeros(shape, dtype=np.float64)

    @property
    def registered(self) -> bool:
        return bool(self._moment1)

    def update_cycles(self, parameter_count: int) -> int:
        """Cycles needed to update ``parameter_count`` weights."""
        return int(np.ceil(parameter_count / self.config.lanes))

    def step(self, parameters: Dict[str, np.ndarray], gradients: Dict[str, np.ndarray]) -> int:
        """Apply one Adam update in place; returns the cycles consumed.

        Updated weights are snapped back onto the 32-bit fixed-point grid,
        modelling their storage format in the weight memory.
        """
        cfg = self.config
        self.step_count += 1
        bias_correction1 = 1.0 - cfg.beta1 ** self.step_count
        bias_correction2 = 1.0 - cfg.beta2 ** self.step_count
        cycles = 0
        for name, param in parameters.items():
            if name not in self._moment1:
                self.register(name, param.shape)
            grad = np.asarray(gradients[name], dtype=np.float64)
            m = self._moment1[name]
            v = self._moment2[name]
            m[...] = cfg.beta1 * m + (1.0 - cfg.beta1) * grad
            v[...] = cfg.beta2 * v + (1.0 - cfg.beta2) * grad ** 2
            m_hat = m / bias_correction1
            v_hat = v / bias_correction2
            param -= cfg.learning_rate * m_hat / (np.sqrt(v_hat) + cfg.epsilon)
            param[...] = cfg.weight_format.quantize(param)
            cycles += self.update_cycles(param.size)
        self.cycle_count += cycles
        return cycles
