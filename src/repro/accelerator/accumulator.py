"""Column accumulators and the cross-core aggregation stage.

The partial sums produced by a column of PEs are accumulated vertically; the
per-core results are then aggregated across AAP cores (needed because
inference interleaves the matrix columns over the cores) before being handed
to the activation unit.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

__all__ = ["ColumnAccumulator", "CrossCoreAccumulator"]


class ColumnAccumulator:
    """Accumulates partial sums flowing down one column of the PE array."""

    def __init__(self, width: int):
        if width <= 0:
            raise ValueError(f"width must be positive, got {width}")
        self.width = width
        self._sums = np.zeros(width, dtype=np.int64)
        self.accumulate_count = 0

    def reset(self) -> None:
        self._sums[...] = 0
        self.accumulate_count = 0

    def accumulate(self, partials: np.ndarray) -> np.ndarray:
        """Add one row of partial sums (raw codes) into the accumulators."""
        partials = np.asarray(partials, dtype=np.int64).ravel()
        if partials.size != self.width:
            raise ValueError(
                f"expected {self.width} partial sums, got {partials.size}"
            )
        self._sums += partials
        self.accumulate_count += 1
        return self._sums.copy()

    @property
    def values(self) -> np.ndarray:
        """Current accumulated sums (raw codes)."""
        return self._sums.copy()


class CrossCoreAccumulator:
    """Aggregates the local accumulations of multiple AAP cores.

    During inference each core accumulates the partial-sum vectors of an
    interleaved subset of the matrix columns; the final output vector is the
    element-wise sum over cores.
    """

    @staticmethod
    def reduce(core_outputs: Sequence[np.ndarray]) -> np.ndarray:
        """Element-wise sum of per-core raw output vectors."""
        if not core_outputs:
            raise ValueError("need at least one core output to reduce")
        outputs = [np.asarray(out, dtype=np.int64) for out in core_outputs]
        shape = outputs[0].shape
        for out in outputs[1:]:
            if out.shape != shape:
                raise ValueError(f"core output shapes differ: {shape} vs {out.shape}")
        return np.sum(np.stack(outputs, axis=0), axis=0)
