"""Structural parameters of the FIXAR FPGA accelerator.

The defaults describe the paper's Alveo U50 implementation: two adaptive
array processing cores of 16×16 configurable PEs each, a 512-bit weight
memory port (16 weights per cycle), and a 164 MHz clock.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .dataflow import ArrayGeometry
from .memory import ActivationMemory, WeightMemory

__all__ = ["AcceleratorConfig"]


@dataclass(frozen=True)
class AcceleratorConfig:
    """Geometry, clocking, and memory parameters of the accelerator."""

    #: Number of adaptive array processing (AAP) cores.
    num_cores: int = 2
    #: PE-array geometry of each core.
    geometry: ArrayGeometry = field(default_factory=ArrayGeometry)
    #: Operating clock frequency in Hz (paper: 164 MHz on the U50).
    clock_hz: float = 164e6
    #: Weights delivered per weight-memory access (512-bit row of 32-bit words).
    weights_per_cycle: int = 16
    #: Pipeline fill/drain plus accumulation/activation overhead per layer pass.
    layer_overhead_cycles: int = 64
    #: Parallel lanes of the Adam weight-update module.
    adam_lanes: int = 16
    #: Weight memory capacity in bytes (gradient memory is the same size).
    weight_memory_bytes: int = WeightMemory.DEFAULT_CAPACITY_BYTES
    #: Activation memory capacity in bytes.
    activation_memory_bytes: int = ActivationMemory.DEFAULT_CAPACITY_BYTES

    def __post_init__(self) -> None:
        if self.num_cores <= 0:
            raise ValueError(f"num_cores must be positive, got {self.num_cores}")
        if self.clock_hz <= 0:
            raise ValueError(f"clock_hz must be positive, got {self.clock_hz}")
        if self.weights_per_cycle <= 0:
            raise ValueError("weights_per_cycle must be positive")
        if self.layer_overhead_cycles < 0:
            raise ValueError("layer_overhead_cycles must be non-negative")
        if self.adam_lanes <= 0:
            raise ValueError("adam_lanes must be positive")
        if self.weight_memory_bytes <= 0 or self.activation_memory_bytes <= 0:
            raise ValueError("memory capacities must be positive")

    # ------------------------------------------------------------------ #
    # Derived quantities
    # ------------------------------------------------------------------ #
    @property
    def pe_count(self) -> int:
        """Total processing elements across all cores."""
        return self.num_cores * self.geometry.pe_count

    @property
    def cycle_time_s(self) -> float:
        """Seconds per clock cycle."""
        return 1.0 / self.clock_hz

    def peak_macs_per_second(self, half_precision: bool = False) -> float:
        """Peak MAC throughput (doubled in half-precision mode)."""
        factor = 2 if half_precision else 1
        return self.pe_count * factor * self.clock_hz

    def tile_weight_load_cycles(self) -> int:
        """Cycles to load one PE-array weight tile from the weight memory."""
        tile_weights = self.geometry.rows * self.geometry.cols
        return -(-tile_weights // self.weights_per_cycle)

    def with_cores(self, num_cores: int) -> "AcceleratorConfig":
        """A copy of this configuration with a different core count."""
        return AcceleratorConfig(
            num_cores=num_cores,
            geometry=self.geometry,
            clock_hz=self.clock_hz,
            weights_per_cycle=self.weights_per_cycle,
            layer_overhead_cycles=self.layer_overhead_cycles,
            adam_lanes=self.adam_lanes,
            weight_memory_bytes=self.weight_memory_bytes,
            activation_memory_bytes=self.activation_memory_bytes,
        )

    def with_geometry(self, rows: int, cols: int) -> "AcceleratorConfig":
        """A copy of this configuration with a different PE-array geometry."""
        return AcceleratorConfig(
            num_cores=self.num_cores,
            geometry=ArrayGeometry(rows=rows, cols=cols),
            clock_hz=self.clock_hz,
            weights_per_cycle=self.weights_per_cycle,
            layer_overhead_cycles=self.layer_overhead_cycles,
            adam_lanes=self.adam_lanes,
            weight_memory_bytes=self.weight_memory_bytes,
            activation_memory_bytes=self.activation_memory_bytes,
        )
