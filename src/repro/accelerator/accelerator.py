"""Top-level FIXAR accelerator: memories, AAP cores, and the controller.

The :class:`FixarAccelerator` is a functional, cycle-approximate simulator of
the FPGA design:

* networks (actor / critic) are loaded into the on-chip weight memory as
  32-bit fixed-point raw codes — capacity is enforced, there is no external
  DRAM path;
* forward propagation executes layer by layer on the AAP cores using the
  column-wise dataflow (columns interleaved across cores for single-vector
  inference, batch partitioned across cores for training batches), with the
  accumulated outputs re-quantized and passed through the activation unit;
* the configurable datapath is modelled by the activation precision mode:
  in half-precision mode activations are stored and streamed as 16-bit
  values, doubling the effective streaming rate in the timing model;
* cycle counts come from :class:`~repro.accelerator.timing.TimingModel`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..fixedpoint import (
    ACTIVATION_FULL_FORMAT,
    ACTIVATION_HALF_FORMAT,
    WEIGHT_FORMAT,
    FxpArray,
    QFormat,
)
from .aap_core import AAPCore
from .accumulator import CrossCoreAccumulator
from .activation_unit import ActivationFunction, ActivationUnit
from .adam_unit import AdamUnit
from .config import AcceleratorConfig
from .dataflow import interleave_columns, partition_batch
from .memory import ActivationMemory, GradientMemory, MemoryError_, WeightMemory
from .pe import PrecisionMode
from .prng import HardwareNoiseGenerator
from .timing import CycleBreakdown, TimingModel

__all__ = ["LoadedLayer", "FixarAccelerator"]


@dataclass
class LoadedLayer:
    """One dense layer resident in the weight memory."""

    name: str
    weight: FxpArray          # paper orientation: (output_dim, input_dim)
    bias: FxpArray            # (output_dim,)
    activation: ActivationFunction

    @property
    def input_dim(self) -> int:
        return self.weight.shape[1]

    @property
    def output_dim(self) -> int:
        return self.weight.shape[0]

    @property
    def parameter_count(self) -> int:
        return self.weight.size + self.bias.size


class FixarAccelerator:
    """Functional + timing model of the FIXAR FPGA accelerator."""

    def __init__(
        self,
        config: Optional[AcceleratorConfig] = None,
        weight_format: QFormat = WEIGHT_FORMAT,
        full_activation_format: QFormat = ACTIVATION_FULL_FORMAT,
        half_activation_format: QFormat = ACTIVATION_HALF_FORMAT,
        noise_seed: int = 0xACE1_2468,
    ):
        self.config = config or AcceleratorConfig()
        self.weight_format = weight_format
        self.full_activation_format = full_activation_format
        self.half_activation_format = half_activation_format

        self.weight_memory = WeightMemory(self.config.weight_memory_bytes)
        self.gradient_memory = GradientMemory(self.config.weight_memory_bytes)
        self.activation_memory = ActivationMemory(self.config.activation_memory_bytes)
        self.cores: List[AAPCore] = [
            AAPCore(self.config.geometry, core_id=index) for index in range(self.config.num_cores)
        ]
        self.activation_unit = ActivationUnit(full_activation_format)
        self.adam_unit = AdamUnit()
        self.noise_generator = HardwareNoiseGenerator(seed=noise_seed)
        self.timing = TimingModel(self.config)

        self._networks: Dict[str, List[LoadedLayer]] = {}
        self._mode = PrecisionMode.FULL

    # ------------------------------------------------------------------ #
    # Precision control (the configurable datapath)
    # ------------------------------------------------------------------ #
    @property
    def precision_mode(self) -> PrecisionMode:
        return self._mode

    def set_precision(self, mode: PrecisionMode) -> None:
        """Reconfigure every PE datapath and the activation storage format."""
        self._mode = mode
        for core in self.cores:
            core.set_mode(mode)
        self.activation_unit.output_format = self.activation_format

    @property
    def activation_format(self) -> QFormat:
        """The activation format implied by the current precision mode."""
        if self._mode is PrecisionMode.HALF:
            return self.half_activation_format
        return self.full_activation_format

    @property
    def half_precision(self) -> bool:
        return self._mode is PrecisionMode.HALF

    # ------------------------------------------------------------------ #
    # Model loading
    # ------------------------------------------------------------------ #
    def load_network(
        self,
        name: str,
        layers: Sequence[Tuple[np.ndarray, np.ndarray, str]],
    ) -> None:
        """Load a dense network into the on-chip weight memory.

        ``layers`` is a sequence of ``(weight, bias, activation)`` tuples
        where ``weight`` uses the software convention ``(input_dim,
        output_dim)`` and ``activation`` is one of ``"relu"``, ``"tanh"``,
        ``"identity"``.  Raises :class:`MemoryError_` when the model does not
        fit in the weight memory.
        """
        if name in self._networks:
            self.unload_network(name)
        loaded: List[LoadedLayer] = []
        for index, (weight, bias, activation) in enumerate(layers):
            weight = np.asarray(weight, dtype=np.float64)
            bias = np.asarray(bias, dtype=np.float64).ravel()
            if weight.ndim != 2:
                raise ValueError(f"layer {index} weight must be 2-D, got {weight.shape}")
            if bias.size != weight.shape[1]:
                raise ValueError(
                    f"layer {index} bias length {bias.size} != output dim {weight.shape[1]}"
                )
            segment = f"{name}.layer{index}"
            weight_fxp = FxpArray.from_float(weight.T, self.weight_format)
            bias_fxp = FxpArray.from_float(bias, self.weight_format)
            self.weight_memory.allocate(segment + ".weight", weight_fxp.shape)
            self.weight_memory.write(segment + ".weight", weight_fxp.raw)
            self.weight_memory.allocate(segment + ".bias", bias_fxp.shape)
            self.weight_memory.write(segment + ".bias", bias_fxp.raw)
            self.gradient_memory.allocate(segment + ".weight_grad", weight_fxp.shape)
            self.gradient_memory.allocate(segment + ".bias_grad", bias_fxp.shape)
            loaded.append(
                LoadedLayer(
                    name=segment,
                    weight=weight_fxp,
                    bias=bias_fxp,
                    activation=ActivationFunction(activation),
                )
            )
        self._networks[name] = loaded

    def unload_network(self, name: str) -> None:
        """Remove a network's segments from the on-chip memories."""
        if name not in self._networks:
            raise KeyError(f"network {name!r} is not loaded")
        for layer in self._networks[name]:
            self.weight_memory.free(layer.name + ".weight")
            self.weight_memory.free(layer.name + ".bias")
            self.gradient_memory.free(layer.name + ".weight_grad")
            self.gradient_memory.free(layer.name + ".bias_grad")
        del self._networks[name]

    def load_agent(self, agent) -> None:
        """Convenience: load a DDPG agent's actor and critic networks.

        ``agent`` is a :class:`repro.rl.ddpg.DDPGAgent`; only the dense
        layers' weights/biases and activation kinds are extracted, so there
        is no hard dependency on the RL package.
        """
        self.load_network("actor", _mlp_to_layers(agent.actor, final_activation="tanh"))
        self.load_network("critic", _mlp_to_layers(agent.critic, final_activation="identity"))

    def network_names(self) -> List[str]:
        return sorted(self._networks)

    def network_shapes(self, name: str) -> List[Tuple[int, int]]:
        """Layer shapes (input_dim, output_dim) of a loaded network."""
        return [(layer.input_dim, layer.output_dim) for layer in self._layers(name)]

    def network_parameter_count(self, name: str) -> int:
        return sum(layer.parameter_count for layer in self._layers(name))

    def _layers(self, name: str) -> List[LoadedLayer]:
        if name not in self._networks:
            raise KeyError(f"network {name!r} is not loaded; loaded: {self.network_names()}")
        return self._networks[name]

    # ------------------------------------------------------------------ #
    # Functional execution
    # ------------------------------------------------------------------ #
    def infer(self, name: str, state: np.ndarray, add_noise: bool = False) -> np.ndarray:
        """Single-vector forward propagation with intra-layer parallelism.

        The matrix columns are interleaved across the AAP cores and the
        per-core partial results are reduced by the cross-core accumulator,
        exactly as the inference dataflow prescribes.  Optionally injects the
        PRNG exploration noise into the final output (the actor path).
        """
        activation = FxpArray.from_float(
            np.asarray(state, dtype=np.float64).ravel(), self.activation_format
        )
        for layer in self._layers(name):
            column_groups = interleave_columns(layer.input_dim, len(self.cores))
            partials = []
            for core, columns in zip(self.cores, column_groups):
                if columns.size == 0:
                    continue
                sub_weight = FxpArray(layer.weight.raw[:, columns], layer.weight.fmt, validate=False)
                sub_activation = FxpArray(activation.raw[columns], activation.fmt, validate=False)
                partials.append(core.run_mvm(sub_weight, sub_activation))
            accumulated = CrossCoreAccumulator.reduce(partials)
            activation = self._finish_layer(accumulated, layer, activation.fmt)
        output = activation.to_float()
        if add_noise:
            output = output + self.noise_generator.exploration_noise(output.size)
        return output

    def forward_batch(self, name: str, states: np.ndarray) -> np.ndarray:
        """Batched forward propagation with intra-batch parallelism."""
        states = np.atleast_2d(np.asarray(states, dtype=np.float64))
        chunks = partition_batch(states.shape[0], len(self.cores))
        activation = FxpArray.from_float(states, self.activation_format)
        for layer in self._layers(name):
            outputs = np.zeros((states.shape[0], layer.output_dim), dtype=np.int64)
            for core, indices in zip(self.cores, chunks):
                if indices.size == 0:
                    continue
                block = FxpArray(activation.raw[indices], activation.fmt, validate=False)
                outputs[indices] = core.run_batch_mvm(layer.weight, block)
            activation = self._finish_layer(outputs, layer, activation.fmt)
        return activation.to_float()

    def _finish_layer(
        self, accumulated_raw: np.ndarray, layer: LoadedLayer, activation_fmt: QFormat
    ) -> FxpArray:
        """Re-quantize accumulator outputs, add bias, apply the non-linearity."""
        out_fmt = self.activation_format
        # The accumulator holds products with weight.frac + activation.frac
        # fraction bits; shift back to the activation format.
        shift = layer.weight.fmt.frac_bits + activation_fmt.frac_bits - out_fmt.frac_bits
        raw = accumulated_raw
        if shift > 0:
            raw = (raw + (1 << (shift - 1))) >> shift
        elif shift < 0:
            raw = raw << (-shift)
        pre_activation = FxpArray(raw, out_fmt, validate=True)
        bias = layer.bias.requantize(out_fmt)
        pre_activation = FxpArray(pre_activation.raw + bias.raw, out_fmt, validate=True)
        return self.activation_unit.apply(pre_activation, layer.activation)

    # ------------------------------------------------------------------ #
    # Timing and throughput
    # ------------------------------------------------------------------ #
    def timestep_breakdown(self, batch_size: int) -> CycleBreakdown:
        """Cycle breakdown of one full DDPG training timestep."""
        return self.timing.timestep_breakdown(
            self.network_shapes("actor"),
            self.network_shapes("critic"),
            batch_size,
            half_precision=self.half_precision,
        )

    def timestep_seconds(self, batch_size: int) -> float:
        """Latency of one full DDPG training timestep in seconds."""
        return self.timestep_breakdown(batch_size).seconds(self.config.clock_hz)

    def ips(self, batch_size: int) -> float:
        """Accelerator-only IPS (transitions processed per second)."""
        return batch_size / self.timestep_seconds(batch_size)

    def utilization(self, batch_size: int) -> float:
        """PE-array utilization for the loaded workload."""
        return self.timing.hardware_utilization(
            self.network_shapes("actor"),
            self.network_shapes("critic"),
            batch_size,
            half_precision=self.half_precision,
        )

    def memory_report(self) -> Dict[str, float]:
        """Occupancy of the on-chip memories (fractions)."""
        return {
            "weight_memory": self.weight_memory.utilization,
            "gradient_memory": self.gradient_memory.utilization,
            "activation_memory_bytes": float(self.activation_memory.capacity_bytes),
            "weight_memory_used_bytes": float(self.weight_memory.used_bytes),
        }


def _mlp_to_layers(mlp, final_activation: str) -> List[Tuple[np.ndarray, np.ndarray, str]]:
    """Extract (weight, bias, activation) triples from an ``repro.nn.MLP``."""
    from ..nn.layers import Linear, ReLU, Tanh  # local import to avoid a hard cycle

    layers: List[Tuple[np.ndarray, np.ndarray, str]] = []
    linear_layers = [layer for layer in mlp.layers if isinstance(layer, Linear)]
    activations: List[str] = []
    for layer in mlp.layers:
        if isinstance(layer, Linear):
            activations.append("identity")
        elif isinstance(layer, ReLU) and activations:
            activations[-1] = "relu"
        elif isinstance(layer, Tanh) and activations:
            activations[-1] = "tanh"
    if activations and activations[-1] == "identity":
        activations[-1] = final_activation
    for linear, activation in zip(linear_layers, activations):
        layers.append((linear.weight.copy(), linear.bias.copy(), activation))
    return layers
