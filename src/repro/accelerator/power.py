"""Board-level power model for the FPGA accelerator.

The paper measures 20.4 W average board power (Xilinx Board Utility: FPGA,
PCIe interface, and on-board DRAM) while running the DDPG workloads, and
computes energy efficiency as IPS per watt.  The model below splits that
budget into a static board floor plus dynamic contributions that scale with
the active resources (PEs, BRAM, clock), so alternative configurations in
ablation studies produce sensible power estimates while the default
configuration reproduces the paper's 20.4 W.
"""

from __future__ import annotations

from dataclasses import dataclass

from .config import AcceleratorConfig
from .resources import ResourceModel

__all__ = ["PowerModel", "PowerBreakdown"]

#: Static power of the board (shell, HBM controller, PCIe, regulators), watts.
_STATIC_BOARD_WATTS = 12.0
#: Dynamic power per PE at the reference clock, watts (calibrated).
_WATTS_PER_PE = 0.0130
#: Dynamic power per active BRAM block at the reference clock, watts.
_WATTS_PER_BRAM = 0.0022
#: Dynamic power of the Adam module and control logic, watts.
_WATTS_MISC_DYNAMIC = 0.5
#: Reference clock frequency the dynamic coefficients were calibrated at.
_REFERENCE_CLOCK_HZ = 164e6


@dataclass(frozen=True)
class PowerBreakdown:
    """Static and dynamic power components in watts."""

    static_watts: float
    pe_watts: float
    memory_watts: float
    misc_watts: float

    @property
    def total_watts(self) -> float:
        return self.static_watts + self.pe_watts + self.memory_watts + self.misc_watts

    def as_dict(self) -> dict:
        return {
            "static_w": self.static_watts,
            "pe_dynamic_w": self.pe_watts,
            "memory_dynamic_w": self.memory_watts,
            "misc_dynamic_w": self.misc_watts,
            "total_w": self.total_watts,
        }


class PowerModel:
    """Estimates average board power for an accelerator configuration."""

    def __init__(self, config: AcceleratorConfig | None = None):
        self.config = config or AcceleratorConfig()
        self._resources = ResourceModel(self.config)

    def breakdown(self, utilization: float = 0.924) -> PowerBreakdown:
        """Power breakdown at a given average PE-array utilization.

        ``utilization`` scales the PE dynamic power: idle PEs are clock-gated
        and contribute only a small fraction of their active power.
        """
        if not 0.0 <= utilization <= 1.0:
            raise ValueError(f"utilization must lie in [0, 1], got {utilization}")
        clock_scale = self.config.clock_hz / _REFERENCE_CLOCK_HZ
        activity = 0.15 + 0.85 * utilization  # clock-gated idle floor
        pe_watts = _WATTS_PER_PE * self.config.pe_count * clock_scale * activity
        memory_watts = _WATTS_PER_BRAM * self._resources.total().bram * clock_scale
        return PowerBreakdown(
            static_watts=_STATIC_BOARD_WATTS,
            pe_watts=pe_watts,
            memory_watts=memory_watts,
            misc_watts=_WATTS_MISC_DYNAMIC * clock_scale,
        )

    def average_watts(self, utilization: float = 0.924) -> float:
        """Average board power in watts (paper default utilization 92.4 %)."""
        return self.breakdown(utilization).total_watts

    def energy_per_timestep_joules(self, timestep_seconds: float, utilization: float = 0.924) -> float:
        """Energy consumed by one accelerator timestep."""
        if timestep_seconds < 0:
            raise ValueError("timestep_seconds must be non-negative")
        return self.average_watts(utilization) * timestep_seconds

    def ips_per_watt(self, ips: float, utilization: float = 0.924) -> float:
        """Energy efficiency for a given throughput (the Fig. 10b metric)."""
        if ips < 0:
            raise ValueError("ips must be non-negative")
        return ips / self.average_watts(utilization)
