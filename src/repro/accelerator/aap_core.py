"""Adaptive array processing (AAP) core.

One AAP core is a 16×16 array of configurable PEs fed by an activation line
buffer, with column accumulators at the bottom.  This module provides a
functional model of a core executing a matrix-vector multiplication (MVM)
under the column-wise decomposition dataflow:

* :meth:`AAPCore.run_mvm` computes the MVM on raw fixed-point codes with
  vectorised integer arithmetic (exactly equal to the tile-by-tile hardware
  order, because integer addition is associative);
* :meth:`AAPCore.run_mvm_tiled` walks the 16×16 tiles explicitly through the
  single-PE model — it is much slower and exists to prove the vectorised
  path is bit-exact;
* :meth:`AAPCore.run_batch_mvm` streams a block of activation vectors
  through the core (the intra-batch training mapping).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..fixedpoint import FxpArray
from .accumulator import ColumnAccumulator
from .dataflow import ArrayGeometry
from .line_buffer import ActivationLineBuffer
from .pe import PrecisionMode, ProcessingElement

__all__ = ["AAPCore"]


class AAPCore:
    """Functional model of one adaptive array processing core."""

    def __init__(self, geometry: Optional[ArrayGeometry] = None, core_id: int = 0):
        self.geometry = geometry or ArrayGeometry()
        self.core_id = core_id
        self.line_buffer = ActivationLineBuffer()
        self.mode = PrecisionMode.FULL
        self.mvm_count = 0
        self.mac_count = 0

    # ------------------------------------------------------------------ #
    # Configuration
    # ------------------------------------------------------------------ #
    def set_mode(self, mode: PrecisionMode) -> None:
        """Reconfigure every PE's datapath."""
        self.mode = mode

    # ------------------------------------------------------------------ #
    # Vectorised functional execution
    # ------------------------------------------------------------------ #
    def run_mvm(self, weight: FxpArray, activation: FxpArray) -> np.ndarray:
        """MVM of a (P, Q) weight matrix with a (Q,) activation vector.

        Returns the raw accumulator values (fraction bits are the sum of the
        operand fraction bits); the caller re-quantizes and applies the
        non-linearity, mirroring the accumulator → activation-unit path.
        """
        matrix = weight.raw
        vector = activation.raw
        if matrix.ndim != 2 or vector.ndim != 1:
            raise ValueError(
                f"expected a 2-D weight and 1-D activation, got {matrix.shape} and {vector.shape}"
            )
        if matrix.shape[1] != vector.size:
            raise ValueError(
                f"weight has {matrix.shape[1]} columns but activation has {vector.size} elements"
            )
        self.mvm_count += 1
        self.mac_count += int(matrix.size)
        return matrix @ vector

    def run_batch_mvm(self, weight: FxpArray, activations: FxpArray) -> np.ndarray:
        """MVMs for a block of activation vectors (rows of ``activations``)."""
        matrix = weight.raw
        block = activations.raw
        if block.ndim != 2:
            raise ValueError(f"expected a 2-D activation block, got shape {block.shape}")
        if matrix.shape[1] != block.shape[1]:
            raise ValueError(
                f"weight has {matrix.shape[1]} columns but activations have {block.shape[1]}"
            )
        self.mvm_count += block.shape[0]
        self.mac_count += int(matrix.size) * block.shape[0]
        return block @ matrix.T

    # ------------------------------------------------------------------ #
    # Tile-by-tile execution through the PE model (bit-exactness reference)
    # ------------------------------------------------------------------ #
    def run_mvm_tiled(self, weight: FxpArray, activation: FxpArray) -> np.ndarray:
        """The same MVM executed tile-by-tile through single-PE MACs.

        Intended for small matrices in tests; the result is identical to
        :meth:`run_mvm`.
        """
        matrix = weight.raw
        vector = activation.raw
        if matrix.shape[1] != vector.size:
            raise ValueError(
                f"weight has {matrix.shape[1]} columns but activation has {vector.size} elements"
            )
        rows, cols = self.geometry.rows, self.geometry.cols
        output_dim, input_dim = matrix.shape
        result = np.zeros(output_dim, dtype=np.int64)
        pe = ProcessingElement()
        pe.set_mode(PrecisionMode.FULL)
        accumulator = ColumnAccumulator(cols)

        for col_start in range(0, output_dim, cols):
            col_end = min(col_start + cols, output_dim)
            accumulator.reset()
            tile_width = col_end - col_start
            for row_start in range(0, input_dim, rows):
                row_end = min(row_start + rows, input_dim)
                # Stage the activation chunk in the line buffer and broadcast
                # each element to its PE row.
                self.line_buffer.load(vector[row_start:row_end], PrecisionMode.FULL)
                partials = np.zeros(cols, dtype=np.int64)
                for local_row in range(row_end - row_start):
                    broadcast = self.line_buffer.broadcast(local_row)
                    for local_col in range(tile_width):
                        pe.reset()
                        pe.load_weight(int(matrix[col_start + local_col, row_start + local_row]))
                        partials[local_col] += pe.mac(broadcast)
                accumulator.accumulate(partials)
            result[col_start:col_end] = accumulator.values[:tile_width]
        self.mvm_count += 1
        self.mac_count += int(matrix.size)
        return result
