"""Column-wise matrix decomposition and the two adaptive-parallelism mappings.

FIXAR computes every layer as a matrix-vector multiplication (MVM) of a
weight matrix ``W`` (P×Q) and an activation vector ``A`` (Q×1) using
*column-wise decomposition* (paper Fig. 4a): column ``q`` of ``W`` is scaled
by element ``A[q]`` and the Q partial-sum vectors are accumulated into the
output.  The same mechanism serves both propagation directions:

* **Inference (intra-layer parallelism)** — the columns of ``W`` are
  interleaved across the AAP cores, each core accumulates its own partial
  result, and a final cross-core accumulation produces the output vector.
  One vector is processed N times faster on N cores.
* **Training (intra-batch parallelism)** — the MVM uses the transposed
  matrix; the batch's vectors are distributed across the cores so each core
  runs a whole MVM on its share of the batch, processing N times more
  vectors in parallel.

This module holds the mapping math (tile counts, column interleaving, batch
partitioning) plus a reference column-wise MVM used to prove the
decomposition is exact.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import List

import numpy as np

__all__ = [
    "Parallelism",
    "ArrayGeometry",
    "column_wise_mvm",
    "interleave_columns",
    "partition_batch",
    "TileSchedule",
    "inference_schedule",
    "training_schedule",
]


class Parallelism(str, Enum):
    """The two dataflow modes of the adaptive array processing cores."""

    INTRA_LAYER = "intra-layer"   # inference: split one MVM across cores
    INTRA_BATCH = "intra-batch"   # training: one MVM per core, split the batch


@dataclass(frozen=True)
class ArrayGeometry:
    """Physical PE-array dimensions of one AAP core."""

    rows: int = 16
    cols: int = 16

    def __post_init__(self) -> None:
        if self.rows <= 0 or self.cols <= 0:
            raise ValueError(f"array dimensions must be positive, got {self.rows}x{self.cols}")

    @property
    def pe_count(self) -> int:
        return self.rows * self.cols


def column_wise_mvm(matrix: np.ndarray, vector: np.ndarray) -> np.ndarray:
    """Reference column-wise decomposition of ``matrix @ vector``.

    Computes the MVM by explicitly scaling each matrix column by the
    corresponding vector element and accumulating the partial-sum vectors,
    exactly as the PE array does.  Works on both float and integer (raw
    fixed-point) arrays.
    """
    matrix = np.asarray(matrix)
    vector = np.asarray(vector).ravel()
    if matrix.ndim != 2:
        raise ValueError(f"matrix must be 2-D, got shape {matrix.shape}")
    if matrix.shape[1] != vector.size:
        raise ValueError(
            f"matrix has {matrix.shape[1]} columns but vector has {vector.size} elements"
        )
    output = np.zeros(matrix.shape[0], dtype=np.result_type(matrix.dtype, vector.dtype))
    for column_index in range(matrix.shape[1]):
        output = output + matrix[:, column_index] * vector[column_index]
    return output


def interleave_columns(num_columns: int, num_cores: int) -> List[np.ndarray]:
    """Round-robin assignment of matrix columns to cores (intra-layer mode).

    With 4 cores, core 0 accumulates columns 0, 4, 8, … exactly as described
    in the paper.
    """
    if num_columns < 0:
        raise ValueError(f"num_columns must be non-negative, got {num_columns}")
    if num_cores <= 0:
        raise ValueError(f"num_cores must be positive, got {num_cores}")
    columns = np.arange(num_columns)
    return [columns[core::num_cores] for core in range(num_cores)]


def partition_batch(batch_size: int, num_cores: int) -> List[np.ndarray]:
    """Contiguous partition of batch indices across cores (intra-batch mode)."""
    if batch_size < 0:
        raise ValueError(f"batch_size must be non-negative, got {batch_size}")
    if num_cores <= 0:
        raise ValueError(f"num_cores must be positive, got {num_cores}")
    indices = np.arange(batch_size)
    return [np.array(chunk, dtype=np.int64) for chunk in np.array_split(indices, num_cores)]


@dataclass(frozen=True)
class TileSchedule:
    """How one MVM maps onto the PE arrays.

    ``row_chunks`` covers the activation (Q) dimension, ``col_chunks`` the
    output (P) dimension.  ``tiles_per_core`` is the number of 16×16 weight
    tiles each core must process for its share of the work, and
    ``vectors_per_core`` how many activation vectors stream through each tile.
    """

    parallelism: Parallelism
    row_chunks: int
    col_chunks: int
    tiles_per_core: int
    vectors_per_core: int
    needs_cross_core_accumulation: bool

    @property
    def total_tiles(self) -> int:
        return self.row_chunks * self.col_chunks


def _ceil_div(numerator: int, denominator: int) -> int:
    return -(-numerator // denominator)


def inference_schedule(
    output_dim: int,
    input_dim: int,
    geometry: ArrayGeometry,
    num_cores: int,
    half_precision: bool = False,
) -> TileSchedule:
    """Tile schedule for one forward-propagation MVM (intra-layer parallelism).

    In half-precision mode each PE row consumes two activations per cycle, so
    the activation dimension needs half as many row chunks.
    """
    if output_dim <= 0 or input_dim <= 0:
        raise ValueError("layer dimensions must be positive")
    if num_cores <= 0:
        raise ValueError("num_cores must be positive")
    activations_per_row = 2 if half_precision else 1
    row_chunks = _ceil_div(input_dim, geometry.rows * activations_per_row)
    col_chunks = _ceil_div(output_dim, geometry.cols)
    tiles_per_core = _ceil_div(row_chunks, num_cores) * col_chunks
    return TileSchedule(
        parallelism=Parallelism.INTRA_LAYER,
        row_chunks=row_chunks,
        col_chunks=col_chunks,
        tiles_per_core=tiles_per_core,
        vectors_per_core=1,
        needs_cross_core_accumulation=num_cores > 1,
    )


def training_schedule(
    output_dim: int,
    input_dim: int,
    batch_size: int,
    geometry: ArrayGeometry,
    num_cores: int,
    half_precision: bool = False,
) -> TileSchedule:
    """Tile schedule for one back-propagation MVM batch (intra-batch parallelism).

    The transposed-matrix MVM reuses the same column-wise mechanism; each
    core owns ``ceil(batch / num_cores)`` vectors and streams them through
    every weight tile, so the weight-load cost is amortised over the batch.
    """
    if output_dim <= 0 or input_dim <= 0:
        raise ValueError("layer dimensions must be positive")
    if batch_size <= 0:
        raise ValueError("batch_size must be positive")
    if num_cores <= 0:
        raise ValueError("num_cores must be positive")
    activations_per_row = 2 if half_precision else 1
    row_chunks = _ceil_div(input_dim, geometry.rows * activations_per_row)
    col_chunks = _ceil_div(output_dim, geometry.cols)
    return TileSchedule(
        parallelism=Parallelism.INTRA_BATCH,
        row_chunks=row_chunks,
        col_chunks=col_chunks,
        tiles_per_core=row_chunks * col_chunks,
        vectors_per_core=_ceil_div(batch_size, num_cores),
        needs_cross_core_accumulation=False,
    )
