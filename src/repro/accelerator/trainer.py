"""On-chip training engine: backward propagation and weight update.

The FIXAR accelerator does not just run inference — the critic and actor
networks are *trained* on chip: gradients are accumulated in the gradient
memory and the Adam module updates the weights resident in the weight
memory, so the model never leaves the FPGA.

:class:`OnChipTrainer` adds that capability to the functional accelerator
model.  A training step for one network is the classic three phases:

* **FP** — batched forward propagation with per-layer activation caching
  (intra-batch parallelism across the AAP cores);
* **BP** — the transposed-matrix MVMs for the input gradients and the
  outer-product accumulation for the weight gradients, both kept in the
  32-bit fixed-point gradient format and accumulated in the gradient memory;
* **WU** — the Adam module streams weights and gradients and writes the
  updated 32-bit fixed-point weights back to the weight memory.

All arithmetic happens on the fixed-point grids, so the result tracks the
software :class:`repro.nn.MLP` trained under ``FixedPointNumerics`` to within
accumulated rounding error.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..fixedpoint import GRADIENT_FORMAT, FxpArray, QFormat
from .accelerator import FixarAccelerator, LoadedLayer
from .activation_unit import ActivationFunction
from .adam_unit import AdamUnit, AdamUnitConfig
from .dataflow import partition_batch

__all__ = ["LayerCache", "TrainingStepResult", "OnChipTrainer"]


@dataclass
class LayerCache:
    """Per-layer values retained by the forward pass for back-propagation."""

    layer: LoadedLayer
    inputs: np.ndarray           # real-valued layer inputs (batch, in_dim)
    pre_activation: np.ndarray   # real-valued pre-activation outputs
    outputs: np.ndarray          # real-valued post-activation outputs


@dataclass
class TrainingStepResult:
    """Outputs and bookkeeping of one on-chip training step."""

    outputs: np.ndarray
    input_gradients: np.ndarray
    weight_update_cycles: int = 0
    gradient_norms: Dict[str, float] = field(default_factory=dict)


class OnChipTrainer:
    """Backward propagation and Adam weight update on the accelerator model."""

    def __init__(
        self,
        accelerator: FixarAccelerator,
        learning_rate: float = 1e-4,
        gradient_format: QFormat = GRADIENT_FORMAT,
    ):
        self.accelerator = accelerator
        self.gradient_format = gradient_format
        self.adam_units: Dict[str, AdamUnit] = {}
        self.learning_rate = learning_rate

    # ------------------------------------------------------------------ #
    # Forward with caching
    # ------------------------------------------------------------------ #
    def forward(self, name: str, states: np.ndarray) -> Tuple[np.ndarray, List[LayerCache]]:
        """Batched forward propagation that retains per-layer activations.

        The numeric path is identical to
        :meth:`FixarAccelerator.forward_batch`; the cache additionally keeps
        the (already fixed-point-projected) layer inputs and pre-activations
        needed by the backward pass.
        """
        accelerator = self.accelerator
        states = np.atleast_2d(np.asarray(states, dtype=np.float64))
        chunks = partition_batch(states.shape[0], len(accelerator.cores))
        activation = FxpArray.from_float(states, accelerator.activation_format)
        caches: List[LayerCache] = []
        for layer in accelerator._layers(name):
            inputs_real = activation.to_float()
            outputs_raw = np.zeros((states.shape[0], layer.output_dim), dtype=np.int64)
            for core, indices in zip(accelerator.cores, chunks):
                if indices.size == 0:
                    continue
                block = FxpArray(activation.raw[indices], activation.fmt, validate=False)
                outputs_raw[indices] = core.run_batch_mvm(layer.weight, block)
            pre_activation = self._finish_pre_activation(outputs_raw, layer, activation.fmt)
            post_activation = accelerator.activation_unit.apply(pre_activation, layer.activation)
            caches.append(
                LayerCache(
                    layer=layer,
                    inputs=inputs_real,
                    pre_activation=pre_activation.to_float(),
                    outputs=post_activation.to_float(),
                )
            )
            activation = post_activation
        return activation.to_float(), caches

    def _finish_pre_activation(
        self, accumulated_raw: np.ndarray, layer: LoadedLayer, activation_fmt: QFormat
    ) -> FxpArray:
        """Re-quantize the accumulator output and add the bias (no non-linearity)."""
        accelerator = self.accelerator
        out_fmt = accelerator.activation_format
        shift = layer.weight.fmt.frac_bits + activation_fmt.frac_bits - out_fmt.frac_bits
        raw = accumulated_raw
        if shift > 0:
            raw = (raw + (1 << (shift - 1))) >> shift
        elif shift < 0:
            raw = raw << (-shift)
        pre_activation = FxpArray(raw, out_fmt, validate=True)
        bias = layer.bias.requantize(out_fmt)
        return FxpArray(pre_activation.raw + bias.raw, out_fmt, validate=True)

    # ------------------------------------------------------------------ #
    # Backward propagation
    # ------------------------------------------------------------------ #
    def backward(
        self, name: str, caches: List[LayerCache], output_gradient: np.ndarray
    ) -> np.ndarray:
        """Back-propagate a batch of output gradients through a network.

        Weight and bias gradients are quantized to the 32-bit gradient format
        and written into the gradient memory; the input gradient is returned
        (needed when the critic's gradient drives the actor's update).
        """
        accelerator = self.accelerator
        gradient = np.atleast_2d(np.asarray(output_gradient, dtype=np.float64))
        for cache in reversed(caches):
            layer = cache.layer
            gradient = self._activation_backward(cache, gradient)
            gradient = self.gradient_format.quantize(gradient)

            weight_grad = self.gradient_format.quantize(cache.inputs.T @ gradient)
            bias_grad = self.gradient_format.quantize(gradient.sum(axis=0))
            self._store_gradients(layer, weight_grad, bias_grad)

            # Input gradient: MVM with the transposed weight matrix, which the
            # dataflow maps onto the same PE arrays in training mode.
            weight = layer.weight.to_float().T  # (in_dim, out_dim) orientation
            gradient = self.gradient_format.quantize(gradient @ weight.T)
        return gradient

    @staticmethod
    def _activation_backward(cache: LayerCache, gradient: np.ndarray) -> np.ndarray:
        """Gradient through the layer's non-linearity."""
        if cache.layer.activation is ActivationFunction.RELU:
            return gradient * (cache.pre_activation > 0.0)
        if cache.layer.activation is ActivationFunction.TANH:
            return gradient * (1.0 - cache.outputs ** 2)
        return gradient

    def _store_gradients(self, layer: LoadedLayer, weight_grad: np.ndarray, bias_grad: np.ndarray) -> None:
        memory = self.accelerator.gradient_memory
        weight_raw = self.gradient_format.to_raw(weight_grad.T)  # paper orientation (out, in)
        bias_raw = self.gradient_format.to_raw(bias_grad)
        memory.write(layer.name + ".weight_grad", weight_raw)
        memory.write(layer.name + ".bias_grad", bias_raw)

    def stored_gradients(self, name: str) -> Dict[str, np.ndarray]:
        """Real-valued gradients currently held in the gradient memory."""
        gradients: Dict[str, np.ndarray] = {}
        for layer in self.accelerator._layers(name):
            weight_raw = self.accelerator.gradient_memory.view(layer.name + ".weight_grad")
            bias_raw = self.accelerator.gradient_memory.view(layer.name + ".bias_grad")
            gradients[layer.name + ".weight"] = self.gradient_format.from_raw(weight_raw)
            gradients[layer.name + ".bias"] = self.gradient_format.from_raw(bias_raw)
        return gradients

    # ------------------------------------------------------------------ #
    # Weight update
    # ------------------------------------------------------------------ #
    def apply_weight_update(self, name: str) -> int:
        """Run the Adam module over the network's weights; returns cycles."""
        accelerator = self.accelerator
        if name not in self.adam_units:
            self.adam_units[name] = AdamUnit(
                AdamUnitConfig(learning_rate=self.learning_rate, weight_format=accelerator.weight_format)
            )
        adam = self.adam_units[name]

        parameters: Dict[str, np.ndarray] = {}
        gradients: Dict[str, np.ndarray] = {}
        layers = accelerator._layers(name)
        for layer in layers:
            parameters[layer.name + ".weight"] = layer.weight.to_float()
            parameters[layer.name + ".bias"] = layer.bias.to_float()
        # Both the resident weights and the stored weight gradients use the
        # paper's (output_dim, input_dim) orientation, so they pair up
        # directly for the update.
        gradients.update(self.stored_gradients(name))

        cycles = adam.step(parameters, gradients)

        # Write the updated weights back into the weight memory and refresh
        # the resident FxpArrays.
        for layer in layers:
            new_weight = FxpArray.from_float(
                parameters[layer.name + ".weight"], accelerator.weight_format
            )
            new_bias = FxpArray.from_float(parameters[layer.name + ".bias"], accelerator.weight_format)
            accelerator.weight_memory.write(layer.name + ".weight", new_weight.raw)
            accelerator.weight_memory.write(layer.name + ".bias", new_bias.raw)
            layer.weight = new_weight
            layer.bias = new_bias
        return cycles

    # ------------------------------------------------------------------ #
    # Full step
    # ------------------------------------------------------------------ #
    def train_batch(
        self,
        name: str,
        states: np.ndarray,
        output_gradient: Optional[np.ndarray] = None,
        targets: Optional[np.ndarray] = None,
    ) -> TrainingStepResult:
        """One FP + BP + WU step for a network on a batch.

        Either an explicit ``output_gradient`` is supplied (the actor update,
        where the gradient comes from differentiating the critic), or
        ``targets`` for a mean-squared-error regression (the critic update).
        """
        if (output_gradient is None) == (targets is None):
            raise ValueError("provide exactly one of output_gradient or targets")
        outputs, caches = self.forward(name, states)
        if targets is not None:
            targets = np.atleast_2d(np.asarray(targets, dtype=np.float64))
            if targets.shape != outputs.shape:
                raise ValueError(
                    f"targets shape {targets.shape} != outputs shape {outputs.shape}"
                )
            output_gradient = 2.0 * (outputs - targets) / max(outputs.size, 1)
        input_gradients = self.backward(name, caches, output_gradient)
        cycles = self.apply_weight_update(name)
        gradient_norms = {
            key: float(np.linalg.norm(value)) for key, value in self.stored_gradients(name).items()
        }
        return TrainingStepResult(
            outputs=outputs,
            input_gradients=input_gradients,
            weight_update_cycles=cycles,
            gradient_norms=gradient_norms,
        )
