"""Cycle-level timing model of the FIXAR accelerator.

The model counts cycles structurally from the dataflow schedules of
:mod:`repro.accelerator.dataflow`:

* a weight tile (16×16 weights) takes ``tile_weight_load_cycles`` to stream
  from the 512-bit weight memory;
* the tile then processes one activation vector per cycle (two per cycle for
  the activation-streaming dimension in half-precision mode);
* weight loading is double-buffered, so a tile costs
  ``max(load_cycles, vectors_per_core)`` cycles — weight loads are fully
  hidden once each core owns at least 16 batch vectors, which is why the
  measured throughput stays high across batch sizes (Fig. 10a);
* every layer pass pays a fixed pipeline/accumulation/activation overhead;
* backward propagation costs two MVM-equivalent passes per layer (the
  transposed-matrix MVM for the input gradient and the outer-product
  accumulation for the weight gradient);
* the Adam module updates 16 weights per cycle.

A full DDPG timestep (Fig. 3) is the sum of the critic and actor training
passes plus one single-state actor inference.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple, Union

from .config import AcceleratorConfig
from .dataflow import TileSchedule, inference_schedule, training_schedule

__all__ = ["CycleBreakdown", "TimingModel", "LayerShape", "HalfFlags"]

#: A dense layer described as ``(input_dim, output_dim)`` — the repository's
#: ``MLP.layer_shapes`` convention.
LayerShape = Tuple[int, int]

#: Precision of a network's MVM passes: one bool for every layer, or a
#: per-layer sequence (mixed per-layer precision plans) matched positionally
#: against the layer shapes.
HalfFlags = Union[bool, Sequence[bool]]


def _layer_flags(half_precision: HalfFlags, num_layers: int) -> List[bool]:
    """Per-layer half-precision flags, broadcast from a scalar bool."""
    if isinstance(half_precision, bool):
        return [half_precision] * num_layers
    flags = [bool(flag) for flag in half_precision]
    if len(flags) != num_layers:
        raise ValueError(
            f"per-layer half_precision has {len(flags)} flags for "
            f"{num_layers} layers"
        )
    return flags


@dataclass
class CycleBreakdown:
    """Per-phase cycle counts for one accelerator workload."""

    phases: Dict[str, int] = field(default_factory=dict)

    def add(self, phase: str, cycles: int) -> None:
        self.phases[phase] = self.phases.get(phase, 0) + int(cycles)

    @property
    def total_cycles(self) -> int:
        return sum(self.phases.values())

    def seconds(self, clock_hz: float) -> float:
        return self.total_cycles / clock_hz

    def merged(self, other: "CycleBreakdown") -> "CycleBreakdown":
        merged = CycleBreakdown(dict(self.phases))
        for phase, cycles in other.phases.items():
            merged.add(phase, cycles)
        return merged

    def as_dict(self) -> Dict[str, int]:
        return dict(self.phases)


class TimingModel:
    """Counts cycles for MVM passes, training phases, and full timesteps."""

    def __init__(self, config: AcceleratorConfig | None = None):
        self.config = config or AcceleratorConfig()

    # ------------------------------------------------------------------ #
    # Schedule-level costs
    # ------------------------------------------------------------------ #
    def schedule_cycles(self, schedule: TileSchedule) -> int:
        """Cycles for one tile schedule on one core (double-buffered loads)."""
        cfg = self.config
        load = cfg.tile_weight_load_cycles()
        per_tile = max(load, schedule.vectors_per_core)
        cycles = schedule.tiles_per_core * per_tile + cfg.layer_overhead_cycles
        if schedule.needs_cross_core_accumulation:
            cycles += schedule.col_chunks * cfg.geometry.cols // cfg.weights_per_cycle + 1
        return int(cycles)

    def schedule_useful_cycles(self, schedule: TileSchedule) -> int:
        """Cycles in which the PE array performs useful MACs for a schedule."""
        return schedule.tiles_per_core * schedule.vectors_per_core

    def schedule_utilization(self, schedule: TileSchedule) -> float:
        """Fraction of PE cycles doing useful MACs under this schedule."""
        total = self.schedule_cycles(schedule)
        return self.schedule_useful_cycles(schedule) / total if total else 0.0

    # ------------------------------------------------------------------ #
    # Layer- and network-level costs
    # ------------------------------------------------------------------ #
    def forward_cycles(
        self, layer_shapes: Sequence[LayerShape], batch_size: int, half_precision: HalfFlags
    ) -> int:
        """Forward propagation of a whole network for a batch.

        ``half_precision`` is a single bool for the whole network or a
        per-layer flag sequence (mixed precision plans), matched
        positionally against ``layer_shapes``.
        """
        flags = _layer_flags(half_precision, len(layer_shapes))
        cycles = 0
        for (input_dim, output_dim), half in zip(layer_shapes, flags):
            if batch_size == 1:
                schedule = inference_schedule(
                    output_dim, input_dim, self.config.geometry, self.config.num_cores, half
                )
            else:
                schedule = training_schedule(
                    output_dim, input_dim, batch_size, self.config.geometry,
                    self.config.num_cores, half,
                )
            cycles += self.schedule_cycles(schedule)
        return cycles

    def backward_cycles(
        self,
        layer_shapes: Sequence[LayerShape],
        batch_size: int,
        half_precision: HalfFlags,
        include_weight_gradient: bool = True,
    ) -> int:
        """Backward propagation: input-gradient MVM plus weight-gradient pass.

        The input-gradient MVM uses the transposed weight matrix, so its
        schedule swaps the layer dimensions.  The weight-gradient outer
        product streams the same vectors through the same tiles and never
        benefits from the half-precision datapath because gradients stay in
        32-bit fixed point.  ``half_precision`` broadcasts like
        :meth:`forward_cycles`.
        """
        flags = _layer_flags(half_precision, len(layer_shapes))
        cycles = 0
        for (input_dim, output_dim), half in zip(layer_shapes, flags):
            dx_schedule = training_schedule(
                input_dim, output_dim, batch_size, self.config.geometry,
                self.config.num_cores, half,
            )
            cycles += self.schedule_cycles(dx_schedule)
            if include_weight_gradient:
                dw_schedule = training_schedule(
                    output_dim, input_dim, batch_size, self.config.geometry,
                    self.config.num_cores, half_precision=False,
                )
                cycles += self.schedule_cycles(dw_schedule)
        return cycles

    def weight_update_cycles(self, parameter_count: int) -> int:
        """Adam weight-update cycles for a parameter tensor population."""
        return -(-parameter_count // self.config.adam_lanes)

    # ------------------------------------------------------------------ #
    # Batched inference (vectorized rollout)
    # ------------------------------------------------------------------ #
    def inference_cycles(
        self,
        layer_shapes: Sequence[LayerShape],
        num_states: int = 1,
        half_precision: HalfFlags = False,
    ) -> int:
        """Forward-only cycles for a batch of ``num_states`` inferences.

        A vectorized rollout presents the actor with N states at once; the
        PE array streams them through each weight tile back to back, so the
        per-layer weight loads and pipeline overheads are paid once per
        layer instead of once per state.  This is why batch-of-N inference
        is strictly cheaper than N serial single-state passes.
        """
        if num_states <= 0:
            raise ValueError(f"num_states must be positive, got {num_states}")
        return self.forward_cycles(layer_shapes, num_states, half_precision)

    def inference_seconds(
        self,
        layer_shapes: Sequence[LayerShape],
        num_states: int = 1,
        half_precision: HalfFlags = False,
    ) -> float:
        """Latency of one batched inference pass in seconds."""
        cycles = self.inference_cycles(layer_shapes, num_states, half_precision)
        return cycles / self.config.clock_hz

    # ------------------------------------------------------------------ #
    # Full DDPG timestep (Fig. 3)
    # ------------------------------------------------------------------ #
    def timestep_breakdown(
        self,
        actor_shapes: Sequence[LayerShape],
        critic_shapes: Sequence[LayerShape],
        batch_size: int,
        half_precision: bool = False,
        num_envs: int = 1,
        *,
        actor_half_precision: HalfFlags | None = None,
        critic_half_precision: HalfFlags | None = None,
    ) -> CycleBreakdown:
        """Cycles of one full training timestep on the accelerator.

        Phases follow the paper's operation sequence: the critic evaluates
        the sampled transitions (including the target networks), trains, and
        leads the actor's training; finally the actor runs the rollout
        inference whose result is returned to the host — a single state in
        the paper's loop, or a batch of ``num_envs`` states when the host
        rolls out a vectorized environment.

        ``actor_half_precision`` / ``critic_half_precision`` override the
        uniform ``half_precision`` flag per network — as a bool or a
        per-layer flag sequence (mixed precision plans).
        """
        if batch_size <= 0:
            raise ValueError(f"batch_size must be positive, got {batch_size}")
        if num_envs <= 0:
            raise ValueError(f"num_envs must be positive, got {num_envs}")
        actor_half = half_precision if actor_half_precision is None else actor_half_precision
        critic_half = half_precision if critic_half_precision is None else critic_half_precision
        actor_params = _parameter_count(actor_shapes)
        critic_params = _parameter_count(critic_shapes)

        breakdown = CycleBreakdown()
        # Critic update: target-network evaluations, Q evaluation, BP, WU.
        breakdown.add(
            "critic_target_forward",
            self.forward_cycles(actor_shapes, batch_size, actor_half)
            + self.forward_cycles(critic_shapes, batch_size, critic_half),
        )
        breakdown.add(
            "critic_forward", self.forward_cycles(critic_shapes, batch_size, critic_half)
        )
        breakdown.add(
            "critic_backward", self.backward_cycles(critic_shapes, batch_size, critic_half)
        )
        breakdown.add("critic_weight_update", self.weight_update_cycles(critic_params))

        # Actor update: policy forward, critic evaluation of the policy
        # action, input-gradient-only pass through the critic, actor BP, WU.
        breakdown.add(
            "actor_forward", self.forward_cycles(actor_shapes, batch_size, actor_half)
        )
        breakdown.add(
            "policy_q_forward", self.forward_cycles(critic_shapes, batch_size, critic_half)
        )
        breakdown.add(
            "policy_q_backward",
            self.backward_cycles(
                critic_shapes, batch_size, critic_half, include_weight_gradient=False
            ),
        )
        breakdown.add(
            "actor_backward", self.backward_cycles(actor_shapes, batch_size, actor_half)
        )
        breakdown.add("actor_weight_update", self.weight_update_cycles(actor_params))

        # Actor inference for the environments' next actions (batch of
        # ``num_envs`` states; the paper's scalar loop is num_envs == 1).
        breakdown.add(
            "actor_inference", self.inference_cycles(actor_shapes, num_envs, actor_half)
        )
        return breakdown

    def timestep_seconds(
        self,
        actor_shapes: Sequence[LayerShape],
        critic_shapes: Sequence[LayerShape],
        batch_size: int,
        half_precision: bool = False,
        num_envs: int = 1,
        *,
        actor_half_precision: HalfFlags | None = None,
        critic_half_precision: HalfFlags | None = None,
    ) -> float:
        """Latency of one accelerator timestep in seconds."""
        breakdown = self.timestep_breakdown(
            actor_shapes, critic_shapes, batch_size, half_precision, num_envs,
            actor_half_precision=actor_half_precision,
            critic_half_precision=critic_half_precision,
        )
        return breakdown.seconds(self.config.clock_hz)

    def accelerator_ips(
        self,
        actor_shapes: Sequence[LayerShape],
        critic_shapes: Sequence[LayerShape],
        batch_size: int,
        half_precision: bool = False,
    ) -> float:
        """Accelerator-only IPS: batch transitions processed per second.

        Matches the paper's Fig. 10a metric (accelerator time only, no host
        or PCIe time).
        """
        seconds = self.timestep_seconds(actor_shapes, critic_shapes, batch_size, half_precision)
        return batch_size / seconds

    def forward_useful_cycles(
        self, layer_shapes: Sequence[LayerShape], batch_size: int, half_precision: HalfFlags
    ) -> int:
        """Useful MAC cycles of a forward pass (same structure as forward_cycles)."""
        flags = _layer_flags(half_precision, len(layer_shapes))
        cycles = 0
        for (input_dim, output_dim), half in zip(layer_shapes, flags):
            if batch_size == 1:
                schedule = inference_schedule(
                    output_dim, input_dim, self.config.geometry, self.config.num_cores, half
                )
            else:
                schedule = training_schedule(
                    output_dim, input_dim, batch_size, self.config.geometry,
                    self.config.num_cores, half,
                )
            cycles += self.schedule_useful_cycles(schedule)
        return cycles

    def backward_useful_cycles(
        self,
        layer_shapes: Sequence[LayerShape],
        batch_size: int,
        half_precision: HalfFlags,
        include_weight_gradient: bool = True,
    ) -> int:
        """Useful MAC cycles of a backward pass (mirrors backward_cycles)."""
        flags = _layer_flags(half_precision, len(layer_shapes))
        cycles = 0
        for (input_dim, output_dim), half in zip(layer_shapes, flags):
            dx_schedule = training_schedule(
                input_dim, output_dim, batch_size, self.config.geometry,
                self.config.num_cores, half,
            )
            cycles += self.schedule_useful_cycles(dx_schedule)
            if include_weight_gradient:
                dw_schedule = training_schedule(
                    output_dim, input_dim, batch_size, self.config.geometry,
                    self.config.num_cores, half_precision=False,
                )
                cycles += self.schedule_useful_cycles(dw_schedule)
        return cycles

    def hardware_utilization(
        self,
        actor_shapes: Sequence[LayerShape],
        critic_shapes: Sequence[LayerShape],
        batch_size: int,
        half_precision: bool = False,
        num_envs: int = 1,
        *,
        actor_half_precision: HalfFlags | None = None,
        critic_half_precision: HalfFlags | None = None,
    ) -> float:
        """PE-array utilization over one training timestep.

        Counts the useful MAC cycles of every MVM pass in the timestep (the
        same passes :meth:`timestep_breakdown` charges for) and divides by
        the total timestep cycles, so weight-load stalls, per-layer pipeline
        overheads, weight updates, and the rollout inference all count
        against utilization.
        """
        actor_half = half_precision if actor_half_precision is None else actor_half_precision
        critic_half = half_precision if critic_half_precision is None else critic_half_precision
        breakdown = self.timestep_breakdown(
            actor_shapes, critic_shapes, batch_size, half_precision, num_envs,
            actor_half_precision=actor_half_precision,
            critic_half_precision=critic_half_precision,
        )
        useful = 0
        # Critic update passes.
        useful += self.forward_useful_cycles(actor_shapes, batch_size, actor_half)
        useful += 2 * self.forward_useful_cycles(critic_shapes, batch_size, critic_half)
        useful += self.backward_useful_cycles(critic_shapes, batch_size, critic_half)
        # Actor update passes.
        useful += self.forward_useful_cycles(actor_shapes, batch_size, actor_half)
        useful += self.forward_useful_cycles(critic_shapes, batch_size, critic_half)
        useful += self.backward_useful_cycles(
            critic_shapes, batch_size, critic_half, include_weight_gradient=False
        )
        useful += self.backward_useful_cycles(actor_shapes, batch_size, actor_half)
        # Rollout inference (batch of num_envs states).
        useful += self.forward_useful_cycles(actor_shapes, num_envs, actor_half)
        return min(1.0, useful / breakdown.total_cycles)


def _parameter_count(layer_shapes: Sequence[LayerShape]) -> int:
    """Weights + biases of a dense network described by its layer shapes."""
    return sum(input_dim * output_dim + output_dim for input_dim, output_dim in layer_shapes)
