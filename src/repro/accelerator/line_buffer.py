"""Activation line buffer.

Each AAP core copies a vector of input activations from the activation
memory into a 512-bit line buffer, from which each element is broadcast to a
row of the PE array.  In half-precision mode a 512-bit line carries twice as
many activations, which is where the doubled throughput comes from on the
memory side.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .pe import PrecisionMode

__all__ = ["ActivationLineBuffer"]


class ActivationLineBuffer:
    """A fixed-width staging buffer between the activation memory and the PEs."""

    def __init__(self, width_bits: int = 512):
        if width_bits <= 0 or width_bits % 32 != 0:
            raise ValueError(f"width_bits must be a positive multiple of 32, got {width_bits}")
        self.width_bits = width_bits
        self._data: Optional[np.ndarray] = None
        self._mode = PrecisionMode.FULL
        self.load_count = 0

    def capacity(self, mode: PrecisionMode) -> int:
        """How many activations one line holds in the given precision mode."""
        return self.width_bits // mode.activation_bits

    def load(self, activations_raw: np.ndarray, mode: PrecisionMode) -> None:
        """Fill the buffer with raw activation codes for broadcast.

        Raises if the vector does not fit in one line — the controller is
        responsible for splitting longer vectors into line-sized chunks.
        """
        activations_raw = np.asarray(activations_raw, dtype=np.int64).ravel()
        limit = self.capacity(mode)
        if activations_raw.size > limit:
            raise ValueError(
                f"line buffer holds {limit} activations in {mode.value} precision, "
                f"got {activations_raw.size}"
            )
        self._data = activations_raw.copy()
        self._mode = mode
        self.load_count += 1

    @property
    def occupancy(self) -> int:
        """Number of activations currently staged."""
        return 0 if self._data is None else int(self._data.size)

    def broadcast(self, index: int) -> int:
        """The activation broadcast to PE-array row ``index``."""
        if self._data is None:
            raise RuntimeError("line buffer is empty; call load() first")
        if not 0 <= index < self._data.size:
            raise IndexError(f"row index {index} outside occupancy {self._data.size}")
        return int(self._data[index])

    def contents(self) -> np.ndarray:
        """A copy of the staged activations."""
        if self._data is None:
            return np.empty(0, dtype=np.int64)
        return self._data.copy()
