"""Processing element (PE) with a configurable 32/16-bit datapath (Fig. 5).

Each PE holds a pre-loaded weight and performs one multiply-accumulate per
cycle.  Its datapath is built from two 32x16 multipliers:

* in **full-precision** mode the 32-bit activation is split into upper and
  lower halves, each half is multiplied by the weight, and the upper product
  is shifted left by 16 before both are added into a single accumulator;
* in **half-precision** mode the two multipliers work on two independent
  16-bit activations and feed two separate accumulators, doubling throughput.

The class below is a faithful single-PE model used for bit-exactness tests;
the array core uses vectorised equivalents of the same arithmetic.
"""

from __future__ import annotations

from enum import Enum
from typing import Tuple

import numpy as np

from ..fixedpoint.arithmetic import (
    mac_full_precision,
    mac_half_precision,
)

__all__ = ["PrecisionMode", "ProcessingElement"]


class PrecisionMode(str, Enum):
    """Datapath configuration of a PE (and of the whole array)."""

    FULL = "full"    # one 32-bit activation per cycle
    HALF = "half"    # two 16-bit activations per cycle

    @property
    def macs_per_cycle(self) -> int:
        """Effective MAC throughput of one PE in this mode."""
        return 1 if self is PrecisionMode.FULL else 2

    @property
    def activation_bits(self) -> int:
        return 32 if self is PrecisionMode.FULL else 16


class ProcessingElement:
    """One configurable-datapath multiply-accumulate unit."""

    def __init__(self) -> None:
        self._weight = np.int64(0)
        self._accumulator_a = np.int64(0)
        self._accumulator_b = np.int64(0)
        self.mode = PrecisionMode.FULL
        self.cycle_count = 0

    # ------------------------------------------------------------------ #
    # Configuration
    # ------------------------------------------------------------------ #
    def load_weight(self, weight_raw: int) -> None:
        """Pre-load the weight register from the weight memory."""
        self._weight = np.int64(weight_raw)

    def set_mode(self, mode: PrecisionMode) -> None:
        """Reconfigure the datapath (does not clear the accumulators)."""
        self.mode = mode

    def reset(self) -> None:
        """Clear both accumulators and the cycle counter."""
        self._accumulator_a = np.int64(0)
        self._accumulator_b = np.int64(0)
        self.cycle_count = 0

    @property
    def weight(self) -> int:
        return int(self._weight)

    @property
    def accumulator(self) -> int:
        """The full-precision accumulator value."""
        return int(self._accumulator_a)

    @property
    def accumulators(self) -> Tuple[int, int]:
        """Both half-precision accumulators ``(a, b)``."""
        return int(self._accumulator_a), int(self._accumulator_b)

    # ------------------------------------------------------------------ #
    # Datapath
    # ------------------------------------------------------------------ #
    def mac(self, activation_raw: int) -> int:
        """Full-precision MAC: accumulate ``activation * weight`` in one cycle."""
        if self.mode is not PrecisionMode.FULL:
            raise RuntimeError("PE is configured for half precision; use mac_dual()")
        self._accumulator_a = np.int64(
            mac_full_precision(self._accumulator_a, np.int64(activation_raw), self._weight)
        )
        self.cycle_count += 1
        return int(self._accumulator_a)

    def mac_dual(self, activation_a_raw: int, activation_b_raw: int) -> Tuple[int, int]:
        """Half-precision MAC: two independent accumulations in one cycle."""
        if self.mode is not PrecisionMode.HALF:
            raise RuntimeError("PE is configured for full precision; use mac()")
        acc_a, acc_b = mac_half_precision(
            self._accumulator_a,
            self._accumulator_b,
            np.int64(activation_a_raw),
            np.int64(activation_b_raw),
            self._weight,
        )
        self._accumulator_a = np.int64(acc_a)
        self._accumulator_b = np.int64(acc_b)
        self.cycle_count += 1
        return int(self._accumulator_a), int(self._accumulator_b)

    @property
    def throughput_multiplier(self) -> int:
        """MACs per cycle in the current mode (1 or 2)."""
        return self.mode.macs_per_cycle
