"""Per-layer mapping reports: how a workload lands on the AAP cores.

The dataflow section of the paper (Fig. 4) describes how each layer's MVM is
decomposed into weight tiles and mapped across the AAP cores.  This module
turns that mapping into inspectable tables: for every dense layer of the
actor and critic it reports the tile schedule, the cycles spent in forward
and backward propagation, the PE utilization, and the weight-memory
footprint — the numbers an accelerator designer looks at when sizing the
array and the memories.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from .config import AcceleratorConfig
from .dataflow import inference_schedule, training_schedule
from .timing import LayerShape, TimingModel

__all__ = ["layer_mapping_report", "workload_mapping_report", "memory_footprint_report"]


def layer_mapping_report(
    layer_shapes: Sequence[LayerShape],
    batch_size: int,
    config: AcceleratorConfig | None = None,
    half_precision: bool = False,
    network: str = "network",
) -> List[Dict[str, object]]:
    """One row per dense layer: tile schedule, cycles, and utilization."""
    config = config or AcceleratorConfig()
    timing = TimingModel(config)
    rows: List[Dict[str, object]] = []
    for index, (input_dim, output_dim) in enumerate(layer_shapes):
        if batch_size == 1:
            forward = inference_schedule(
                output_dim, input_dim, config.geometry, config.num_cores, half_precision
            )
        else:
            forward = training_schedule(
                output_dim, input_dim, batch_size, config.geometry, config.num_cores, half_precision
            )
        backward = training_schedule(
            input_dim, output_dim, max(batch_size, 1), config.geometry, config.num_cores, half_precision
        )
        forward_cycles = timing.schedule_cycles(forward)
        backward_cycles = timing.schedule_cycles(backward)
        rows.append(
            {
                "Network": network,
                "Layer": f"L{index} ({input_dim}x{output_dim})",
                "Parallelism": forward.parallelism.value,
                "Row chunks": forward.row_chunks,
                "Col chunks": forward.col_chunks,
                "Tiles/core": forward.tiles_per_core,
                "Vectors/core": forward.vectors_per_core,
                "FP cycles": forward_cycles,
                "BP cycles (dX)": backward_cycles,
                "PE utilization (%)": round(100 * timing.schedule_utilization(forward), 1),
                "Weights (KB)": round(input_dim * output_dim * 4 / 1024, 1),
            }
        )
    return rows


def workload_mapping_report(
    actor_shapes: Sequence[LayerShape],
    critic_shapes: Sequence[LayerShape],
    batch_size: int,
    config: AcceleratorConfig | None = None,
    half_precision: bool = False,
) -> List[Dict[str, object]]:
    """Layer mapping rows for the full DDPG workload (actor + critic)."""
    rows = layer_mapping_report(
        actor_shapes, batch_size, config, half_precision, network="actor"
    )
    rows += layer_mapping_report(
        critic_shapes, batch_size, config, half_precision, network="critic"
    )
    return rows


def memory_footprint_report(
    actor_shapes: Sequence[LayerShape],
    critic_shapes: Sequence[LayerShape],
    config: AcceleratorConfig | None = None,
    bits_per_weight: int = 32,
) -> Dict[str, object]:
    """Weight / gradient / activation memory requirements of a workload."""
    config = config or AcceleratorConfig()

    def parameters(shapes: Sequence[LayerShape]) -> int:
        return sum(i * o + o for i, o in shapes)

    def activations(shapes: Sequence[LayerShape]) -> int:
        return sum(o for _, o in shapes)

    actor_params = parameters(actor_shapes)
    critic_params = parameters(critic_shapes)
    total_weight_bytes = (actor_params + critic_params) * bits_per_weight // 8
    # The activation memory is reused between the actor and critic phases of
    # a timestep, so its requirement is the larger of the two networks' layer
    # activations (the paper's 2.94 KB holds all three layers of one network).
    activation_bytes = max(activations(actor_shapes), activations(critic_shapes)) * 4
    return {
        "actor_parameters": actor_params,
        "critic_parameters": critic_params,
        "weight_bytes": total_weight_bytes,
        "weight_memory_bytes": config.weight_memory_bytes,
        "weight_memory_utilization": total_weight_bytes / config.weight_memory_bytes,
        "fits_weight_memory": total_weight_bytes <= config.weight_memory_bytes,
        "gradient_bytes": total_weight_bytes,
        "activation_bytes": activation_bytes,
        "fits_activation_memory": activation_bytes <= config.activation_memory_bytes,
    }
