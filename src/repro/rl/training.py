"""The DDPG training loop used by every Fig. 7 experiment.

One loop iteration corresponds to one platform timestep (paper Fig. 3): the
actor selects a (noisy) action for the current state, the environment
advances and returns the reward and next state, the transition is stored in
the replay buffer, and a random batch is used to update the critic and actor
networks.  A :class:`~repro.rl.qat.QATController` may be attached to switch
the activation precision at the quantization delay.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional

import numpy as np

from ..envs.base import Environment
from .ddpg import DDPGAgent
from .evaluation import LearningCurve, evaluate_policy
from .noise import GaussianNoise, NoiseProcess
from .qat import QATController, QATEvent
from .replay_buffer import ReplayBuffer

__all__ = ["TrainingConfig", "TrainingResult", "train"]


@dataclass(frozen=True)
class TrainingConfig:
    """Knobs of the training loop (paper defaults, scaled by the caller)."""

    #: Total environment timesteps (paper: 1,000,000).
    total_timesteps: int = 10_000
    #: Steps of uniform-random actions before the policy is used.
    warmup_timesteps: int = 1_000
    #: Replay batch size B sent to the accelerator each timestep.
    batch_size: int = 64
    #: Replay buffer capacity.
    buffer_capacity: int = 100_000
    #: Evaluate every this many timesteps (paper: 5000).
    evaluation_interval: int = 5_000
    #: Rollouts per evaluation (paper: 10).
    evaluation_episodes: int = 10
    #: Std-dev of Gaussian exploration noise added to actions.
    exploration_noise: float = 0.1
    #: Random seed for the loop (exploration, replay sampling).
    seed: Optional[int] = 0

    def __post_init__(self) -> None:
        if self.total_timesteps <= 0:
            raise ValueError("total_timesteps must be positive")
        if self.warmup_timesteps < 0:
            raise ValueError("warmup_timesteps must be non-negative")
        if self.batch_size <= 0:
            raise ValueError("batch_size must be positive")
        if self.buffer_capacity < self.batch_size:
            raise ValueError("buffer_capacity must be at least batch_size")
        if self.evaluation_interval <= 0:
            raise ValueError("evaluation_interval must be positive")
        if self.evaluation_episodes <= 0:
            raise ValueError("evaluation_episodes must be positive")
        if self.exploration_noise < 0:
            raise ValueError("exploration_noise must be non-negative")


@dataclass
class TrainingResult:
    """Everything a Fig. 7 experiment needs from one training run."""

    curve: LearningCurve
    episode_returns: List[float] = field(default_factory=list)
    qat_event: Optional[QATEvent] = None
    total_timesteps: int = 0
    total_updates: int = 0

    def summary(self) -> dict:
        info = self.curve.summary()
        info.update(
            {
                "episodes": len(self.episode_returns),
                "total_timesteps": self.total_timesteps,
                "total_updates": self.total_updates,
                "quantization_switch_step": (
                    self.qat_event.timestep if self.qat_event else None
                ),
            }
        )
        return info


def train(
    env: Environment,
    agent: DDPGAgent,
    config: TrainingConfig,
    *,
    eval_env: Optional[Environment] = None,
    qat_controller: Optional[QATController] = None,
    noise: Optional[NoiseProcess] = None,
    label: Optional[str] = None,
    progress_callback: Optional[Callable[[int, dict], None]] = None,
) -> TrainingResult:
    """Run the DDPG training loop and return its learning curve.

    Parameters
    ----------
    env:
        Training environment.
    agent:
        The DDPG agent to train in place.
    config:
        Loop configuration.
    eval_env:
        Separate environment for evaluations (defaults to ``env``'s class is
        *not* re-instantiated; the same ``env`` object is reused, which keeps
        the substrate dependency-free — pass a distinct instance to match the
        paper's protocol exactly).
    qat_controller:
        Optional Algorithm 1 controller switching activation precision.
    noise:
        Exploration noise process (defaults to Gaussian with the configured
        standard deviation).
    label:
        Learning-curve label (defaults to the agent's numeric regime name).
    progress_callback:
        Optional ``callback(timestep, metrics)`` invoked after each evaluation.
    """
    rng = np.random.default_rng(config.seed)
    shares_training_env = False
    if eval_env is not None:
        evaluation_env = eval_env
    else:
        # Prefer a fresh instance of the same benchmark so evaluations do not
        # disturb the training episode; fall back to sharing when the
        # environment cannot be default-constructed.
        try:
            evaluation_env = type(env)()
            evaluation_env.seed(config.seed)
        except TypeError:
            evaluation_env = env
            shares_training_env = True
    noise = noise or GaussianNoise(agent.action_dim, config.exploration_noise, seed=config.seed)
    buffer = ReplayBuffer(
        config.buffer_capacity, agent.state_dim, agent.action_dim, seed=config.seed
    )
    curve = LearningCurve(label or agent.numerics.name)
    result = TrainingResult(curve=curve)

    observation = env.reset()
    episode_return = 0.0

    for timestep in range(config.total_timesteps):
        qat_event = None
        if qat_controller is not None:
            qat_event = qat_controller.on_timestep(timestep)
            if qat_event is not None:
                result.qat_event = qat_event

        # ----- Action selection ------------------------------------------ #
        if timestep < config.warmup_timesteps:
            action = rng.uniform(-1.0, 1.0, size=agent.action_dim)
        else:
            action = agent.act(observation, noise.sample())

        # ----- Environment interaction (host CPU side) -------------------- #
        next_observation, reward, done, _ = env.step(action)
        buffer.add(observation, action, reward, next_observation, done)
        episode_return += reward
        observation = next_observation

        if done:
            result.episode_returns.append(episode_return)
            episode_return = 0.0
            observation = env.reset()
            noise.reset()

        # ----- Agent update (accelerator side) ----------------------------- #
        if len(buffer) >= config.batch_size and timestep >= config.warmup_timesteps:
            agent.update(buffer.sample(config.batch_size))
            result.total_updates += 1

        # ----- Periodic evaluation ---------------------------------------- #
        if (timestep + 1) % config.evaluation_interval == 0:
            average_return = evaluate_policy(
                evaluation_env, agent, episodes=config.evaluation_episodes
            )
            curve.record(timestep + 1, average_return)
            if shares_training_env:
                # Evaluation consumed the shared environment's episode; start
                # a fresh training episode from a clean state.
                result.episode_returns.append(episode_return)
                episode_return = 0.0
                observation = env.reset()
                noise.reset()
            if progress_callback is not None:
                progress_callback(
                    timestep + 1,
                    {
                        "average_return": average_return,
                        "episodes": len(result.episode_returns),
                        "activation_bits": agent.numerics.activation_bits,
                    },
                )

    # If the run ended between evaluation points, add a final evaluation so
    # short smoke-test runs still produce a non-empty curve.
    if not curve.points:
        curve.record(
            config.total_timesteps,
            evaluate_policy(evaluation_env, agent, episodes=config.evaluation_episodes),
        )

    result.total_timesteps = config.total_timesteps
    return result
