"""The DDPG/TD3 training loop used by every Fig. 7 experiment.

One loop iteration corresponds to one platform timestep (paper Fig. 3): the
actor selects a (noisy) action for the current state, the environment
advances and returns the reward and next state, the transition is stored in
the replay buffer, and a random batch is used to update the critic and actor
networks.  A :class:`~repro.rl.qat.QATController` may be attached to switch
the activation precision at the quantization delay.

Since the vectorized-rollout refactor, :func:`train` drives a
:class:`~repro.rl.rollout.RolloutEngine` over a
:class:`~repro.envs.vector.VectorEnv`: each lock-step selects actions for
all ``num_envs`` environments with one batched actor inference, then runs
one agent update per collected environment step, so the update-to-data ratio
matches the scalar loop at every ``num_envs``.  With ``num_envs == 1`` the
loop consumes every RNG stream in exactly the scalar order —
:func:`train_scalar_reference` preserves the pre-refactor loop verbatim as
the oracle the regression tests compare against.

Since the round-scheduler refactor, the schedules themselves — sequential,
pipelined (``TrainingConfig.pipeline_depth`` / ``schedule="pipelined"``),
and throughput-weighted (``schedule="weighted"``) — live in
:mod:`repro.rl.scheduler`: :func:`train` and :func:`train_fleet` are thin
wrappers that build :class:`~repro.rl.scheduler.ScheduledGroup` s and run
them through a :class:`~repro.rl.scheduler.RoundScheduler`.  Every
schedule is emulated deterministically in one thread, the sequential
policy stays bit-exact with the pre-scheduler loop (and through it with
:func:`train_scalar_reference`), and ``pipeline_depth`` bounds the
staleness window exactly as before.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from ..envs.base import Environment
from ..envs.registry import make as make_registered_env
from ..envs.vector import VectorEnv
from ..nn import DynamicFixedPointNumerics
from .ddpg import DDPGAgent
from .evaluation import LearningCurve, evaluate_policy
from .noise import GaussianNoise, NoiseProcess
from .precision import PRECISION_POLICIES, resolve_precision
from .qat import QATController, QATEvent
from .replay_buffer import ReplayBuffer
from .rollout import RolloutEngine
from .scheduler import (
    ASSIGNMENTS,
    RoundScheduler,
    ScheduledGroup,
    resolve_assignment,
    resolve_policy,
)
from .workers import AsyncCollector, CollectorWorker, HeteroFleet, parse_fleet_spec

#: Round-scheduling policies ``TrainingConfig.schedule`` accepts (``None``
#: resolves from ``pipeline_depth``; see :func:`repro.rl.scheduler.resolve_policy`).
SCHEDULES = ("sequential", "pipelined", "weighted", "adaptive")

#: Update-stream placements ``TrainingConfig.placement`` accepts (mirrors
#: :data:`repro.platform.PLACEMENTS` without importing the platform layer).
PLACEMENTS = ("colocated", "disaggregated")

__all__ = [
    "TrainingConfig",
    "TrainingResult",
    "FleetTrainingResult",
    "train",
    "train_fleet",
    "train_scalar_reference",
]


@dataclass(frozen=True)
class TrainingConfig:
    """Knobs of the training loop (paper defaults, scaled by the caller)."""

    #: Total environment timesteps (paper: 1,000,000).
    total_timesteps: int = 10_000
    #: Steps of uniform-random actions before the policy is used.
    warmup_timesteps: int = 1_000
    #: Replay batch size B sent to the accelerator each timestep.
    batch_size: int = 64
    #: Replay buffer capacity.
    buffer_capacity: int = 100_000
    #: Evaluate every this many timesteps (paper: 5000).
    evaluation_interval: int = 5_000
    #: Rollouts per evaluation (paper: 10).
    evaluation_episodes: int = 10
    #: Std-dev of Gaussian exploration noise added to actions.
    exploration_noise: float = 0.1
    #: Random seed for the loop (exploration, replay sampling).
    seed: Optional[int] = 0
    #: Environments rolled out in lock-step (1 = the paper's scalar loop).
    #: The loop runs whole lock-steps, so ``total_timesteps`` is rounded up
    #: to the next multiple of ``num_envs * num_workers`` (the actual count
    #: is reported in ``TrainingResult.total_timesteps``).
    num_envs: int = 1
    #: Collection workers, each owning its own ``VectorEnv`` of ``num_envs``
    #: environments (seeded ``seed + worker_id * num_envs + i``) and an actor
    #: replica.  ``train`` schedules the workers deterministically
    #: (round-robin synchronous mode), so runs stay reproducible; with
    #: ``num_workers == 1`` the loop is bit-exact with the single-engine
    #: path.  The free-running multi-process mode is exposed through
    #: :class:`~repro.rl.workers.AsyncCollector` directly.
    num_workers: int = 1
    #: Environment steps between actor-weight broadcasts to the worker
    #: replicas (ignored with ``num_workers == 1``, where the worker acts
    #: through the learner's own agent).
    sync_interval: int = 1
    #: Rounds the collector fleet may run ahead of the learner (the bounded
    #: staleness window of the pipelined schedule).  ``0`` is the sequential
    #: schedule — collect a round, then update on it — and stays bit-exact
    #: with the pre-pipeline loop.  With depth ``d`` the fleet collects round
    #: ``k+1 .. k+d`` while the learner is still consuming round ``k``, so
    #: collection acts on weights up to ``d`` rounds stale (weight broadcasts
    #: still honor ``sync_interval``); the learner drains the backlog at the
    #: end of the run, so the update-to-data ratio is unchanged.
    pipeline_depth: int = 0
    #: Heterogeneous fleet spec — ``"HalfCheetah:2,Hopper:2:8"`` or a
    #: parsed sequence of ``(benchmark, count)`` pairs / ``(benchmark,
    #: count, num_envs)`` triples (grammar in
    #: :func:`~repro.rl.workers.parse_fleet_spec`; a missing width defaults
    #: to ``num_envs``).  ``None`` (the default) is the homogeneous path
    #: driven by ``num_workers``.  When set, the spec determines the
    #: fleet's worker counts and per-benchmark lock-step widths,
    #: ``num_workers`` must stay at its default of 1, and training runs
    #: through :func:`train_fleet` (one learner agent and replay buffer per
    #: benchmark) instead of :func:`train`.
    fleet: Optional[Union[str, Sequence]] = None
    #: Round-scheduling policy: ``"sequential"``, ``"pipelined"``,
    #: ``"weighted"`` (throughput-weighted rounds — heterogeneous fleets
    #: with cheaper modelled host+inference chains collect extra lock-steps
    #: per round), or ``"adaptive"`` (weighted rounds that additionally
    #: re-price at precision-epoch boundaries).  ``None`` (the default)
    #: resolves from ``pipeline_depth`` — depth 0 is sequential, anything
    #: else pipelined — so every pre-existing configuration keeps its exact
    #: behavior.
    schedule: Optional[str] = None
    #: Accelerators in the device pool serving the run.  ``1`` (the
    #: default) is the single-platform path; ``> 1`` requires passing an
    #: :class:`~repro.platform.AcceleratorPool` of that size as the
    #: ``platform`` hook (the rl layer never constructs platform objects).
    #: Devices change only the modelled pricing and per-benchmark device
    #: affinity — the training numerics are identical at every pool size.
    devices: int = 1
    #: Where the learners' update streams run: ``"colocated"`` (each
    #: group's updates share its collection device) or ``"disaggregated"``
    #: (the pool's last device is dedicated to updates; needs
    #: ``devices >= 2``).  Must match the pool's placement.
    placement: str = "colocated"
    #: Device-assignment policy for fleet groups: ``None`` /
    #: ``"round-robin"`` (spec-order dealing over the collection devices),
    #: ``"balanced"`` (greedy modelled-load balancing), or an explicit
    #: ``{benchmark: device}`` mapping (unknown benchmarks raise).  See
    #: :func:`repro.rl.scheduler.resolve_assignment`.
    assignment: Optional[Union[str, Mapping[str, int]]] = None
    #: Precision policy driving the run's quantization schedule:
    #: ``"global-switch"`` (Algorithm 1's single switch), ``"per-layer"``
    #: (a static per-layer bitwidth table), or ``"range-driven"``
    #: (range-statistic-driven per-layer switches) — the names registered
    #: in :data:`repro.rl.precision.PRECISION_POLICIES`.  ``None`` (the
    #: default) leaves precision to an explicitly passed ``qat_controller``
    #: (or runs un-switched).  Requires dynamic fixed-point numerics; the
    #: resolved policy is shared fleet-wide like the QAT controller.
    precision: Optional[str] = None
    #: Policy-specific spec string for ``precision`` (grammar per policy:
    #: ``[bits][@delay]`` for global-switch, ``pattern=bits[@delay],...``
    #: for per-layer, ``key=value,...`` for range-driven).
    precision_spec: Optional[str] = None

    def __post_init__(self) -> None:
        if self.total_timesteps <= 0:
            raise ValueError("total_timesteps must be positive")
        if self.warmup_timesteps < 0:
            raise ValueError("warmup_timesteps must be non-negative")
        if self.batch_size <= 0:
            raise ValueError("batch_size must be positive")
        if self.buffer_capacity < self.batch_size:
            raise ValueError("buffer_capacity must be at least batch_size")
        if self.evaluation_interval <= 0:
            raise ValueError("evaluation_interval must be positive")
        if self.evaluation_episodes <= 0:
            raise ValueError("evaluation_episodes must be positive")
        if self.exploration_noise < 0:
            raise ValueError("exploration_noise must be non-negative")
        if self.num_envs <= 0:
            raise ValueError("num_envs must be positive")
        if self.num_workers <= 0:
            raise ValueError("num_workers must be positive")
        if self.sync_interval <= 0:
            raise ValueError("sync_interval must be positive")
        if self.pipeline_depth < 0:
            raise ValueError("pipeline_depth must be non-negative")
        if self.schedule is not None:
            if self.schedule not in SCHEDULES:
                raise ValueError(
                    f"schedule must be one of {SCHEDULES}, got {self.schedule!r}"
                )
            if self.schedule == "sequential" and self.pipeline_depth > 0:
                raise ValueError(
                    "schedule 'sequential' conflicts with pipeline_depth > 0; "
                    "use schedule='pipelined' (or leave schedule unset) for a "
                    "staleness window"
                )
        if self.devices < 1:
            raise ValueError(f"devices must be >= 1, got {self.devices}")
        if self.placement not in PLACEMENTS:
            raise ValueError(
                f"placement must be one of {PLACEMENTS}, got {self.placement!r}"
            )
        if self.placement == "disaggregated" and self.devices < 2:
            raise ValueError(
                "disaggregated placement dedicates one device to the update "
                "streams, so it needs devices >= 2"
            )
        if isinstance(self.assignment, str) and self.assignment not in ASSIGNMENTS:
            raise ValueError(
                f"assignment must be one of {ASSIGNMENTS} or a "
                f"{{benchmark: device}} mapping, got {self.assignment!r}"
            )
        if self.precision is not None and self.precision not in PRECISION_POLICIES:
            raise ValueError(
                f"precision must be one of {sorted(PRECISION_POLICIES)}, "
                f"got {self.precision!r}"
            )
        if self.precision_spec is not None and self.precision is None:
            raise ValueError("precision_spec requires precision to be set")
        if self.fleet is not None:
            if self.num_workers != 1:
                raise ValueError(
                    "fleet and num_workers are alternative fleet sizings: the "
                    "spec's per-benchmark counts determine the workers, so "
                    "num_workers must stay at its default of 1"
                )
            # Surface grammar / unknown-benchmark errors at configuration
            # time rather than deep inside fleet construction.
            parse_fleet_spec(self.fleet)


@dataclass
class TrainingResult:
    """Everything a Fig. 7 experiment needs from one training run."""

    curve: LearningCurve
    episode_returns: List[float] = field(default_factory=list)
    qat_event: Optional[QATEvent] = None
    total_timesteps: int = 0
    total_updates: int = 0
    num_envs: int = 1
    num_workers: int = 1
    pipeline_depth: int = 0
    replay_buffer: Optional[ReplayBuffer] = None

    def summary(self) -> dict:
        info = self.curve.summary()
        info.update(
            {
                "episodes": len(self.episode_returns),
                "total_timesteps": self.total_timesteps,
                "total_updates": self.total_updates,
                "num_envs": self.num_envs,
                "num_workers": self.num_workers,
                "pipeline_depth": self.pipeline_depth,
                "quantization_switch_step": (
                    self.qat_event.timestep if self.qat_event else None
                ),
            }
        )
        return info


@dataclass
class FleetTrainingResult:
    """Outcome of one heterogeneous-fleet training run (:func:`train_fleet`).

    ``per_benchmark`` maps each benchmark's display name (spec order) to a
    full :class:`TrainingResult` — its learning curve, episode returns,
    replay buffer, and per-benchmark step/update counts; the aggregate
    fields describe the fleet round structure.  A shared QAT switch fires
    once for the whole fleet and is recorded on every per-benchmark result
    (the numerics object is shared).
    """

    per_benchmark: Dict[str, TrainingResult] = field(default_factory=dict)
    #: Resolved ``(benchmark_key, worker_count, num_envs)`` entries.
    fleet: List[Tuple[str, int, int]] = field(default_factory=list)
    total_timesteps: int = 0
    total_updates: int = 0
    num_envs: int = 1
    num_workers: int = 1
    pipeline_depth: int = 0
    #: Round-scheduling policy the run used (``sequential``/``pipelined``/
    #: ``weighted``).
    schedule: str = "sequential"
    #: Lock-steps each benchmark group ran per round, in spec order (all 1
    #: except under the throughput-weighted policy).
    weights: List[int] = field(default_factory=list)
    #: Accelerators in the device pool the run was priced on (1 = the
    #: single-platform path).
    devices: int = 1
    #: Update-stream placement (``colocated``/``disaggregated``).
    placement: str = "colocated"
    #: Resolved per-benchmark device affinity (empty without a pool).
    assignment: Dict[str, int] = field(default_factory=dict)

    @property
    def benchmarks(self) -> List[str]:
        """Display names of the fleet's benchmarks, in spec order."""
        return list(self.per_benchmark)

    @property
    def qat_event(self) -> Optional[QATEvent]:
        """The shared precision switch, if it fired (same on every result)."""
        for result in self.per_benchmark.values():
            if result.qat_event is not None:
                return result.qat_event
        return None

    def summary(self) -> dict:
        info = {
            "fleet": list(self.fleet),
            "total_timesteps": self.total_timesteps,
            "total_updates": self.total_updates,
            "num_envs": self.num_envs,
            "num_workers": self.num_workers,
            "pipeline_depth": self.pipeline_depth,
            "schedule": self.schedule,
            "weights": list(self.weights),
            "devices": self.devices,
            "placement": self.placement,
            "assignment": dict(self.assignment),
            "quantization_switch_step": (
                self.qat_event.timestep if self.qat_event else None
            ),
        }
        info["per_benchmark"] = {
            name: result.summary() for name, result in self.per_benchmark.items()
        }
        return info


def _resolve_vector_env(
    env: Union[Environment, VectorEnv], config: TrainingConfig
) -> VectorEnv:
    """The vector environment the rollout engine will drive.

    A :class:`VectorEnv` is used as-is.  A scalar environment is wrapped
    unchanged for ``num_envs == 1`` (preserving any custom instance the
    caller configured) and replicated into fresh ``seed + i`` siblings for
    ``num_envs > 1``.
    """
    if isinstance(env, VectorEnv):
        return env
    if config.num_envs == 1:
        return VectorEnv([env])
    return VectorEnv.from_template(env, config.num_envs, seed=config.seed)


@dataclass(frozen=True)
class _FleetGroupSpec:
    """Lightweight group descriptor the assignment policies price.

    Device assignment must be resolved *before* the fleet's workers (and
    their platform hooks) are constructed, so the policies see these spec
    descriptors instead of live :class:`ScheduledGroup` s — same duck shape
    (``key`` / ``num_workers`` / ``num_envs``).
    """

    key: str
    num_workers: int
    num_envs: int


def _resolve_device_pool(config: TrainingConfig, platform) -> bool:
    """Whether the platform hook is a device pool, validated against config.

    The rl layer never imports ``repro.platform``, so a pool is detected
    duck-typed (``collection_devices`` + ``device``).  ``config.devices`` /
    ``config.placement`` must agree with the pool actually passed — a
    config asking for 2 accelerators priced on a single platform (or vice
    versa) would silently report the wrong modelled numbers.
    """
    is_pool = hasattr(platform, "collection_devices") and hasattr(platform, "device")
    if config.devices > 1 and not is_pool:
        raise ValueError(
            "config.devices > 1 prices the run on a multi-accelerator pool; "
            "pass a repro.platform.AcceleratorPool of that size as the "
            "platform hook"
        )
    if is_pool:
        pool_devices = getattr(platform, "num_devices", 1)
        if pool_devices != config.devices:
            raise ValueError(
                f"config.devices={config.devices} does not match the "
                f"{pool_devices}-device pool passed as the platform hook"
            )
        pool_placement = getattr(platform, "placement", "colocated")
        if pool_placement != config.placement:
            raise ValueError(
                f"config.placement={config.placement!r} does not match the "
                f"pool's placement {pool_placement!r}"
            )
    return is_pool


def _resolve_evaluation_env(template: Environment, config: TrainingConfig):
    """Evaluation environment plus whether it is shared with training."""
    try:
        evaluation_env = type(template)()
        evaluation_env.seed(config.seed)
        return evaluation_env, False
    except TypeError:
        return template, True


def _resolve_precision_controller(config: TrainingConfig, agent: DDPGAgent, qat_controller):
    """The precision driver the round scheduler advances each timestep.

    An explicitly passed ``qat_controller`` always wins (``config.precision``
    set alongside it is a configuration conflict).  Otherwise
    ``config.precision`` resolves a registered
    :class:`~repro.rl.precision.PrecisionPolicy` over the agent's numerics,
    which must be dynamic fixed-point — precision policies drive its
    range trackers and quantizers.
    """
    if qat_controller is not None:
        if config.precision is not None:
            raise ValueError(
                "config.precision and an explicit qat_controller are "
                "alternative precision drivers; pass one or the other"
            )
        return qat_controller
    if config.precision is None:
        return None
    numerics = agent.numerics
    if not isinstance(numerics, DynamicFixedPointNumerics):
        raise ValueError(
            f"config.precision={config.precision!r} needs an agent built on "
            "DynamicFixedPointNumerics; got numerics "
            f"{type(numerics).__name__!r}"
        )
    return resolve_precision(config.precision, numerics, config.precision_spec)


def train(
    env: Union[Environment, VectorEnv],
    agent: DDPGAgent,
    config: TrainingConfig,
    *,
    eval_env: Optional[Environment] = None,
    qat_controller: Optional[QATController] = None,
    noise: Optional[NoiseProcess] = None,
    label: Optional[str] = None,
    progress_callback: Optional[Callable[[int, dict], None]] = None,
    platform=None,
    policy=None,
    profiler=None,
) -> TrainingResult:
    """Run the training loop through the vectorized rollout engine.

    Parameters
    ----------
    env:
        Training environment — a scalar :class:`Environment` (wrapped, and
        for ``config.num_envs > 1`` replicated into seeded siblings) or a
        ready-made :class:`VectorEnv`.
    agent:
        The DDPG (or TD3) agent to train in place.
    config:
        Loop configuration, including ``num_envs``.
    eval_env:
        Separate environment for evaluations.  By default a fresh instance
        of the training benchmark is created; when that is impossible the
        first training environment is shared, exactly like the scalar loop.
    qat_controller:
        Optional Algorithm 1 controller (or any
        :class:`~repro.rl.precision.PrecisionPolicy`) switching activation
        precision; ``config.precision`` resolves one by name instead.
    noise:
        Exploration noise process (defaults to Gaussian with the configured
        standard deviation).
    label:
        Learning-curve label (defaults to the agent's numeric regime name).
    progress_callback:
        Optional ``callback(timestep, metrics)`` invoked after each evaluation.
    platform:
        Optional :class:`~repro.platform.FixarPlatform` whose
        ``infer_batch`` prices each batched rollout inference (accumulated on
        the returned engine statistics); also the weighted schedule's cost
        oracle.
    policy:
        Optional explicit :class:`~repro.rl.scheduler.SchedulePolicy`
        overriding the one ``config.schedule`` / ``config.pipeline_depth``
        resolve to.
    profiler:
        Optional :class:`~repro.rl.profiling.StageTimers` accumulator wired
        through every collection engine and the shared replay buffer
        (the CLIs' ``--profile``).  Profiling only brackets the existing
        rollout stages with ``perf_counter`` reads — trajectories stay
        bit-identical.

    With ``num_envs == 1`` (and one worker) this reproduces
    :func:`train_scalar_reference` bit for bit under a fixed seed.  With N
    environments each lock-step collects N transitions with one batched
    inference and then performs one agent update per transition collected
    past warmup, keeping the update-to-data ratio of the scalar loop;
    evaluations fire whenever the global step counter crosses an
    ``evaluation_interval`` boundary, and ``total_timesteps`` rounds up to a
    whole number of rounds (the actual count lands in
    ``result.total_timesteps``).

    With ``config.num_workers > 1`` experience collection runs through an
    :class:`~repro.rl.workers.AsyncCollector` fleet: worker ``w`` owns a
    fresh ``VectorEnv`` of ``num_envs`` siblings of the (scalar) training
    environment seeded ``seed + w * num_envs + i``, acts through its own
    actor replica refreshed every ``config.sync_interval`` steps, and the
    workers are stepped round-robin (the deterministic synchronous mode), so
    the run is reproducible.  Warmup is split evenly across the fleet
    (``ceil(warmup_timesteps / num_workers)`` per worker), and the replicas
    share the learner's numerics object, so a QAT precision switch applies
    to collection immediately.

    With ``config.pipeline_depth > 0`` the loop runs the *pipelined*
    schedule: the fleet collects round ``k+1`` (through ``k+depth``) while
    the learner is still draining round ``k``'s transitions and running its
    updates, so on the modelled platform the two phases overlap
    (:meth:`~repro.platform.FixarPlatform.pipelined_round_seconds` prices a
    round as ``max(collection, update)`` instead of their sum).  The overlap
    is emulated deterministically in one thread, so runs stay reproducible;
    the visible semantic difference from the sequential schedule is bounded
    staleness — collection acts on actor weights up to ``pipeline_depth``
    rounds older than the learner's (broadcasts still honor
    ``sync_interval``), while updates see exactly the same replay data
    availability as the sequential schedule (round ``k``'s transitions are
    drained before round ``k``'s updates sample the buffer) and the
    remaining in-flight rounds are drained at the end of the run.  A
    training environment that would have to double as the evaluation
    environment is rejected under this schedule (the post-evaluation episode
    restarts cannot fire at the right point of the overlapped collection
    timeline) — pass an explicit ``eval_env``.  ``pipeline_depth == 0``
    remains bit-exact with the pre-pipeline loop and is the oracle the
    pipelined regression tests compare against.
    """
    if config.fleet is not None:
        raise ValueError(
            "config.fleet maps workers to multiple benchmarks, which needs "
            "one learner agent and replay buffer per benchmark — call "
            "train_fleet(agents, config) instead of train(env, agent, config)"
        )
    # A device pool drops in at the same hook: the engine's batched
    # inferences shard across the pool's collection devices through the
    # unchanged ``infer_batch`` joint (a 1-device pool is bit-exact with
    # the single platform).
    _resolve_device_pool(config, platform)
    qat_controller = _resolve_precision_controller(config, agent, qat_controller)
    rng = np.random.default_rng(config.seed)
    num_workers = config.num_workers

    if num_workers == 1:
        vec_env = _resolve_vector_env(env, config)
        num_envs = vec_env.num_envs
        evaluation_template = vec_env.envs[0]
    else:
        if isinstance(env, VectorEnv):
            raise ValueError(
                "num_workers > 1 replicates a scalar environment template "
                "into per-worker VectorEnvs; pass the scalar environment "
                "instead of a prebuilt VectorEnv"
            )
        if noise is not None:
            raise ValueError(
                "num_workers > 1 gives every worker an independent noise "
                "process; a single shared noise instance cannot be "
                "partitioned — configure exploration_noise instead"
            )
        num_envs = config.num_envs
        evaluation_template = env

    shares_training_env = False
    if eval_env is not None:
        evaluation_env = eval_env
    else:
        # Prefer a fresh instance of the same benchmark so evaluations do not
        # disturb the training episodes; fall back to sharing when the
        # environment cannot be default-constructed.
        evaluation_env, shares_training_env = _resolve_evaluation_env(
            evaluation_template, config
        )
    if num_workers > 1:
        # The workers step fresh replicas, never the template itself, so even
        # a "shared" template is safe to evaluate on: no in-flight training
        # episode is disturbed and no restart is needed.
        shares_training_env = False
    if policy is None:
        policy = resolve_policy(config, platform)
    if shares_training_env and policy.depth > 0:
        # Sharing the training env with evaluation forces an episode restart
        # after every evaluation, but under the pipelined schedule the fleet
        # has already collected up to ``pipeline_depth`` rounds past the
        # evaluated boundary — those rounds would continue the disturbed
        # episodes, diverging from the sequential schedule in ways beyond the
        # documented weight staleness.  Refuse instead of silently diverging.
        raise ValueError(
            "pipeline_depth > 0 cannot share the training environment with "
            "evaluation (the fleet collects past each evaluation boundary "
            "before the restart fires); pass an explicit eval_env"
        )
    buffer = ReplayBuffer(
        config.buffer_capacity, agent.state_dim, agent.action_dim, seed=config.seed
    )
    curve = LearningCurve(label or agent.numerics.name)
    result = TrainingResult(
        curve=curve,
        num_envs=num_envs,
        num_workers=num_workers,
        pipeline_depth=config.pipeline_depth,
        replay_buffer=buffer,
    )

    if num_workers == 1:
        # The single worker acts through the learner's own agent and noise —
        # the exact PR-1 engine path, which is what keeps this mode bit-exact
        # with train_scalar_reference at num_envs == 1.
        noise = noise or GaussianNoise(
            agent.action_dim, config.exploration_noise, seed=config.seed
        )
        engine = RolloutEngine(
            vec_env,
            agent,
            buffer=None,
            noise=noise,
            warmup_timesteps=config.warmup_timesteps,
            rng=rng,
            platform=platform,
        )
        workers = [CollectorWorker(0, engine, shared_agent=True)]
        source_agent = None  # broadcasts are pointless with a shared agent
    else:
        per_worker_warmup = -(-config.warmup_timesteps // num_workers)
        workers = [
            CollectorWorker.from_agent(
                worker_id,
                agent,
                env,
                num_envs,
                seed=config.seed,
                sigma=config.exploration_noise,
                warmup_timesteps=per_worker_warmup,
                platform=platform,
            )
            for worker_id in range(num_workers)
        ]
        source_agent = agent
    collector = AsyncCollector(
        workers, buffer, source_agent=source_agent, sync_interval=config.sync_interval
    )
    if profiler is not None:
        # One accumulator across the whole fleet: engines attribute the
        # rollout stages, the shared buffer attributes the drain writes.
        buffer.profiler = profiler
        for worker in workers:
            worker.engine.set_profiler(profiler)
    for worker in workers:
        worker.engine.reset()

    # All round/drain/update/evaluate bookkeeping lives in the scheduler
    # subsystem; this wrapper only adapts the single-benchmark result shape.
    group_key = str(getattr(evaluation_template, "name", "train")).lower()
    group = ScheduledGroup(
        key=group_key,
        benchmark=getattr(evaluation_template, "name", group_key),
        collector=collector,
        agent=agent,
        buffer=buffer,
        curve=curve,
        eval_env=evaluation_env,
    )

    on_evaluation = None
    if progress_callback is not None:

        def on_evaluation(evaluated_step: int, metrics: Dict[str, dict]) -> None:
            group_metrics = metrics[group.key]
            progress_callback(
                evaluated_step,
                {
                    "average_return": group_metrics["average_return"],
                    "episodes": group_metrics["episodes"],
                    "activation_bits": agent.numerics.activation_bits,
                },
            )

    scheduler = RoundScheduler(
        [group],
        policy,
        config,
        qat_controller=qat_controller,
        platform=platform,
        on_evaluation=on_evaluation,
        restart_shared_env=shares_training_env,
    )
    outcome = scheduler.run()

    result.qat_event = outcome.qat_event
    result.total_updates = outcome.total_updates
    result.episode_returns = collector.episode_returns
    result.total_timesteps = outcome.total_timesteps
    return result


def train_fleet(
    agents: Mapping[str, DDPGAgent],
    config: TrainingConfig,
    *,
    env_templates: Optional[Mapping[str, Environment]] = None,
    eval_envs: Optional[Mapping[str, Environment]] = None,
    qat_controller: Optional[QATController] = None,
    label: Optional[str] = None,
    progress_callback: Optional[Callable[[int, dict], None]] = None,
    platform=None,
    policy=None,
    profiler=None,
) -> FleetTrainingResult:
    """Train per-benchmark learners over one heterogeneous collector fleet.

    ``config.fleet`` names the fleet (grammar in
    :func:`~repro.rl.workers.parse_fleet_spec`): each spec entry
    ``benchmark:count`` contributes ``count`` workers, each stepping its own
    ``VectorEnv`` of ``config.num_envs`` environments of that benchmark.
    Worker ids are global in spec order, so every worker keeps the
    deterministic ``seed + worker_id * num_envs + i`` environment scheme and
    the ``(seed, worker_id, stream)`` noise/warmup streams of the
    homogeneous collector — a single-benchmark spec ``B:N`` is *bit-exact*
    with ``train(env, agent, config(num_workers=N))`` for ``N >= 2`` (the
    replica path; ``num_workers == 1`` takes the shared-agent fast path,
    which consumes the learner's own noise/warmup streams instead).

    Parameters
    ----------
    agents:
        One learner agent per fleet benchmark (names matched
        case-insensitively, no extras).  Each agent must match the
        benchmark's registered ``(state_dim, action_dim)``, and all agents
        must share **one numerics object** so a QAT precision switch applies
        to every benchmark's networks (and collection replicas) at once.
    config:
        Loop configuration; ``config.fleet`` must be set and
        ``config.num_workers`` left at 1.  ``total_timesteps`` rounds up to
        whole fleet rounds of ``num_envs * total_workers`` steps.
    env_templates:
        Optional per-benchmark template environments (workers step fresh
        seeded replicas); benchmarks without one use ``registry.make``.
    eval_envs:
        Optional per-benchmark evaluation environments; by default a fresh
        instance of each benchmark is created, exactly like :func:`train`.
    qat_controller:
        Optional shared Algorithm 1 controller (or any
        :class:`~repro.rl.precision.PrecisionPolicy`; ``config.precision``
        resolves one by name).  It counts fleet-wide environment steps, so
        precision switches land on the same global timestep as an
        equivalent homogeneous run.
    label:
        Learning-curve label prefix; each benchmark's curve is labelled
        ``"<label>/<benchmark>"`` (default: the shared numerics name).
    progress_callback:
        Optional ``callback(timestep, metrics)`` invoked after each
        evaluation boundary with per-benchmark
        ``{"average_return", "episodes"}`` metrics plus the shared
        ``"activation_bits"``.
    platform:
        Optional :class:`~repro.platform.FixarPlatform`.  Because layer
        dimensions differ per benchmark, the platform is re-targeted per
        benchmark (``platform.for_benchmark``) so every worker's batched
        inferences are priced under its own workload — the heterogeneous
        accounting :meth:`~repro.platform.FixarPlatform.infer_fleet`
        aggregates.  Also the throughput-weighted schedule's cost oracle.
        An :class:`~repro.platform.AcceleratorPool` drops in at the same
        hook (``config.devices`` / ``config.placement`` must match it):
        the per-benchmark device affinity is resolved through the
        :class:`~repro.rl.scheduler.DeviceAssignmentPolicy` the
        ``config.assignment`` knob selects, each group's workers price
        their batches on their assigned device, and the resolved affinity
        lands in ``FleetTrainingResult.assignment``.  Devices change only
        the modelled pricing — training numerics are identical at every
        pool size.
    policy:
        Optional explicit :class:`~repro.rl.scheduler.SchedulePolicy`
        overriding the one ``config.schedule`` / ``config.pipeline_depth``
        resolve to (e.g. a :class:`ThroughputWeightedPolicy` with explicit
        weights).
    profiler:
        Optional :class:`~repro.rl.profiling.StageTimers` accumulator wired
        through every group's collection engines and replay buffer — one
        fleet-wide wall-clock breakdown, exactly like :func:`train`.

    The training schedule is the deterministic round schedule of
    :func:`train`, generalized across benchmark groups: each round, groups
    collect one lock-step per worker in spec order, then each group's
    learner runs one update per environment step its workers collected past
    warmup (sampling its own buffer), then evaluations fire at every crossed
    ``evaluation_interval`` boundary — one curve point per benchmark.  With
    ``config.pipeline_depth > 0`` the fleet runs up to that many rounds
    ahead of the learners, exactly like the homogeneous pipelined schedule.
    """
    if config.fleet is None:
        raise ValueError("train_fleet needs config.fleet; for homogeneous runs call train")
    fleet_spec = parse_fleet_spec(config.fleet, default_width=config.num_envs)

    numerics_objects = {id(agent.numerics) for agent in dict(agents).values()}
    if len(numerics_objects) > 1:
        raise ValueError(
            "fleet agents must share one numerics object (a QAT precision "
            "switch has to apply to every benchmark at once) — construct the "
            "agents with the same numerics instance"
        )
    if qat_controller is not None:
        controller_numerics = getattr(qat_controller, "numerics", None)
        if controller_numerics is not None and numerics_objects != {id(controller_numerics)}:
            raise ValueError(
                "qat_controller is bound to a different numerics object than "
                "the fleet's agents; share one instance across both"
            )
    first_agent = next(iter(dict(agents).values()))
    qat_controller = _resolve_precision_controller(config, first_agent, qat_controller)

    total_workers = sum(count for _, count, _width in fleet_spec)
    per_worker_warmup = -(-config.warmup_timesteps // total_workers)
    agents_by_key = {str(name).lower(): agent for name, agent in dict(agents).items()}
    platforms = None
    assignment_by_key: Dict[str, int] = {}
    is_pool = _resolve_device_pool(config, platform)
    if is_pool:
        # Resolve the per-benchmark device affinity once, up front (from
        # the spec descriptors — the workers are not built yet), then bind
        # it onto the pool so the weighted policy's oracle and every
        # fleet_* report price the round actually scheduled.
        assignment_policy = resolve_assignment(config, platform)
        descriptors = [
            _FleetGroupSpec(key, count, width if width else config.num_envs)
            for key, count, width in fleet_spec
        ]
        device_indices = assignment_policy.assign(descriptors, platform)
        assignment_by_key = {
            key: device
            for (key, _count, _width), device in zip(fleet_spec, device_indices)
        }
        platform = platform.with_assignment(assignment_by_key)
        # Each group's workers price their inferences on their *assigned*
        # device, re-targeted to their own layer dimensions.
        platforms = {
            key: platform.device(assignment_by_key[key]).for_benchmark(
                key, hidden_sizes=tuple(agents_by_key[key].config.hidden_sizes)
            )
            for key, _count, _width in fleet_spec
            if key in agents_by_key
        }
    elif platform is not None:
        # Re-target the platform per benchmark: each group's workers price
        # their batched inferences under their own layer dimensions.  Keys
        # missing from the agents mapping are skipped here so that
        # HeteroFleet.from_agents raises its (clearer) coverage error.
        platforms = {
            key: platform.for_benchmark(
                key, hidden_sizes=tuple(agents_by_key[key].config.hidden_sizes)
            )
            for key, _count, _width in fleet_spec
            if key in agents_by_key
        }
    fleet = HeteroFleet.from_agents(
        fleet_spec,
        agents,
        num_envs=config.num_envs,
        buffer_capacity=config.buffer_capacity,
        seed=config.seed,
        sigma=config.exploration_noise,
        warmup_timesteps=per_worker_warmup,
        sync_interval=config.sync_interval,
        env_templates=env_templates,
        platforms=platforms,
    )
    if profiler is not None:
        for fleet_group in fleet.groups:
            fleet_group.buffer.profiler = profiler
            for worker in fleet_group.collector.workers:
                worker.engine.set_profiler(profiler)
    fleet.reset()

    eval_envs_by_key: Dict[str, Environment] = {}
    given_eval = {str(k).lower(): v for k, v in dict(eval_envs or {}).items()}
    templates_by_key = {str(k).lower(): v for k, v in dict(env_templates or {}).items()}
    for group in fleet.groups:
        if group.key in given_eval:
            eval_envs_by_key[group.key] = given_eval[group.key]
        else:
            template = templates_by_key.get(group.key)
            if template is None:
                # Never fall back to a live worker env: if the benchmark's
                # class cannot be default-constructed, _resolve_evaluation_env
                # would *share* the template, and sharing a worker's env would
                # let evaluations step in-flight training episodes.  A fresh
                # registry build is inert — no worker ever steps it — so even
                # the sharing fallback is safe, same as train(num_workers > 1)
                # with a caller-owned template.
                template = make_registered_env(group.key)
            eval_envs_by_key[group.key], _ = _resolve_evaluation_env(template, config)

    base_label = label
    if base_label is None:
        base_label = next(iter(agents_by_key.values())).numerics.name
    curves = {
        group.key: LearningCurve(f"{base_label}/{group.benchmark}")
        for group in fleet.groups
    }

    # The round schedule itself — sequential, pipelined, or throughput
    # weighted — lives in the scheduler subsystem; this wrapper only builds
    # the per-benchmark groups and adapts the result/callback shapes.
    groups = [
        ScheduledGroup(
            key=group.key,
            benchmark=group.benchmark,
            collector=group.collector,
            agent=group.agent,
            buffer=group.buffer,
            curve=curves[group.key],
            eval_env=eval_envs_by_key[group.key],
        )
        for group in fleet.groups
    ]
    display_names = {group.key: group.benchmark for group in fleet.groups}

    on_evaluation = None
    if progress_callback is not None:

        def on_evaluation(evaluated_step: int, metrics: Dict[str, dict]) -> None:
            activation_bits = next(
                iter(agents_by_key.values())
            ).numerics.activation_bits
            progress_callback(
                evaluated_step,
                {
                    "benchmarks": {
                        display_names[key]: key_metrics
                        for key, key_metrics in metrics.items()
                    },
                    "activation_bits": activation_bits,
                },
            )

    if policy is None:
        policy = resolve_policy(config, platform)
    scheduler = RoundScheduler(
        groups,
        policy,
        config,
        qat_controller=qat_controller,
        platform=platform,
        on_evaluation=on_evaluation,
    )
    outcome = scheduler.run()

    result = FleetTrainingResult(
        fleet=list(fleet.spec),
        total_timesteps=outcome.total_timesteps,
        total_updates=outcome.total_updates,
        num_envs=config.num_envs,
        num_workers=total_workers,
        pipeline_depth=config.pipeline_depth,
        schedule=policy.name,
        weights=list(outcome.weights),
        devices=config.devices,
        placement=config.placement,
        assignment=dict(assignment_by_key),
    )
    for group in fleet.groups:
        benchmark_result = TrainingResult(
            curve=curves[group.key],
            episode_returns=list(group.collector.episode_returns),
            qat_event=outcome.qat_event,
            total_timesteps=outcome.steps_by_key[group.key],
            total_updates=outcome.updates_by_key[group.key],
            num_envs=group.num_envs,
            num_workers=group.num_workers,
            pipeline_depth=config.pipeline_depth,
            replay_buffer=group.buffer,
        )
        # Keyed by display name (nice for reports); a factory whose env
        # display name collides with another group's falls back to the
        # unique registry key rather than silently overwriting a result.
        result_key = group.benchmark
        if result_key in result.per_benchmark:
            result_key = group.key
        result.per_benchmark[result_key] = benchmark_result
    return result


def train_scalar_reference(
    env: Environment,
    agent: DDPGAgent,
    config: TrainingConfig,
    *,
    eval_env: Optional[Environment] = None,
    qat_controller: Optional[QATController] = None,
    noise: Optional[NoiseProcess] = None,
    label: Optional[str] = None,
    progress_callback: Optional[Callable[[int, dict], None]] = None,
) -> TrainingResult:
    """The pre-vectorization scalar training loop, preserved verbatim.

    This is the behavioral oracle for the rollout-engine refactor: the
    regression tests assert that :func:`train` with ``num_envs == 1``
    reproduces this loop bit for bit (same learning curve, same episode
    returns, same replay-buffer contents, same final weights).  Production
    code should call :func:`train`.
    """
    rng = np.random.default_rng(config.seed)
    shares_training_env = False
    if eval_env is not None:
        evaluation_env = eval_env
    else:
        evaluation_env, shares_training_env = _resolve_evaluation_env(env, config)
    noise = noise or GaussianNoise(agent.action_dim, config.exploration_noise, seed=config.seed)
    buffer = ReplayBuffer(
        config.buffer_capacity, agent.state_dim, agent.action_dim, seed=config.seed
    )
    curve = LearningCurve(label or agent.numerics.name)
    result = TrainingResult(curve=curve, replay_buffer=buffer)

    observation = env.reset()
    episode_return = 0.0

    for timestep in range(config.total_timesteps):
        qat_event = None
        if qat_controller is not None:
            qat_event = qat_controller.on_timestep(timestep)
            if qat_event is not None:
                result.qat_event = qat_event

        # ----- Action selection ------------------------------------------ #
        if timestep < config.warmup_timesteps:
            action = rng.uniform(-1.0, 1.0, size=agent.action_dim)
        else:
            action = agent.act(observation, noise.sample())

        # ----- Environment interaction (host CPU side) -------------------- #
        next_observation, reward, done, _ = env.step(action)
        buffer.add(observation, action, reward, next_observation, done)
        episode_return += reward
        observation = next_observation

        if done:
            result.episode_returns.append(episode_return)
            episode_return = 0.0
            observation = env.reset()
            noise.reset()

        # ----- Agent update (accelerator side) ----------------------------- #
        if len(buffer) >= config.batch_size and timestep >= config.warmup_timesteps:
            agent.update(buffer.sample(config.batch_size))
            result.total_updates += 1

        # ----- Periodic evaluation ---------------------------------------- #
        if (timestep + 1) % config.evaluation_interval == 0:
            average_return = evaluate_policy(
                evaluation_env, agent, episodes=config.evaluation_episodes
            )
            curve.record(timestep + 1, average_return)
            if shares_training_env:
                # Evaluation consumed the shared environment's episode; start
                # a fresh training episode from a clean state.
                result.episode_returns.append(episode_return)
                episode_return = 0.0
                observation = env.reset()
                noise.reset()
            if progress_callback is not None:
                progress_callback(
                    timestep + 1,
                    {
                        "average_return": average_return,
                        "episodes": len(result.episode_returns),
                        "activation_bits": agent.numerics.activation_bits,
                    },
                )

    # If the run ended between evaluation points, add a final evaluation so
    # short smoke-test runs still produce a non-empty curve.
    if not curve.points:
        curve.record(
            config.total_timesteps,
            evaluate_policy(evaluation_env, agent, episodes=config.evaluation_episodes),
        )

    result.total_timesteps = config.total_timesteps
    return result
