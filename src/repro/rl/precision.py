"""Pluggable per-layer precision policies (the QAT switch, generalized).

FIXAR's Algorithm 1 is *one* precision schedule: train every activation at
32 bits for a delay, then quantize them all to 16 with the captured range.
The related work goes further — per-layer fixed-point configs (Dai et al.,
arXiv:2401.17544), adaptive-precision backprop (Zhang et al.,
arXiv:1911.00361), and the wide post-training sweeps of QuaRL
(arXiv:1910.01055) — so this module makes the precision schedule a
first-class policy seam, symmetric with the round scheduler's
:class:`~repro.rl.scheduler.SchedulePolicy` and
:class:`~repro.rl.scheduler.DeviceAssignmentPolicy`: a small class
hierarchy, a registry, and a resolve function.

A :class:`PrecisionPolicy` drives a
:class:`~repro.nn.numerics.DynamicFixedPointNumerics` object through the
same ``on_timestep`` surface :class:`~repro.rl.qat.QATController` exposes,
so the training loop, the round scheduler, and the async coordinator treat
both interchangeably:

* ``on_timestep(t)`` advances the schedule and returns an event when one or
  more layers switch precision (``None`` otherwise);
* ``switched`` is *terminal* — ``True`` only once no further events are
  possible (the async coordinator stops advancing the schedule then);
* ``broadcast_payload()`` is what the coordinator ships through the worker
  command pipes — a bare quantizer for the global switch, a
  :class:`PrecisionPlan` for per-layer policies;
* ``precision_state()`` is the normalized ``{"default": bits, "layers":
  {name: bits}}`` profile the platform layer prices via
  ``FixarPlatform.with_precision_state`` and the adaptive weighted
  scheduler re-prices rounds with.

The resolved state of any policy is a :class:`PrecisionPlan` — per-layer
bit widths and frozen quantizers keyed by dense-layer name
(``actor_fc0`` ... ``actor_out``, ``critic_fc0`` ... ``critic_out``) —
which forked collection replicas adopt via
:meth:`~repro.nn.numerics.DynamicFixedPointNumerics.adopt_plan`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Type

from ..fixedpoint import AffineQuantizer
from ..nn.numerics import DynamicFixedPointNumerics
from .qat import QATController, QATEvent, QATSchedule

__all__ = [
    "LayerSwitch",
    "PrecisionEvent",
    "PrecisionPlan",
    "PrecisionPolicy",
    "GlobalSwitchPolicy",
    "PerLayerSchedulePolicy",
    "RangeDrivenPolicy",
    "PRECISION_POLICIES",
    "register_precision_policy",
    "resolve_precision",
]


# --------------------------------------------------------------------- #
# Events and plans
# --------------------------------------------------------------------- #
@dataclass(frozen=True)
class LayerSwitch:
    """One layer's precision switch: the frozen quantizer's parameters."""

    layer: str
    num_bits: int
    activation_min: float
    activation_max: float
    delta: float
    zero_point: int


@dataclass(frozen=True)
class PrecisionEvent:
    """One or more layers switching precision at a timestep.

    Exposes ``timestep`` and ``num_bits`` like
    :class:`~repro.rl.qat.QATEvent`, so result summaries and the CLI print
    either event shape without caring which policy produced it.
    """

    timestep: int
    switches: Tuple[LayerSwitch, ...]

    @property
    def num_bits(self) -> int:
        """The smallest bit width this event switched a layer to."""
        return min(switch.num_bits for switch in self.switches)

    @property
    def layers(self) -> Tuple[str, ...]:
        return tuple(switch.layer for switch in self.switches)


@dataclass(frozen=True)
class PrecisionPlan:
    """A policy's resolved precision state, keyed by dense-layer name.

    Picklable (frozen quantizers are plain objects), so the async
    coordinator can ship it through a worker command pipe; forked replicas
    adopt it via ``DynamicFixedPointNumerics.adopt_plan``.  ``weight_bits``
    and ``gradient_bits`` record that FIXAR keeps weights and gradients in
    32-bit fixed point regardless of the activation schedule.
    """

    default_bits: int = 32
    layer_quantizers: Dict[str, AffineQuantizer] = field(default_factory=dict)
    layer_bits: Dict[str, int] = field(default_factory=dict)
    global_quantizer: Optional[AffineQuantizer] = None
    weight_bits: int = 32
    gradient_bits: int = 32

    def activation_bits(self, layer: str) -> int:
        """The activation bit width the plan assigns to one layer."""
        return self.layer_bits.get(layer, self.default_bits)

    def precision_state(self) -> Dict[str, object]:
        """Normalized ``{"default": bits, "layers": {name: bits}}`` profile."""
        return {"default": self.default_bits, "layers": dict(self.layer_bits)}


# --------------------------------------------------------------------- #
# The policy seam
# --------------------------------------------------------------------- #
class PrecisionPolicy:
    """Base precision policy: drives one dynamic numerics object.

    Subclasses implement :meth:`on_timestep`; everything else (plan
    extraction, broadcast payload, normalized state) derives from the
    numerics object's per-layer maps.  Register new policies with
    :func:`register_precision_policy` so ``--precision-policy`` and
    :func:`resolve_precision` can find them (the ``precision-policy-parity``
    lint rule enforces this).
    """

    #: Registry key and the ``--precision-policy`` spelling.
    name = "precision"

    def __init__(self, numerics: DynamicFixedPointNumerics):
        if not isinstance(numerics, DynamicFixedPointNumerics):
            raise TypeError(
                f"{type(self).__name__} requires DynamicFixedPointNumerics, "
                f"got {type(numerics).__name__}"
            )
        self.numerics = numerics
        self._events: List[PrecisionEvent] = []
        self._done = False

    # -- the QATController-shaped surface ------------------------------- #
    @property
    def switched(self) -> bool:
        """Terminal: ``True`` once no further precision events are possible."""
        return self._done

    @property
    def event(self):
        """The most recent event, if any (result-summary compatibility)."""
        return self._events[-1] if self._events else None

    @property
    def events(self) -> Tuple[PrecisionEvent, ...]:
        """Every event the policy has emitted, in order."""
        return tuple(self._events)

    def on_timestep(self, timestep: int):
        """Advance the schedule; returns an event when layers switch."""
        raise NotImplementedError

    def broadcast_payload(self):
        """What the coordinator ships to forked replicas after an event."""
        return self.plan()

    # -- resolved state -------------------------------------------------- #
    def plan(self) -> PrecisionPlan:
        """The numerics' current precision state as a shippable plan."""
        numerics = self.numerics
        return PrecisionPlan(
            default_bits=numerics.activation_bits,
            layer_quantizers=dict(numerics.layer_quantizers),
            layer_bits=dict(numerics.layer_bits),
            global_quantizer=numerics.quantizer if numerics.half_mode else None,
        )

    def precision_state(self) -> Dict[str, object]:
        """Normalized profile for the pricing oracles and the scheduler."""
        return self.numerics.precision_profile()

    def describe(self) -> Dict[str, object]:
        return {"policy": self.name, "precision_state": self.precision_state()}

    # -- construction from a CLI spec ------------------------------------ #
    @classmethod
    def from_spec(
        cls, numerics: DynamicFixedPointNumerics, spec: Optional[str] = None
    ) -> "PrecisionPolicy":
        if spec:
            raise ValueError(f"precision policy {cls.name!r} takes no spec, got {spec!r}")
        return cls(numerics)


#: Registry of shipped precision policies, keyed by policy name.
PRECISION_POLICIES: Dict[str, Type[PrecisionPolicy]] = {}


def register_precision_policy(cls: Type[PrecisionPolicy]) -> Type[PrecisionPolicy]:
    """Class decorator adding a policy to :data:`PRECISION_POLICIES`."""
    if not cls.name or cls.name == PrecisionPolicy.name:
        raise ValueError(f"{cls.__name__} must set a distinct policy name")
    if cls.name in PRECISION_POLICIES:
        raise ValueError(f"duplicate precision policy name {cls.name!r}")
    PRECISION_POLICIES[cls.name] = cls
    return cls


def resolve_precision(
    name: str,
    numerics: DynamicFixedPointNumerics,
    spec: Optional[str] = None,
) -> PrecisionPolicy:
    """A registered policy instance from its name and optional spec string."""
    if name not in PRECISION_POLICIES:
        raise ValueError(
            f"unknown precision policy {name!r}; registered policies are "
            f"{sorted(PRECISION_POLICIES)}"
        )
    return PRECISION_POLICIES[name].from_spec(numerics, spec)


# --------------------------------------------------------------------- #
# Policy 1: the paper's global switch (Algorithm 1, bit-exact)
# --------------------------------------------------------------------- #
@register_precision_policy
class GlobalSwitchPolicy(PrecisionPolicy):
    """Algorithm 1's single global switch, behind the policy seam.

    Delegates to an internal :class:`~repro.rl.qat.QATController`, so every
    timestep decision — the delay test, the postponement while the range
    tracker is uninitialized, the one-shot event — is *the same code path*
    as the pre-refactor controller; the equivalence pin in
    ``tests/test_precision.py`` holds ``==``-exact by construction.
    """

    name = "global-switch"

    def __init__(
        self,
        numerics: DynamicFixedPointNumerics,
        schedule: Optional[QATSchedule] = None,
    ):
        super().__init__(numerics)
        self._controller = QATController(
            numerics, schedule or QATSchedule(num_bits=numerics.num_bits)
        )

    @property
    def schedule(self) -> QATSchedule:
        return self._controller.schedule

    @property
    def switched(self) -> bool:
        return self._controller.switched

    @property
    def event(self) -> Optional[QATEvent]:
        return self._controller.event

    @property
    def events(self) -> Tuple[QATEvent, ...]:
        return (self._controller.event,) if self._controller.event else ()

    def on_timestep(self, timestep: int) -> Optional[QATEvent]:
        return self._controller.on_timestep(timestep)

    def activation_bits_at(self, timestep: int) -> int:
        return self._controller.activation_bits_at(timestep)

    def broadcast_payload(self):
        # Identical pipe payload to the bare controller: the frozen global
        # quantizer, adopted verbatim by every forked replica.
        return self.numerics.quantizer

    def describe(self) -> Dict[str, object]:
        desc = super().describe()
        desc.update(
            {
                "num_bits": self.schedule.num_bits,
                "quantization_delay": self.schedule.quantization_delay,
            }
        )
        return desc

    @classmethod
    def from_spec(
        cls, numerics: DynamicFixedPointNumerics, spec: Optional[str] = None
    ) -> "GlobalSwitchPolicy":
        """Spec grammar: ``[bits][@delay]`` — e.g. ``16@1000``, ``@500``."""
        if not spec:
            return cls(numerics)
        bits_part, _, delay_part = spec.partition("@")
        num_bits = int(bits_part) if bits_part else numerics.num_bits
        delay = int(delay_part) if delay_part else QATSchedule().quantization_delay
        return cls(
            numerics, QATSchedule(num_bits=num_bits, quantization_delay=delay)
        )


# --------------------------------------------------------------------- #
# Policy 2: static per-layer bitwidth table
# --------------------------------------------------------------------- #
@register_precision_policy
class PerLayerSchedulePolicy(PrecisionPolicy):
    """A static per-layer bitwidth table, applied on per-layer delays.

    The table is an ordered sequence of ``(pattern, bits, delay)`` entries:
    ``pattern`` matches a dense-layer name exactly or as a prefix
    (``"actor"`` covers ``actor_fc0``/``actor_fc1``/``actor_out``), ``bits``
    is the activation width the matching layers switch to (32 = keep full
    precision), and ``delay`` is the earliest timestep the switch may fire.
    First matching entry wins; a layer switches once its delay has elapsed
    *and* its own range tracker has observed activations — the per-layer
    analogue of the global controller's postponement rule — so switches are
    deterministic given the seeded rollout streams.
    """

    name = "per-layer"

    def __init__(
        self,
        numerics: DynamicFixedPointNumerics,
        table: Sequence[Tuple[str, int, int]],
    ):
        super().__init__(numerics)
        entries = []
        for pattern, bits, delay in table:
            pattern, bits, delay = str(pattern), int(bits), int(delay)
            if not pattern:
                raise ValueError("per-layer table patterns must be non-empty")
            if bits < 2:
                raise ValueError(f"num_bits must be >= 2, got {bits}")
            if delay < 0:
                raise ValueError(f"delay must be non-negative, got {delay}")
            entries.append((pattern, bits, delay))
        if not entries:
            raise ValueError("per-layer schedule needs at least one table entry")
        self.table: Tuple[Tuple[str, int, int], ...] = tuple(entries)
        self._max_delay = max(delay for _pattern, _bits, delay in entries)

    def _match(self, layer: str) -> Optional[Tuple[int, int]]:
        """(bits, delay) of the first table entry covering a layer."""
        for pattern, bits, delay in self.table:
            if layer == pattern or layer.startswith(pattern):
                return bits, delay
        return None

    def _pending_layers(self) -> List[str]:
        """Observed layers still awaiting a reduced-precision switch."""
        numerics = self.numerics
        full_bits = numerics.full_activation_format.word_length
        pending = []
        for layer in sorted(numerics.layer_trackers):
            if layer in numerics.layer_quantizers:
                continue
            entry = self._match(layer)
            if entry is not None and entry[0] < full_bits:
                pending.append(layer)
        return pending

    def on_timestep(self, timestep: int) -> Optional[PrecisionEvent]:
        if self._done:
            return None
        numerics = self.numerics
        full_bits = numerics.full_activation_format.word_length
        switches = []
        for layer in sorted(numerics.layer_trackers):
            if layer in numerics.layer_quantizers:
                continue
            entry = self._match(layer)
            if entry is None:
                continue
            bits, delay = entry
            if bits >= full_bits or timestep < delay:
                continue
            if not numerics.layer_trackers[layer].initialized:
                continue
            quantizer = numerics.switch_layer_to_half(layer, bits)
            switches.append(
                LayerSwitch(
                    layer=layer,
                    num_bits=bits,
                    activation_min=quantizer.min_value,
                    activation_max=quantizer.max_value,
                    delta=quantizer.delta,
                    zero_point=quantizer.zero_point,
                )
            )
        if (
            timestep >= self._max_delay
            and numerics.layer_trackers
            and not self._pending_layers()
        ):
            self._done = True
        if not switches:
            return None
        event = PrecisionEvent(timestep=timestep, switches=tuple(switches))
        self._events.append(event)
        return event

    def describe(self) -> Dict[str, object]:
        desc = super().describe()
        desc["table"] = [list(entry) for entry in self.table]
        return desc

    @classmethod
    def from_spec(
        cls, numerics: DynamicFixedPointNumerics, spec: Optional[str] = None
    ) -> "PerLayerSchedulePolicy":
        """Spec grammar: ``pattern=bits[@delay],...``.

        ``"actor=16@1000,critic=32"`` switches every actor layer to 16 bits
        at t=1000 and keeps the critic at full precision.
        """
        if not spec:
            raise ValueError(
                "per-layer policy needs a spec: pattern=bits[@delay],..."
            )
        table = []
        for raw in spec.split(","):
            entry = raw.strip()
            if not entry:
                continue
            pattern, separator, rest = entry.partition("=")
            if not separator or not pattern or not rest:
                raise ValueError(
                    f"bad per-layer spec entry {entry!r}; "
                    "expected pattern=bits[@delay]"
                )
            bits_part, _, delay_part = rest.partition("@")
            table.append(
                (pattern.strip(), int(bits_part), int(delay_part) if delay_part else 0)
            )
        return cls(numerics, table)


# --------------------------------------------------------------------- #
# Policy 3: range-statistic-driven switches
# --------------------------------------------------------------------- #
@register_precision_policy
class RangeDrivenPolicy(PrecisionPolicy):
    """Switches each layer once its observed range stops growing.

    At every ``check_interval``-th timestep the policy records each
    unswitched layer's observed span (``max - min``); a layer switches to
    ``num_bits`` after its span has grown by at most ``tolerance``
    (relative) for ``patience`` consecutive checks with at least
    ``min_observations`` samples.  All inputs are the deterministic range
    statistics of the seeded rollout streams, so switch timesteps are
    reproducible — no wall clocks, no global RNG.
    """

    name = "range-driven"

    def __init__(
        self,
        numerics: DynamicFixedPointNumerics,
        *,
        num_bits: Optional[int] = None,
        check_interval: int = 1_000,
        patience: int = 2,
        tolerance: float = 0.05,
        min_observations: int = 1,
    ):
        super().__init__(numerics)
        if check_interval <= 0:
            raise ValueError(f"check_interval must be positive, got {check_interval}")
        if patience < 1:
            raise ValueError(f"patience must be >= 1, got {patience}")
        if tolerance < 0:
            raise ValueError(f"tolerance must be non-negative, got {tolerance}")
        if min_observations < 1:
            raise ValueError(
                f"min_observations must be >= 1, got {min_observations}"
            )
        self.num_bits = int(num_bits) if num_bits is not None else numerics.num_bits
        if self.num_bits < 2:
            raise ValueError(f"num_bits must be >= 2, got {self.num_bits}")
        self.check_interval = int(check_interval)
        self.patience = int(patience)
        self.tolerance = float(tolerance)
        self.min_observations = int(min_observations)
        self._spans: Dict[str, float] = {}
        self._stable_checks: Dict[str, int] = {}

    def on_timestep(self, timestep: int) -> Optional[PrecisionEvent]:
        if self._done:
            return None
        if timestep <= 0 or timestep % self.check_interval != 0:
            return None
        numerics = self.numerics
        switches = []
        for layer in sorted(numerics.layer_trackers):
            if layer in numerics.layer_quantizers:
                continue
            tracker = numerics.layer_trackers[layer]
            if not tracker.initialized or tracker.count < self.min_observations:
                continue
            span = float(tracker.max_value - tracker.min_value)
            previous = self._spans.get(layer)
            if previous is not None and previous > 0.0 and (
                span - previous
            ) <= self.tolerance * previous:
                self._stable_checks[layer] = self._stable_checks.get(layer, 0) + 1
            else:
                self._stable_checks[layer] = 0
            self._spans[layer] = span
            if self._stable_checks[layer] >= self.patience:
                quantizer = numerics.switch_layer_to_half(layer, self.num_bits)
                switches.append(
                    LayerSwitch(
                        layer=layer,
                        num_bits=self.num_bits,
                        activation_min=quantizer.min_value,
                        activation_max=quantizer.max_value,
                        delta=quantizer.delta,
                        zero_point=quantizer.zero_point,
                    )
                )
        if numerics.layer_trackers and all(
            layer in numerics.layer_quantizers for layer in numerics.layer_trackers
        ):
            self._done = True
        if not switches:
            return None
        event = PrecisionEvent(timestep=timestep, switches=tuple(switches))
        self._events.append(event)
        return event

    def describe(self) -> Dict[str, object]:
        desc = super().describe()
        desc.update(
            {
                "num_bits": self.num_bits,
                "check_interval": self.check_interval,
                "patience": self.patience,
                "tolerance": self.tolerance,
            }
        )
        return desc

    @classmethod
    def from_spec(
        cls, numerics: DynamicFixedPointNumerics, spec: Optional[str] = None
    ) -> "RangeDrivenPolicy":
        """Spec grammar: ``key=value,...`` over ``bits``/``interval``/
        ``patience``/``tolerance``/``min-observations``."""
        kwargs: Dict[str, object] = {}
        mapping = {
            "bits": ("num_bits", int),
            "interval": ("check_interval", int),
            "patience": ("patience", int),
            "tolerance": ("tolerance", float),
            "min-observations": ("min_observations", int),
        }
        for raw in (spec or "").split(","):
            entry = raw.strip()
            if not entry:
                continue
            key, separator, value = entry.partition("=")
            key = key.strip()
            if not separator or key not in mapping:
                raise ValueError(
                    f"bad range-driven spec entry {entry!r}; known keys are "
                    f"{sorted(mapping)}"
                )
            attribute, cast = mapping[key]
            kwargs[attribute] = cast(value.strip())
        return cls(numerics, **kwargs)
