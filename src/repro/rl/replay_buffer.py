"""Experience replay buffer.

The host CPU stores every transition (state, action, reward, next state,
done) and samples a random batch of ``B`` transitions to send to the FPGA at
each timestep.  This module is that storage: a flat, pre-allocated circular
buffer with uniform sampling.

The buffer is the single shared sink of the multi-worker collection
subsystem: an :class:`~repro.rl.workers.AsyncCollector` drains worker
transition batches into it via :meth:`ReplayBuffer.add_batch` while the
learner concurrently calls :meth:`ReplayBuffer.sample`, so every mutating or
reading method holds an internal lock — interleaved ``add_batch``/``sample``
calls always observe whole transitions, never half-written rows.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from time import perf_counter
from typing import Optional

import numpy as np

__all__ = ["TransitionBatch", "ReplayBuffer"]


@dataclass(frozen=True)
class TransitionBatch:
    """A batch of transitions, one row per transition."""

    states: np.ndarray
    actions: np.ndarray
    rewards: np.ndarray
    next_states: np.ndarray
    dones: np.ndarray

    def __len__(self) -> int:
        return self.states.shape[0]

    @property
    def nbytes(self) -> int:
        """Raw payload size of the batch (what crosses PCIe), in bytes."""
        return int(
            self.states.nbytes
            + self.actions.nbytes
            + self.rewards.nbytes
            + self.next_states.nbytes
            + self.dones.nbytes
        )


class ReplayBuffer:
    """A fixed-capacity circular replay buffer with uniform sampling."""

    def __init__(
        self,
        capacity: int,
        state_dim: int,
        action_dim: int,
        seed: Optional[int] = None,
    ):
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        if state_dim <= 0 or action_dim <= 0:
            raise ValueError("state_dim and action_dim must be positive")
        self.capacity = capacity
        self.state_dim = state_dim
        self.action_dim = action_dim
        self._states = np.zeros((capacity, state_dim), dtype=np.float64)
        self._actions = np.zeros((capacity, action_dim), dtype=np.float64)
        self._rewards = np.zeros((capacity, 1), dtype=np.float64)
        self._next_states = np.zeros((capacity, state_dim), dtype=np.float64)
        self._dones = np.zeros((capacity, 1), dtype=np.float64)
        self._rng = np.random.default_rng(seed)
        self._next_index = 0
        self._size = 0
        self._lock = threading.RLock()
        #: Optional :class:`~repro.rl.profiling.StageTimers` crediting the
        #: ``buffer-write`` stage; attached by ``RolloutEngine.set_profiler``.
        self.profiler = None

    def __len__(self) -> int:
        with self._lock:
            return self._size

    @property
    def full(self) -> bool:
        """Whether the buffer has wrapped around at least once."""
        with self._lock:
            return self._size == self.capacity

    def add(
        self,
        state: np.ndarray,
        action: np.ndarray,
        reward: float,
        next_state: np.ndarray,
        done: bool,
    ) -> None:
        """Append one transition, overwriting the oldest when full."""
        with self._lock:
            index = self._next_index
            self._states[index] = np.asarray(state, dtype=np.float64).ravel()
            self._actions[index] = np.asarray(action, dtype=np.float64).ravel()
            self._rewards[index, 0] = float(reward)
            self._next_states[index] = np.asarray(next_state, dtype=np.float64).ravel()
            self._dones[index, 0] = 1.0 if done else 0.0
            self._next_index = (index + 1) % self.capacity
            self._size = min(self._size + 1, self.capacity)

    def add_batch(
        self,
        states: np.ndarray,
        actions: np.ndarray,
        rewards: np.ndarray,
        next_states: np.ndarray,
        dones: np.ndarray,
    ) -> None:
        """Append N transitions at once with a vectorized circular write.

        Equivalent to N sequential :meth:`add` calls (including overwrite
        order when wrapping around the end of the buffer), but performed with
        one fancy-indexed write per array.  Inputs are validated the same way
        ``add`` coerces them: everything becomes ``float64``, states and
        actions must be ``(n, state_dim)`` / ``(n, action_dim)``, rewards and
        dones must flatten to ``n`` scalars.
        """
        states = np.asarray(states, dtype=np.float64)
        actions = np.asarray(actions, dtype=np.float64)
        next_states = np.asarray(next_states, dtype=np.float64)
        rewards = np.asarray(rewards, dtype=np.float64).reshape(-1)
        dones = np.asarray(dones, dtype=np.float64).reshape(-1)
        if states.ndim != 2 or states.shape[1] != self.state_dim:
            raise ValueError(
                f"states must have shape (n, {self.state_dim}), got {states.shape}"
            )
        n = states.shape[0]
        if actions.shape != (n, self.action_dim):
            raise ValueError(
                f"actions must have shape ({n}, {self.action_dim}), got {actions.shape}"
            )
        if next_states.shape != (n, self.state_dim):
            raise ValueError(
                f"next_states must have shape ({n}, {self.state_dim}), "
                f"got {next_states.shape}"
            )
        if rewards.shape != (n,) or dones.shape != (n,):
            raise ValueError(
                f"rewards and dones must each hold {n} scalars, "
                f"got {rewards.shape} and {dones.shape}"
            )
        if n == 0:
            return
        # When more rows arrive than the buffer holds, only the trailing
        # ``capacity`` rows survive a sequential add; drop the rest up front
        # so the fancy-indexed write never assigns one slot twice (numpy
        # leaves the winner of duplicate indices unspecified).
        offset = 0
        if n > self.capacity:
            offset = n - self.capacity
            states = states[offset:]
            actions = actions[offset:]
            rewards = rewards[offset:]
            next_states = next_states[offset:]
            dones = dones[offset:]
        prof = self.profiler
        if prof is not None:
            start = perf_counter()
        with self._lock:
            indices = (self._next_index + offset + np.arange(n - offset)) % self.capacity
            self._states[indices] = states
            self._actions[indices] = actions
            self._rewards[indices, 0] = rewards
            self._next_states[indices] = next_states
            self._dones[indices, 0] = (dones != 0.0).astype(np.float64)
            self._next_index = (self._next_index + n) % self.capacity
            self._size = min(self._size + n, self.capacity)
        if prof is not None:
            prof.add("buffer-write", perf_counter() - start)

    # repro-lint: hot
    def add_batch_trusted(
        self,
        states: np.ndarray,
        actions: np.ndarray,
        rewards: np.ndarray,
        next_states: np.ndarray,
        dones: np.ndarray,
    ) -> None:
        """:meth:`add_batch` minus re-validation, for engine-internal arrays.

        The rollout engine hands this method arrays whose shapes and dtypes
        it already guarantees every lock-step (float64 states/rewards, a
        float actions batch, a bool dones mask); re-running ``asarray`` and
        the shape checks on them is pure per-step overhead.  A cheap
        invariant probe guards the fast path — anything unexpected (wrong
        shape/dtype, ``n > capacity``) falls back to the validated
        :meth:`add_batch`, so the two are interchangeable writes: same
        slots, same overwrite order, bit-identical contents
        (``tests/test_profiling.py`` pins the equivalence, including
        wrap-around).  The circular write is two slice assignments instead
        of a fancy-indexed scatter — no per-step index allocation.
        """
        capacity = self.capacity
        if (
            not isinstance(states, np.ndarray)
            or states.ndim != 2
            or not 0 < states.shape[0] <= capacity
        ):
            self.add_batch(states, actions, rewards, next_states, dones)
            return
        n = states.shape[0]
        if (
            states.shape[1] != self.state_dim
            or getattr(actions, "shape", None) != (n, self.action_dim)
            or getattr(next_states, "shape", None) != (n, self.state_dim)
            or getattr(rewards, "shape", None) != (n,)
            or getattr(dones, "shape", None) != (n,)
            or states.dtype != np.float64
            or next_states.dtype != np.float64
            or rewards.dtype != np.float64
            or actions.dtype.kind != "f"
            or dones.dtype != np.bool_
        ):
            self.add_batch(states, actions, rewards, next_states, dones)
            return
        prof = self.profiler
        if prof is not None:
            start_time = perf_counter()
        with self._lock:
            start = self._next_index
            end = start + n
            if end <= capacity:
                self._states[start:end] = states
                self._actions[start:end] = actions
                self._rewards[start:end, 0] = rewards
                self._next_states[start:end] = next_states
                self._dones[start:end, 0] = dones
                self._next_index = 0 if end == capacity else end
            else:
                split = capacity - start
                wrap = end - capacity
                self._states[start:] = states[:split]
                self._states[:wrap] = states[split:]
                self._actions[start:] = actions[:split]
                self._actions[:wrap] = actions[split:]
                self._rewards[start:, 0] = rewards[:split]
                self._rewards[:wrap, 0] = rewards[split:]
                self._next_states[start:] = next_states[:split]
                self._next_states[:wrap] = next_states[split:]
                self._dones[start:, 0] = dones[:split]
                self._dones[:wrap, 0] = dones[split:]
                self._next_index = wrap
            size = self._size + n
            self._size = capacity if size > capacity else size
        if prof is not None:
            prof.add("buffer-write", perf_counter() - start_time)

    def sample(self, batch_size: int) -> TransitionBatch:
        """Sample a uniform random batch of transitions (with replacement)."""
        if batch_size <= 0:
            raise ValueError(f"batch_size must be positive, got {batch_size}")
        with self._lock:
            if self._size == 0:
                raise RuntimeError("cannot sample from an empty replay buffer")
            indices = self._rng.integers(0, self._size, size=batch_size)
            return TransitionBatch(
                states=self._states[indices].copy(),
                actions=self._actions[indices].copy(),
                rewards=self._rewards[indices].copy(),
                next_states=self._next_states[indices].copy(),
                dones=self._dones[indices].copy(),
            )

    def clear(self) -> None:
        """Drop all stored transitions."""
        with self._lock:
            self._next_index = 0
            self._size = 0
