"""Exploration noise processes.

FIXAR's accelerator injects pseudo-random noise into the actor's inference
output (through an on-chip PRNG) to drive action exploration.  The software
model provides the two standard DDPG noise processes — uncorrelated Gaussian
noise and the temporally correlated Ornstein–Uhlenbeck process — plus a
decayed variant for annealing studies.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

__all__ = ["NoiseProcess", "GaussianNoise", "OrnsteinUhlenbeckNoise", "DecayedNoise"]


class NoiseProcess:
    """Base class for exploration noise processes."""

    def __init__(self, action_dim: int, seed: Optional[int] = None):
        if action_dim <= 0:
            raise ValueError(f"action_dim must be positive, got {action_dim}")
        self.action_dim = action_dim
        self._rng = np.random.default_rng(seed)

    def sample(self) -> np.ndarray:
        """Draw one noise vector."""
        raise NotImplementedError

    def sample_batch(self, num_samples: int) -> np.ndarray:
        """Draw noise for N lock-stepped environments, shape ``(N, dim)``.

        The default stacks ``num_samples`` sequential :meth:`sample` calls,
        which preserves each process's temporal semantics and consumes the
        RNG stream exactly like ``sample`` does when ``num_samples == 1``
        (the rollout engine's bit-compatibility contract).  Uncorrelated
        processes override this with a single vectorized draw.
        """
        if num_samples <= 0:
            raise ValueError(f"num_samples must be positive, got {num_samples}")
        return np.stack([self.sample() for _ in range(num_samples)])

    def reset(self) -> None:
        """Reset any internal state (called at episode boundaries)."""

    def reset_envs(self, indices) -> None:
        """Reset state for the given lock-stepped environments (batch mode).

        Called by the rollout engine with the indices of the environments
        whose episodes just ended, so a process with per-environment state
        restarts only those trajectories.  Processes without per-environment
        state defer to :meth:`reset`.
        """
        self.reset()

    def __call__(self) -> np.ndarray:
        return self.sample()


class GaussianNoise(NoiseProcess):
    """Uncorrelated Gaussian exploration noise ``N(0, sigma^2)``."""

    def __init__(self, action_dim: int, sigma: float = 0.1, seed: Optional[int] = None):
        super().__init__(action_dim, seed)
        if sigma < 0.0:
            raise ValueError(f"sigma must be non-negative, got {sigma}")
        self.sigma = sigma

    def sample(self) -> np.ndarray:
        return self._rng.normal(0.0, self.sigma, size=self.action_dim)

    def sample_batch(self, num_samples: int) -> np.ndarray:
        if num_samples <= 0:
            raise ValueError(f"num_samples must be positive, got {num_samples}")
        return self._rng.normal(0.0, self.sigma, size=(num_samples, self.action_dim))


class OrnsteinUhlenbeckNoise(NoiseProcess):
    """Temporally correlated OU noise, the classic DDPG exploration process.

    In batch mode (``sample_batch`` with ``num_samples > 1``) the process
    keeps one OU state *per environment*: each lock-stepped environment sees
    its own temporally correlated trajectory, advanced once per lock-step.
    The previous default (inherited sequential stacking) advanced one shared
    state N times per lock-step, which handed temporally *consecutive* noise
    values to parallel environments — no single environment observed a
    correlated trajectory.  ``sample_batch(1)`` delegates to :meth:`sample`,
    so the single-environment RNG stream stays bit-compatible with the
    scalar loop.
    """

    def __init__(
        self,
        action_dim: int,
        mu: float = 0.0,
        theta: float = 0.15,
        sigma: float = 0.2,
        dt: float = 1e-2,
        seed: Optional[int] = None,
    ):
        super().__init__(action_dim, seed)
        if sigma < 0.0 or theta < 0.0 or dt <= 0.0:
            raise ValueError("sigma/theta must be non-negative and dt positive")
        self.mu = mu
        self.theta = theta
        self.sigma = sigma
        self.dt = dt
        self._state = np.full(action_dim, mu, dtype=np.float64)
        self._batch_state: Optional[np.ndarray] = None

    def sample(self) -> np.ndarray:
        drift = self.theta * (self.mu - self._state) * self.dt
        diffusion = self.sigma * np.sqrt(self.dt) * self._rng.standard_normal(self.action_dim)
        self._state = self._state + drift + diffusion
        return self._state.copy()

    def sample_batch(self, num_samples: int) -> np.ndarray:
        if num_samples <= 0:
            raise ValueError(f"num_samples must be positive, got {num_samples}")
        if num_samples == 1:
            # The scalar path: same state, same RNG consumption as sample().
            return self.sample()[None, :]
        if self._batch_state is None or self._batch_state.shape[0] != num_samples:
            # First batched draw (or a lock-step width change): every
            # environment's process starts fresh at the mean.
            self._batch_state = np.full(
                (num_samples, self.action_dim), self.mu, dtype=np.float64
            )
        drift = self.theta * (self.mu - self._batch_state) * self.dt
        diffusion = self.sigma * np.sqrt(self.dt) * self._rng.standard_normal(
            (num_samples, self.action_dim)
        )
        self._batch_state = self._batch_state + drift + diffusion
        return self._batch_state.copy()

    def reset(self) -> None:
        self._state = np.full(self.action_dim, self.mu, dtype=np.float64)
        self._batch_state = None

    def reset_envs(self, indices) -> None:
        """Restart only the given environments' OU trajectories at the mean.

        The other environments keep their accumulated state — a full
        :meth:`reset` here would destroy every in-flight trajectory whenever
        any single lock-stepped episode ended.
        """
        if self._batch_state is None:
            self.reset()
            return
        self._batch_state[np.asarray(indices, dtype=int)] = self.mu


class DecayedNoise(NoiseProcess):
    """Wraps another process and scales its output down over time."""

    def __init__(
        self,
        base: NoiseProcess,
        decay: float = 0.999,
        min_scale: float = 0.05,
    ):
        super().__init__(base.action_dim)
        if not 0.0 < decay <= 1.0:
            raise ValueError(f"decay must lie in (0, 1], got {decay}")
        if not 0.0 <= min_scale <= 1.0:
            raise ValueError(f"min_scale must lie in [0, 1], got {min_scale}")
        self.base = base
        self.decay = decay
        self.min_scale = min_scale
        self._scale = 1.0

    def sample(self) -> np.ndarray:
        noise = self.base.sample() * self._scale
        self._scale = max(self.min_scale, self._scale * self.decay)
        return noise

    def reset(self) -> None:
        self.base.reset()

    @property
    def scale(self) -> float:
        """Current noise scale factor."""
        return self._scale
