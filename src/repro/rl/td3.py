"""Twin Delayed DDPG (TD3) — the DDPG variant the paper cites.

The paper notes that DDPG "and its variants" (D4PG, TD3) are the strongest
actor-critic algorithms for continuous control.  TD3 (Fujimoto et al., 2018)
addresses DDPG's Q-value over-estimation with three changes:

* **twin critics** — two independent critics; the TD target uses the minimum
  of their target estimates;
* **target policy smoothing** — clipped Gaussian noise added to the target
  action before it is evaluated;
* **delayed policy updates** — the actor and the target networks are updated
  only every ``policy_delay`` critic updates.

The accelerator runs TD3 with the same dataflow as DDPG (one extra critic
network doubles the critic's share of the weight memory), so this agent is a
drop-in replacement for :class:`~repro.rl.ddpg.DDPGAgent` in the training
loop and the platform models.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence

import numpy as np

from ..nn import (
    Adam,
    MLP,
    Numerics,
    build_actor,
    build_critic,
    mse_loss,
    policy_gradient_loss,
)
from .ddpg import UpdateMetrics, batched_policy_actions
from .replay_buffer import TransitionBatch

__all__ = ["TD3Config", "TD3Agent"]


@dataclass(frozen=True)
class TD3Config:
    """TD3 hyper-parameters (Fujimoto et al. defaults, paper network sizes)."""

    gamma: float = 0.99
    tau: float = 0.005
    actor_learning_rate: float = 1e-4
    critic_learning_rate: float = 1e-4
    hidden_sizes: Sequence[int] = (400, 300)
    #: Std-dev of the target policy smoothing noise.
    target_noise: float = 0.2
    #: Clipping bound of the smoothing noise.
    noise_clip: float = 0.5
    #: Critic updates per actor / target update.
    policy_delay: int = 2

    def __post_init__(self) -> None:
        if not 0.0 < self.gamma <= 1.0:
            raise ValueError(f"gamma must lie in (0, 1], got {self.gamma}")
        if not 0.0 < self.tau <= 1.0:
            raise ValueError(f"tau must lie in (0, 1], got {self.tau}")
        if self.actor_learning_rate <= 0 or self.critic_learning_rate <= 0:
            raise ValueError("learning rates must be positive")
        if self.target_noise < 0 or self.noise_clip < 0:
            raise ValueError("noise parameters must be non-negative")
        if self.policy_delay < 1:
            raise ValueError(f"policy_delay must be >= 1, got {self.policy_delay}")
        if len(self.hidden_sizes) == 0:
            raise ValueError("hidden_sizes must not be empty")


class TD3Agent:
    """TD3 with the same explicit FP/BP/WU structure as the DDPG agent."""

    def __init__(
        self,
        state_dim: int,
        action_dim: int,
        config: Optional[TD3Config] = None,
        numerics: Optional[Numerics] = None,
        rng: Optional[np.random.Generator] = None,
    ):
        if state_dim <= 0 or action_dim <= 0:
            raise ValueError("state_dim and action_dim must be positive")
        self.state_dim = state_dim
        self.action_dim = action_dim
        self.config = config or TD3Config()
        self.numerics = numerics or Numerics()
        self._rng = rng or np.random.default_rng()
        hidden = tuple(self.config.hidden_sizes)

        self.actor: MLP = build_actor(state_dim, action_dim, hidden, rng=self._rng, numerics=self.numerics)
        self.critic_1: MLP = build_critic(state_dim, action_dim, hidden, rng=self._rng, numerics=self.numerics)
        self.critic_2: MLP = build_critic(state_dim, action_dim, hidden, rng=self._rng, numerics=self.numerics)
        self.target_actor: MLP = build_actor(state_dim, action_dim, hidden, rng=self._rng, numerics=self.numerics)
        self.target_critic_1: MLP = build_critic(state_dim, action_dim, hidden, rng=self._rng, numerics=self.numerics)
        self.target_critic_2: MLP = build_critic(state_dim, action_dim, hidden, rng=self._rng, numerics=self.numerics)
        self.target_actor.copy_from(self.actor)
        self.target_critic_1.copy_from(self.critic_1)
        self.target_critic_2.copy_from(self.critic_2)

        project = self.numerics.project_weight
        self.actor_optimizer = Adam(self.actor.parameters(), self.config.actor_learning_rate, project=project)
        self.critic_1_optimizer = Adam(self.critic_1.parameters(), self.config.critic_learning_rate, project=project)
        self.critic_2_optimizer = Adam(self.critic_2.parameters(), self.config.critic_learning_rate, project=project)
        self.update_count = 0

    # ------------------------------------------------------------------ #
    # Acting (same interface as DDPGAgent)
    # ------------------------------------------------------------------ #
    def act(self, state: np.ndarray, noise: Optional[np.ndarray] = None) -> np.ndarray:
        state = np.asarray(state, dtype=np.float64).reshape(1, -1)
        action = self.actor.forward(state)[0]
        if noise is not None:
            action = action + np.asarray(noise, dtype=np.float64).ravel()
        return np.clip(action, -1.0, 1.0)

    def act_batch(self, states: np.ndarray, noise: Optional[np.ndarray] = None) -> np.ndarray:
        return batched_policy_actions(self.actor, states, noise)

    def q_value(self, states: np.ndarray, actions: np.ndarray) -> np.ndarray:
        """Q-estimate of the first critic (TD3's convention for the actor)."""
        states = np.atleast_2d(np.asarray(states, dtype=np.float64))
        actions = np.atleast_2d(np.asarray(actions, dtype=np.float64))
        return self.critic_1.forward(np.concatenate([states, actions], axis=1))

    # ------------------------------------------------------------------ #
    # Learning
    # ------------------------------------------------------------------ #
    def update(self, batch: TransitionBatch) -> UpdateMetrics:
        """One TD3 update: both critics every call, actor every ``policy_delay``."""
        config = self.config

        # Target action with clipped smoothing noise.
        next_actions = self.target_actor.forward(batch.next_states)
        smoothing = np.clip(
            self._rng.normal(scale=config.target_noise, size=next_actions.shape),
            -config.noise_clip,
            config.noise_clip,
        )
        next_actions = np.clip(next_actions + smoothing, -1.0, 1.0)

        target_inputs = np.concatenate([batch.next_states, next_actions], axis=1)
        target_q = np.minimum(
            self.target_critic_1.forward(target_inputs),
            self.target_critic_2.forward(target_inputs),
        )
        td_target = batch.rewards + config.gamma * (1.0 - batch.dones) * target_q

        # Both critics regress to the shared clipped double-Q target.
        critic_inputs = np.concatenate([batch.states, batch.actions], axis=1)
        critic_losses = []
        q_values = None
        for critic, optimizer in (
            (self.critic_1, self.critic_1_optimizer),
            (self.critic_2, self.critic_2_optimizer),
        ):
            critic.zero_grad()
            predictions = critic.forward(critic_inputs)
            loss, grad = mse_loss(predictions, td_target)
            critic.backward(grad)
            optimizer.step(critic.gradients())
            critic_losses.append(loss)
            if q_values is None:
                q_values = predictions

        # Delayed actor and target updates.
        actor_loss = float("nan")
        if self.update_count % config.policy_delay == 0:
            self.actor.zero_grad()
            self.critic_1.zero_grad()
            predicted_actions = self.actor.forward(batch.states)
            policy_inputs = np.concatenate([batch.states, predicted_actions], axis=1)
            policy_q = self.critic_1.forward(policy_inputs)
            actor_loss, q_grad = policy_gradient_loss(policy_q)
            input_grad = self.critic_1.backward(q_grad)
            self.actor.backward(input_grad[:, self.state_dim:])
            self.actor_optimizer.step(self.actor.gradients())

            self.target_actor.soft_update_from(self.actor, config.tau)
            self.target_critic_1.soft_update_from(self.critic_1, config.tau)
            self.target_critic_2.soft_update_from(self.critic_2, config.tau)

        self.update_count += 1
        return UpdateMetrics(
            critic_loss=float(np.mean(critic_losses)),
            actor_loss=float(actor_loss),
            mean_q=float(np.mean(q_values)),
            mean_target_q=float(np.mean(td_target)),
            extras={"critic_1_loss": critic_losses[0], "critic_2_loss": critic_losses[1]},
        )

    # ------------------------------------------------------------------ #
    # Model accounting
    # ------------------------------------------------------------------ #
    def network_shapes(self) -> Dict[str, list]:
        return {
            "actor": self.actor.layer_shapes,
            "critic": self.critic_1.layer_shapes,
            "critic_2": self.critic_2.layer_shapes,
        }

    def parameter_count(self) -> int:
        return (
            self.actor.parameter_count
            + self.critic_1.parameter_count
            + self.critic_2.parameter_count
        )

    def model_size_bytes(self, bits_per_weight: int = 32) -> int:
        return self.parameter_count() * bits_per_weight // 8
