"""Quantization-aware training for deep reinforcement learning (Algorithm 1).

The paper's QAT algorithm trains the DDPG networks with 32-bit fixed-point
activations while monitoring their dynamic range; after ``quantization_delay``
timesteps the activations are down-scaled to ``num_bits`` (16) using the
captured range, and training continues at the reduced precision.  Weights and
gradients stay in 32-bit fixed point for the whole run.

:class:`QATController` owns the schedule and flips the agent's
:class:`~repro.nn.numerics.DynamicFixedPointNumerics` policy at the right
timestep; the generic training loop in :mod:`repro.rl.training` calls it once
per environment step.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..fixedpoint import AffineQuantizer
from ..nn.numerics import DynamicFixedPointNumerics

__all__ = ["QATSchedule", "QATController", "QATEvent"]


@dataclass(frozen=True)
class QATSchedule:
    """Algorithm 1's two knobs: quantization bit width ``n`` and delay ``d``."""

    #: Quantization bit width ``n`` (paper: 16).
    num_bits: int = 16
    #: Quantization delay ``d``: timestep at which activations drop to ``n`` bits.
    quantization_delay: int = 500_000

    def __post_init__(self) -> None:
        if self.num_bits < 2:
            raise ValueError(f"num_bits must be >= 2, got {self.num_bits}")
        if self.quantization_delay < 0:
            raise ValueError(
                f"quantization_delay must be non-negative, got {self.quantization_delay}"
            )

    def phase_at(self, timestep: int) -> str:
        """Which phase a timestep falls in: ``"full"`` or ``"half"`` precision."""
        return "full" if timestep < self.quantization_delay else "half"


@dataclass(frozen=True)
class QATEvent:
    """Describes the precision switch, returned once by the controller."""

    timestep: int
    num_bits: int
    activation_min: float
    activation_max: float
    delta: float
    zero_point: int


class QATController:
    """Drives the precision switch of a dynamic fixed-point numeric policy."""

    def __init__(self, numerics: DynamicFixedPointNumerics, schedule: QATSchedule):
        if not isinstance(numerics, DynamicFixedPointNumerics):
            raise TypeError(
                "QATController requires DynamicFixedPointNumerics, got "
                f"{type(numerics).__name__}"
            )
        if numerics.num_bits != schedule.num_bits:
            raise ValueError(
                "numerics and schedule disagree on the quantization bit width: "
                f"{numerics.num_bits} vs {schedule.num_bits}"
            )
        self.numerics = numerics
        self.schedule = schedule
        self._event: Optional[QATEvent] = None

    @property
    def switched(self) -> bool:
        """Whether the precision switch has already happened."""
        return self._event is not None

    @property
    def event(self) -> Optional[QATEvent]:
        """The switch event, if it has happened."""
        return self._event

    def on_timestep(self, timestep: int) -> Optional[QATEvent]:
        """Advance the schedule; returns the switch event exactly once.

        Called with the zero-based global timestep *before* the agent update
        at that timestep, so that the update at ``t == d`` already runs in
        half precision, matching Algorithm 1's ``if t < d`` test.
        """
        if self.switched or timestep < self.schedule.quantization_delay:
            return None
        if not self.numerics.range_tracker.initialized:
            # No activations observed yet (e.g. a zero delay before any
            # forward pass); postpone the switch until a range exists.
            return None
        quantizer: AffineQuantizer = self.numerics.switch_to_half()
        self._event = QATEvent(
            timestep=timestep,
            num_bits=self.schedule.num_bits,
            activation_min=quantizer.min_value,
            activation_max=quantizer.max_value,
            delta=quantizer.delta,
            zero_point=quantizer.zero_point,
        )
        return self._event

    def precision_state(self) -> dict:
        """Normalized precision profile (``{"default": bits, "layers": {}}``).

        The shape every precision driver — this controller and the
        :class:`~repro.rl.precision.PrecisionPolicy` subclasses — exposes so
        the scheduler can re-price throughput weights and the platform's
        ``with_precision_state`` can price the active bit widths.
        """
        return self.numerics.precision_profile()

    def broadcast_payload(self):
        """The payload shipped to forked replicas when the switch fires.

        For the global switch this is the frozen activation quantizer, which
        :meth:`CollectorWorker.apply_precision_switch` adopts verbatim.
        """
        return self.numerics.quantizer

    def activation_bits_at(self, timestep: int) -> int:
        """Activation bit width actually in effect at a timestep.

        The schedule alone is not authoritative: :meth:`on_timestep` postpones
        the switch past ``quantization_delay`` while the range tracker is
        uninitialized, so the reported width consults :attr:`switched` (and
        the recorded switch timestep) rather than assuming the delay was
        honored.  Timesteps before the *actual* switch report the full
        precision the numerics were really running at.
        """
        full_bits = self.numerics.full_activation_format.word_length
        if timestep < self.schedule.quantization_delay:
            return full_bits
        if self._event is not None:
            return self.schedule.num_bits if timestep >= self._event.timestep else full_bits
        # No switch recorded by this controller.  The numerics may still be
        # in half mode already — a controller resumed on a restored
        # checkpoint taken after the switch — so their current mode, not the
        # schedule, is authoritative.
        return self.schedule.num_bits if self.numerics.half_mode else full_bits
