"""Checkpointing: save and restore trained agents.

Long QAT runs (the paper's schedule is one million timesteps) need restart
support: the checkpoint captures the actor/critic (and target) parameters,
the numeric regime's state — including the captured activation range and
whether the precision switch has already happened — and enough metadata to
rebuild a compatible agent.  Checkpoints are plain ``.npz`` archives with a
JSON metadata blob, so they need nothing beyond numpy.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Union

import numpy as np

from ..fixedpoint import AffineQuantizer, RangeTracker
from ..nn import MLP, DynamicFixedPointNumerics
from .ddpg import DDPGAgent
from .td3 import TD3Agent

__all__ = ["save_agent", "load_agent_into", "checkpoint_metadata"]

_FORMAT_VERSION = 1


def _network_arrays(prefix: str, network: MLP) -> Dict[str, np.ndarray]:
    return {f"{prefix}::{name}": value for name, value in network.parameters().items()}


def _agent_networks(agent: Union[DDPGAgent, TD3Agent]) -> Dict[str, MLP]:
    if isinstance(agent, TD3Agent):
        return {
            "actor": agent.actor,
            "critic_1": agent.critic_1,
            "critic_2": agent.critic_2,
            "target_actor": agent.target_actor,
            "target_critic_1": agent.target_critic_1,
            "target_critic_2": agent.target_critic_2,
        }
    return {
        "actor": agent.actor,
        "critic": agent.critic,
        "target_actor": agent.target_actor,
        "target_critic": agent.target_critic,
    }


def checkpoint_metadata(agent: Union[DDPGAgent, TD3Agent]) -> Dict[str, object]:
    """The JSON-serialisable metadata stored alongside the parameters."""
    metadata: Dict[str, object] = {
        "format_version": _FORMAT_VERSION,
        "agent_class": type(agent).__name__,
        "state_dim": agent.state_dim,
        "action_dim": agent.action_dim,
        "update_count": agent.update_count,
        "numerics": agent.numerics.describe(),
    }
    numerics = agent.numerics
    if isinstance(numerics, DynamicFixedPointNumerics):
        layers: Dict[str, object] = {}
        for layer in sorted(numerics.layer_trackers):
            tracker = numerics.layer_trackers[layer]
            quantizer = numerics.layer_quantizers.get(layer)
            layers[layer] = {
                "switched": quantizer is not None,
                "bits": numerics.layer_bits.get(layer),
                # The quantizer (if frozen) rebuilds bit-exactly from its
                # recorded range; unswitched layers carry the live tracker.
                "min": (
                    quantizer.min_value
                    if quantizer is not None
                    else (tracker.min_value if tracker.initialized else None)
                ),
                "max": (
                    quantizer.max_value
                    if quantizer is not None
                    else (tracker.max_value if tracker.initialized else None)
                ),
                "tracker_min": tracker.min_value if tracker.initialized else None,
                "tracker_max": tracker.max_value if tracker.initialized else None,
                "tracker_count": tracker.count,
            }
        metadata["qat"] = {
            "half_mode": numerics.half_mode,
            "num_bits": numerics.num_bits,
            "range_min": numerics.range_tracker.min_value if numerics.range_tracker.initialized else None,
            "range_max": numerics.range_tracker.max_value if numerics.range_tracker.initialized else None,
            "range_count": numerics.range_tracker.count,
            "layers": layers,
        }
    return metadata


def save_agent(agent: Union[DDPGAgent, TD3Agent], path: Union[str, Path]) -> Path:
    """Write an agent checkpoint to ``path`` (``.npz``)."""
    path = Path(path)
    arrays: Dict[str, np.ndarray] = {}
    for prefix, network in _agent_networks(agent).items():
        arrays.update(_network_arrays(prefix, network))
    arrays["__metadata__"] = np.frombuffer(
        json.dumps(checkpoint_metadata(agent)).encode("utf-8"), dtype=np.uint8
    )
    path.parent.mkdir(parents=True, exist_ok=True)
    np.savez_compressed(path, **arrays)
    # numpy appends .npz when missing; normalise the returned path.
    return path if path.suffix == ".npz" else path.with_suffix(path.suffix + ".npz")


def load_agent_into(agent: Union[DDPGAgent, TD3Agent], path: Union[str, Path]) -> Dict[str, object]:
    """Restore a checkpoint into an already-constructed compatible agent.

    The agent must have the same class, dimensions, and network shapes as the
    one that was saved.  Returns the checkpoint metadata.  If the checkpoint
    was taken after the QAT precision switch, the agent's dynamic numeric
    policy is switched back into half mode with the captured range.
    """
    path = Path(path)
    with np.load(path, allow_pickle=False) as archive:
        metadata = json.loads(bytes(archive["__metadata__"].tobytes()).decode("utf-8"))
        if metadata["agent_class"] != type(agent).__name__:
            raise ValueError(
                f"checkpoint holds a {metadata['agent_class']}, got a {type(agent).__name__}"
            )
        if metadata["state_dim"] != agent.state_dim or metadata["action_dim"] != agent.action_dim:
            raise ValueError(
                "checkpoint dimensions "
                f"({metadata['state_dim']}, {metadata['action_dim']}) do not match the agent "
                f"({agent.state_dim}, {agent.action_dim})"
            )
        networks = _agent_networks(agent)
        for key in archive.files:
            if key == "__metadata__":
                continue
            prefix, parameter_name = key.split("::", 1)
            if prefix not in networks:
                raise ValueError(f"checkpoint contains unknown network {prefix!r}")
            networks[prefix].set_parameters({parameter_name: archive[key]})

    agent.update_count = int(metadata["update_count"])
    qat_state = metadata.get("qat")
    numerics = agent.numerics
    if qat_state and isinstance(numerics, DynamicFixedPointNumerics):
        if qat_state["range_min"] is not None:
            numerics.range_tracker.min_value = float(qat_state["range_min"])
            numerics.range_tracker.max_value = float(qat_state["range_max"])
            numerics.range_tracker.count = int(qat_state["range_count"])
        for layer, layer_state in (qat_state.get("layers") or {}).items():
            tracker = numerics.layer_trackers.get(layer)
            if tracker is None:
                tracker = numerics.layer_trackers[layer] = RangeTracker()
            if layer_state.get("tracker_min") is not None:
                tracker.min_value = float(layer_state["tracker_min"])
                tracker.max_value = float(layer_state["tracker_max"])
                tracker.count = int(layer_state["tracker_count"])
            if layer_state.get("switched"):
                bits = int(layer_state["bits"])
                # Rebuilding from the recorded range reproduces the frozen
                # quantizer exactly (delta / zero_point are pure functions
                # of bits and range).
                numerics.layer_quantizers[layer] = AffineQuantizer(
                    bits,
                    float(layer_state["min"]),
                    float(layer_state["max"]),
                )
                numerics.layer_bits[layer] = bits
        if qat_state["half_mode"] and not numerics.half_mode:
            numerics.switch_to_half()
    return metadata
