"""Asynchronous multi-worker experience collection.

FIXAR's training throughput is bounded by how fast the host can feed the
accelerator experience.  The vectorized :class:`~repro.rl.rollout.RolloutEngine`
removed the per-transition overhead inside one process; this module removes
the single-process ceiling: N :class:`CollectorWorker` replicas — each owning
its *own* :class:`~repro.envs.vector.VectorEnv` and rollout engine — collect
lock-step transition batches that an :class:`AsyncCollector` coordinator
drains into **one** shared :class:`~repro.rl.replay_buffer.ReplayBuffer` via
``add_batch``.

Topology and seeding
--------------------
Worker ``w`` steps ``num_envs`` environments seeded
``seed + w * num_envs + i`` (environment ``i`` of worker ``w``), so the
worker fleet observes exactly the trajectories one wide ``VectorEnv`` of
``num_workers * num_envs`` environments would have produced, partitioned
into independent slices.  Each worker also owns an independent exploration
noise process and warmup RNG (derived streams ``(seed, w, 0)`` and
``(seed, w, 1)``), plus an :class:`ActorPolicy` replica of the learner's
actor network that the coordinator refreshes every ``sync_interval``
environment steps.

Heterogeneous fleets
--------------------
A fleet need not replicate one benchmark: a **fleet spec** maps workers to
registered benchmarks so one training run stresses the accelerator with
mixed batch shapes (the adaptive-parallelism scenario the paper's
multi-benchmark evaluation implies).  The grammar, parsed by
:func:`parse_fleet_spec`, is::

    spec     ::= entry ("," entry)*
    entry    ::= benchmark [":" count [":" num_envs]]

where ``benchmark`` is any name registered in :mod:`repro.envs.registry`
(matched case-insensitively — ``register()`` there is the extension point
new benchmarks use to join fleets), ``count`` is a positive worker count
defaulting to 1, and the optional third field is the benchmark's
**lock-step width** — the ``num_envs`` of each of that benchmark's workers,
defaulting to the run's ``config.num_envs``.  ``"HalfCheetah:2:16,Hopper:2:8"``
is a four-worker fleet whose HalfCheetah workers step 16 environments in
lock-step while the Hopper workers step 8; a benchmark may appear only once
per spec.

Mixed-width seeding
~~~~~~~~~~~~~~~~~~~
:class:`HeteroFleet` realises a parsed spec as one :class:`AsyncCollector`
**group per benchmark** — per-benchmark replay buffer (state/action shapes
differ across benchmarks) and per-benchmark learner agent — while worker
ids are assigned **globally** in spec order: entry ``(b, count, width)``
claims the next ``count`` ids.  Environment seeding generalizes the uniform
``seed + worker_id * num_envs + i`` scheme by giving every worker a **global
environment offset**: worker ``w``'s offset is the sum of the lock-step
widths of all workers before it in spec order, and its environment ``i`` is
seeded ``seed + env_offset(w) + i``.  With a uniform width the offset
collapses to ``worker_id * num_envs``, so every homogeneous fleet keeps the
exact historical scheme — a homogeneous spec (``"Hopper:2"``) assigns ids
0..1 and seeds exactly as ``num_workers=2`` does, which is what keeps the
fleet path bit-exact with the PR-2/3 collector (pinned by
``tests/test_hetero_fleet.py``; the mixed-width offsets are pinned by
``tests/test_scheduler.py``).  Noise/warmup streams stay keyed by the
*worker id* (``(seed, worker_id, stream)``), independent of widths.

Execution modes
---------------
* **synchronous** (deterministic) — the coordinator steps the workers
  round-robin in-process, one lock-step each per round, draining every
  worker's transitions into the shared buffer in worker order.  With one
  worker this is *bit-exact* with driving the worker's
  :class:`RolloutEngine` directly (the PR-1 oracle extends to the collector),
  and :func:`~repro.rl.training.train` uses this mode so training runs stay
  reproducible at any ``num_workers``.  The pipelined training schedule
  (``TrainingConfig.pipeline_depth > 0``) runs the same deterministic rounds
  but defers the buffer drain (``step_sync(drain=False)`` + :meth:`drain`)
  so the learner consumes round *k* while the fleet collects round *k+1*.
* **asynchronous** (throughput) — each worker free-runs in its own forked
  process, streaming transition chunks through a bounded queue; the
  coordinator drains arrivals into the shared buffer in arrival order and
  broadcasts refreshed actor weights through per-worker pipes.  Collection
  order is nondeterministic by construction; this is the mode
  ``benchmarks/bench_async_collect.py`` measures.

Platform accounting: every worker's engine prices each policy lock-step as
one ``platform.infer_batch(num_envs)`` (the workers' batches serialize on
the single accelerator — see :meth:`FixarPlatform.infer_collection`), and the
coordinator aggregates the per-worker
:class:`~repro.rl.rollout.RolloutStats` including those modelled seconds.
"""

from __future__ import annotations

import multiprocessing as mp
import operator
import queue as queue_module
import time
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Union

import numpy as np

from ..envs.base import Environment
from ..envs.registry import available_benchmarks, benchmark_dimensions
from ..envs.registry import make as make_env
from ..envs.vector import VectorEnv
from ..nn.network import MLP, build_actor
from ..nn.numerics import DynamicFixedPointNumerics
from .ddpg import batched_policy_actions
from .noise import GaussianNoise, NoiseProcess
from .replay_buffer import ReplayBuffer
from .rollout import RolloutEngine, RolloutStats, VectorTransitions

__all__ = [
    "ActorPolicy",
    "CollectorWorker",
    "AsyncCollector",
    "AsyncCollectStats",
    "FleetGroup",
    "HeteroFleet",
    "parse_fleet_spec",
    "worker_env_seed",
]


def _parse_count_field(name: str, what: str, text: str) -> int:
    try:
        return int(text.strip())
    except ValueError:
        raise ValueError(
            f"{what} of {name!r} must be an integer, got {text.strip()!r}"
        ) from None


def parse_fleet_spec(
    spec: Union[str, Sequence], default_width: Optional[int] = None
) -> List[tuple]:
    """Parse a fleet spec into ``[(benchmark_key, worker_count, width), ...]``.

    The grammar (see the module docstring) is a comma-separated list of
    ``benchmark[:count[:num_envs]]`` entries: ``"HalfCheetah:2:16,Hopper"``
    means two HalfCheetah workers of 16 lock-stepped environments each,
    followed by one Hopper worker at the default width.  Benchmark names are
    resolved case-insensitively against :mod:`repro.envs.registry` and
    returned as the lowercase registry keys; entry order is preserved
    because it determines the fleet's global worker-id assignment (and with
    it the deterministic seeding).  A pre-parsed sequence of ``(name,
    count)`` pairs or ``(name, count, width)`` triples is validated and
    canonicalised the same way.

    ``width`` is ``default_width`` (usually the run's ``config.num_envs``;
    ``None`` when no default applies yet) for entries that do not set the
    third field.

    Raises ``ValueError`` for an empty spec, an empty entry, a non-integer
    or non-positive count or width, an unregistered benchmark, or a
    benchmark that appears more than once.
    """
    if isinstance(spec, str):
        entries = []
        for raw_entry in spec.split(","):
            entry = raw_entry.strip()
            if not entry:
                raise ValueError(f"empty entry in fleet spec {spec!r}")
            fields = [field.strip() for field in entry.split(":")]
            if len(fields) > 3:
                raise ValueError(
                    f"fleet entry {entry!r} has too many fields; the grammar "
                    "is benchmark[:count[:num_envs]]"
                )
            name = fields[0]
            if not name:
                raise ValueError(f"missing benchmark name in fleet entry {entry!r}")
            count = (
                _parse_count_field(name, "worker count", fields[1])
                if len(fields) >= 2
                else 1
            )
            width = (
                _parse_count_field(name, "num_envs width", fields[2])
                if len(fields) == 3
                else None
            )
            entries.append((name, count, width))
    else:
        entries = []
        for item in spec:
            try:
                # operator.index rejects non-integral counts (2.9 must not
                # silently truncate to 2 workers — that would change the
                # fleet's deterministic seeding layout); same for widths.
                if len(item) == 2:
                    name, count = item
                    width = None
                else:
                    name, count, width = item
                    width = None if width is None else operator.index(width)
                entries.append((str(name), operator.index(count), width))
            except (TypeError, ValueError) as exc:
                raise ValueError(
                    "a pre-parsed fleet spec must be (name, integer count) "
                    f"pairs or (name, count, width) triples: {exc}"
                ) from None
    if not entries:
        raise ValueError("fleet spec must name at least one benchmark")

    registered = set(available_benchmarks())
    resolved: List[tuple] = []
    seen = set()
    for name, count, width in entries:
        key = name.lower()
        if key not in registered:
            raise ValueError(
                f"unknown benchmark {name!r} in fleet spec; "
                f"available: {sorted(registered)}"
            )
        if count <= 0:
            raise ValueError(
                f"worker count of {name!r} must be positive, got {count}"
            )
        if width is None:
            width = default_width
        elif width <= 0:
            raise ValueError(
                f"num_envs width of {name!r} must be positive, got {width}"
            )
        if key in seen:
            raise ValueError(
                f"benchmark {name!r} appears more than once in the fleet spec; "
                "merge its worker counts into one entry"
            )
        seen.add(key)
        resolved.append((key, count, width))
    return resolved


def worker_env_seed(
    seed: Optional[int],
    worker_id: int,
    num_envs: int,
    env_offset: Optional[int] = None,
) -> Optional[int]:
    """Base environment seed of one worker: ``seed + env_offset``.

    ``env_offset`` is the worker's global environment offset — the number of
    environments owned by all workers before it in fleet order.  It defaults
    to ``worker_id * num_envs`` (the uniform-width fleet), realising the
    historical ``seed + worker_id * num_envs + i`` scheme; mixed-width
    fleets pass the cumulative offset instead, so environment ``i`` of the
    worker still gets ``base + i`` through :meth:`VectorEnv.spawn_seeds`
    and every global environment index maps to exactly one seed.
    """
    if seed is None:
        return None
    if env_offset is None:
        env_offset = worker_id * num_envs
    return seed + env_offset


def _derived_stream_seed(seed: Optional[int], worker_id: int, stream: int):
    """Entropy for a worker-private RNG stream, independent across workers."""
    if seed is None:
        return None
    return [seed, worker_id, stream]


class ActorPolicy:
    """A detached actor replica: selects actions, never learns.

    Collection workers must not share the learner's mutable networks (an
    async worker reading weights mid-update would act on torn parameters),
    so each worker acts through its own copy of the actor MLP and receives
    refreshed parameters via :meth:`load_parameters`.  The numerics object is
    *shared* with the source agent, so an in-process QAT precision switch
    applies to replicas immediately; forked async workers snapshot it.
    """

    def __init__(self, actor: MLP, action_dim: int):
        self.actor = actor
        self.action_dim = action_dim

    @classmethod
    def from_agent(cls, agent, rng: Union[np.random.Generator, int, None] = None) -> "ActorPolicy":
        """Clone an agent's actor network (DDPG and TD3 both qualify)."""
        replica = build_actor(
            agent.state_dim,
            agent.action_dim,
            tuple(agent.config.hidden_sizes),
            rng=rng if isinstance(rng, np.random.Generator) else np.random.default_rng(rng),
            numerics=agent.numerics,
        )
        replica.copy_from(agent.actor)
        return cls(replica, agent.action_dim)

    def act_batch(self, states: np.ndarray, noise: Optional[np.ndarray] = None) -> np.ndarray:
        """Batched actor inference — the agents' shared implementation."""
        return batched_policy_actions(self.actor, states, noise)

    def load_parameters(self, params) -> None:
        """Overwrite the replica's weights with a broadcast parameter dict."""
        self.actor.set_parameters(params)


class CollectorWorker:
    """One collection worker: its own ``VectorEnv`` plus engine replica.

    Parameters
    ----------
    worker_id:
        Position of the worker in the fleet (drives the seeding scheme).
    engine:
        The worker's private rollout engine.  Its buffer must be ``None`` —
        transitions flow to the coordinator, which owns the single shared
        replay buffer.
    shared_agent:
        ``True`` when the engine acts through the learner's own agent object
        (the single-worker deterministic path); weight broadcasts are then
        no-ops.
    """

    def __init__(self, worker_id: int, engine: RolloutEngine, *, shared_agent: bool = False):
        if worker_id < 0:
            raise ValueError(f"worker_id must be non-negative, got {worker_id}")
        if engine.buffer is not None:
            raise ValueError(
                "a CollectorWorker's engine must not own a replay buffer; "
                "the AsyncCollector drains transitions into the shared one"
            )
        self.worker_id = worker_id
        self.engine = engine
        self.shared_agent = shared_agent

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    @classmethod
    def from_agent(
        cls,
        worker_id: int,
        agent,
        env_template: Environment,
        num_envs: int,
        *,
        seed: Optional[int] = 0,
        sigma: float = 0.1,
        warmup_timesteps: int = 0,
        platform=None,
        env_offset: Optional[int] = None,
    ) -> "CollectorWorker":
        """Build a worker replica around a scalar environment template.

        The worker's environments are fresh seeded siblings of the template
        (``seed + env_offset + i``, where ``env_offset`` defaults to
        ``worker_id * num_envs`` — the uniform-width scheme — and
        mixed-width fleets pass the worker's cumulative environment offset);
        the policy is an :class:`ActorPolicy` clone of ``agent``'s actor;
        the noise process and warmup RNG use worker-private derived streams
        keyed by the worker id alone.
        """
        if num_envs <= 0:
            raise ValueError(f"num_envs must be positive, got {num_envs}")
        env = VectorEnv.from_template(
            env_template,
            num_envs,
            seed=worker_env_seed(seed, worker_id, num_envs, env_offset=env_offset),
        )
        policy = ActorPolicy.from_agent(agent)
        noise = GaussianNoise(
            agent.action_dim, sigma, seed=_derived_stream_seed(seed, worker_id, 0)
        )
        engine = RolloutEngine(
            env,
            policy,
            buffer=None,
            noise=noise,
            warmup_timesteps=warmup_timesteps,
            rng=np.random.default_rng(_derived_stream_seed(seed, worker_id, 1)),
            platform=platform,
        )
        return cls(worker_id, engine)

    # ------------------------------------------------------------------ #
    # Introspection / weight sync
    # ------------------------------------------------------------------ #
    @property
    def num_envs(self) -> int:
        return self.engine.num_envs

    def sync_weights(self, params) -> None:
        """Refresh the worker's actor replica from broadcast parameters."""
        if self.shared_agent:
            return
        self.engine.agent.load_parameters(params)

    def apply_precision_switch(self, payload=None) -> None:
        """Apply the learner's precision switch to this worker's replica.

        In-process replicas *share* the learner's numerics object, so the
        switch reaches them implicitly; a **forked** replica owns a snapshot
        copy, and the coordinator propagates the switch through the command
        pipe instead (see :meth:`AsyncCollector.collect`).  ``payload`` is
        whatever the learner-side driver's ``broadcast_payload()`` produced:
        a bare frozen :class:`~repro.fixedpoint.AffineQuantizer` (the global
        QAT switch) or a per-layer plan (anything with a ``layer_quantizers``
        mapping, e.g. :class:`~repro.rl.precision.PrecisionPlan`) — adopting
        it keeps the whole fleet on one quantization grid.  Without a
        payload the replica freezes its *own* observed range (a worker that
        has run policy forwards has an initialized tracker).  Idempotent,
        and a no-op for non-dynamic numerics.
        """
        numerics = getattr(self.engine.agent.actor, "numerics", None)
        if not isinstance(numerics, DynamicFixedPointNumerics):
            return
        if payload is not None and hasattr(payload, "layer_quantizers"):
            numerics.adopt_plan(payload)
            return
        if numerics.half_mode:
            return
        if payload is not None:
            numerics.adopt_quantizer(payload)
        elif numerics.range_tracker.initialized:
            numerics.switch_to_half()

    def stats_snapshot(self, wall_seconds: float = 0.0) -> RolloutStats:
        """The worker's lifetime rollout statistics."""
        engine = self.engine
        return RolloutStats(
            num_envs=engine.num_envs,
            total_steps=engine.total_env_steps,
            iterations=engine.total_env_steps // engine.num_envs,
            episodes=len(engine.episode_returns),
            wall_seconds=wall_seconds,
            modelled_platform_seconds=engine.modelled_platform_seconds,
        )

    # ------------------------------------------------------------------ #
    # Stepping
    # ------------------------------------------------------------------ #
    def step(self) -> VectorTransitions:
        """One lock-step of this worker's environments."""
        return self.engine.step()

    def collect_chunk(self, lock_steps: int) -> dict:
        """``lock_steps`` lock-steps stacked into one queue-sized payload."""
        if lock_steps <= 0:
            raise ValueError(f"lock_steps must be positive, got {lock_steps}")
        episodes_before = len(self.engine.episode_returns)
        modelled_before = self.engine.modelled_platform_seconds
        batches = [self.engine.step() for _ in range(lock_steps)]
        return {
            "states": np.concatenate([b.states for b in batches]),
            "actions": np.concatenate([b.actions for b in batches]),
            "rewards": np.concatenate([b.rewards for b in batches]),
            "next_states": np.concatenate([b.next_states for b in batches]),
            "dones": np.concatenate([b.dones for b in batches]),
            "steps": lock_steps * self.num_envs,
            "episode_returns": self.engine.episode_returns[episodes_before:],
            "modelled_platform_seconds": (
                self.engine.modelled_platform_seconds - modelled_before
            ),
        }


@dataclass
class AsyncCollectStats(RolloutStats):
    """Aggregate outcome of one :meth:`AsyncCollector.collect` run.

    Extends :class:`RolloutStats` (throughput properties included) with the
    fleet dimensions; ``num_envs`` is the per-worker lock-step width,
    ``total_steps``/``episodes``/``modelled_platform_seconds`` aggregate the
    whole fleet, and ``iterations`` counts synchronous rounds (0 in the
    free-running async mode).
    """

    num_workers: int = 1
    mode: str = "sync"
    per_worker: List[RolloutStats] = field(default_factory=list)

    def as_dict(self) -> dict:
        info = super().as_dict()
        info.update({"num_workers": self.num_workers, "mode": self.mode})
        return info


class AsyncCollector:
    """Coordinates N collection workers around one shared replay buffer.

    Parameters
    ----------
    workers:
        The worker fleet.  All workers must step the same number of
        environments (the lock-step width of the fleet is uniform).
    buffer:
        The single shared replay buffer every worker feeds via ``add_batch``.
    source_agent:
        The learner whose actor weights are broadcast to the worker replicas.
        ``None`` disables broadcasting (pure-collection runs with frozen
        replicas).
    sync_interval:
        Environment steps between actor-weight broadcasts.  The synchronous
        mode broadcasts at the first round boundary where the counter has
        reached the interval; the asynchronous mode checks after each drained
        chunk, so the interval is a lower bound there.
    chunk_lock_steps:
        Lock-steps per queue message in asynchronous mode (amortises the
        inter-process transfer cost).
    qat_controller:
        Optional precision driver — a :class:`~repro.rl.qat.QATController`
        or any :class:`~repro.rl.precision.PrecisionPolicy` — advanced on
        the fleet-wide drained step count during **asynchronous**
        collection.  When a precision event fires, the coordinator
        broadcasts a ``("precision", payload)`` control message (the
        driver's ``broadcast_payload()``: a bare quantizer for the global
        switch, a :class:`~repro.rl.precision.PrecisionPlan` for per-layer
        policies) through every worker's command pipe, so *forked* replicas
        — whose numerics are snapshot copies, not the learner's shared
        object — pick up the switch mid-flight
        (:meth:`CollectorWorker.apply_precision_switch`).  The
        in-process synchronous modes never need this: their replicas share
        the learner's numerics object, and the training loop drives the
        controller itself.
    """

    def __init__(
        self,
        workers: Sequence[CollectorWorker],
        buffer: ReplayBuffer,
        *,
        source_agent=None,
        sync_interval: int = 1,
        chunk_lock_steps: int = 8,
        qat_controller=None,
    ):
        workers = list(workers)
        if not workers:
            raise ValueError("AsyncCollector needs at least one worker")
        widths = {worker.num_envs for worker in workers}
        if len(widths) > 1:
            raise ValueError(f"workers must share one lock-step width, got {sorted(widths)}")
        ids = [worker.worker_id for worker in workers]
        if len(set(ids)) != len(ids):
            raise ValueError(f"worker ids must be unique, got {ids}")
        if sync_interval <= 0:
            raise ValueError(f"sync_interval must be positive, got {sync_interval}")
        if chunk_lock_steps <= 0:
            raise ValueError(f"chunk_lock_steps must be positive, got {chunk_lock_steps}")
        self.workers = workers
        self.buffer = buffer
        self.source_agent = source_agent
        self.sync_interval = sync_interval
        self.chunk_lock_steps = chunk_lock_steps
        self.qat_controller = qat_controller
        self._steps_since_sync = 0
        # Fleet-wide drained async steps, cumulative across collect() calls:
        # the QAT controller counts environment steps over the whole run, so
        # a quantization delay spanning several collects must still fire.
        self._qat_steps = 0

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def num_workers(self) -> int:
        return len(self.workers)

    @property
    def num_envs(self) -> int:
        """Lock-step width of each worker."""
        return self.workers[0].num_envs

    @property
    def steps_per_round(self) -> int:
        """Environment steps of one synchronous round across the fleet."""
        return self.num_workers * self.num_envs

    @property
    def episode_returns(self) -> List[float]:
        """All finished episode returns, concatenated per worker in id order."""
        returns: List[float] = []
        for worker in sorted(self.workers, key=lambda w: w.worker_id):
            returns.extend(worker.engine.episode_returns)
        return returns

    @property
    def total_env_steps(self) -> int:
        return sum(worker.engine.total_env_steps for worker in self.workers)

    def restart_episodes(self, record: bool = True) -> None:
        """Abandon every worker's in-flight episodes (shared-eval-env path)."""
        for worker in self.workers:
            worker.engine.restart_episodes(record=record)

    # ------------------------------------------------------------------ #
    # Weight broadcast
    # ------------------------------------------------------------------ #
    def _actor_parameters(self):
        return {
            name: value.copy()
            for name, value in self.source_agent.actor.parameters().items()
        }

    def broadcast_weights(self) -> None:
        """Push the learner's current actor weights to every worker replica.

        The snapshot is taken on the coordinator's thread without locking the
        learner: every supported schedule — including the *pipelined* one in
        :func:`~repro.rl.training.train`, which emulates the overlap
        deterministically in one thread — guarantees no agent update runs
        concurrently with a broadcast.  A free-running multi-threaded
        training schedule would have to synchronize (or double-buffer) the
        parameters before broadcasting, or workers would receive torn
        half-updated layers.
        """
        if self.source_agent is None:
            return
        params = self._actor_parameters()
        for worker in self.workers:
            worker.sync_weights(params)
        self._steps_since_sync = 0

    # ------------------------------------------------------------------ #
    # Synchronous (deterministic) mode
    # ------------------------------------------------------------------ #
    def step_sync(self, drain: bool = True) -> List[VectorTransitions]:
        """One deterministic round: every worker steps once, in id order.

        Weight broadcasts happen at round *boundaries* (before stepping),
        so workers act on the weights produced by the updates of the
        previous round once ``sync_interval`` steps have accumulated.  With
        ``drain=True`` each worker's transitions are drained into the shared
        buffer immediately after its lock-step, giving a reproducible
        insertion order.  ``drain=False`` defers the buffer insertion to the
        caller (see :meth:`drain`): the pipelined training schedule collects
        round *k+1* while round *k*'s transitions are still queued for the
        learner, so the learner — not the collector — decides when a round's
        data becomes sampleable.
        """
        if self._steps_since_sync >= self.sync_interval:
            self.broadcast_weights()
        rounds: List[VectorTransitions] = []
        for worker in self.workers:
            transitions = worker.step()
            rounds.append(transitions)
        if drain:
            self.drain(rounds)
        self._steps_since_sync += self.steps_per_round
        return rounds

    def drain(self, rounds: Sequence[VectorTransitions]) -> None:
        """Insert deferred lock-step transitions into the shared buffer.

        Rounds are drained in the order given (worker id order within a
        round, FIFO across rounds), so a pipelined schedule that defers the
        drain reproduces exactly the insertion order of the immediate-drain
        path.
        """
        for transitions in rounds:
            self.buffer.add_batch(
                transitions.states,
                transitions.actions,
                transitions.rewards,
                transitions.next_states,
                transitions.dones,
            )

    def _collect_sync(self, num_steps: int) -> AsyncCollectStats:
        rounds = -(-num_steps // self.steps_per_round)
        episodes_before = {w.worker_id: len(w.engine.episode_returns) for w in self.workers}
        modelled_before = {
            w.worker_id: w.engine.modelled_platform_seconds for w in self.workers
        }
        start = time.perf_counter()
        for _ in range(rounds):
            self.step_sync()
        wall = time.perf_counter() - start
        stats = AsyncCollectStats(
            num_workers=self.num_workers,
            num_envs=self.num_envs,
            mode="sync",
            total_steps=rounds * self.steps_per_round,
            iterations=rounds,
            wall_seconds=wall,
        )
        for worker in self.workers:
            engine = worker.engine
            worker_stats = RolloutStats(
                num_envs=worker.num_envs,
                total_steps=rounds * worker.num_envs,
                iterations=rounds,
                episodes=len(engine.episode_returns) - episodes_before[worker.worker_id],
                wall_seconds=wall,
                modelled_platform_seconds=(
                    engine.modelled_platform_seconds - modelled_before[worker.worker_id]
                ),
            )
            stats.per_worker.append(worker_stats)
            stats.episodes += worker_stats.episodes
            stats.modelled_platform_seconds += worker_stats.modelled_platform_seconds
        return stats

    # ------------------------------------------------------------------ #
    # Asynchronous (multi-process) mode
    # ------------------------------------------------------------------ #
    def _collect_async(self, num_steps: int, timeout: float) -> AsyncCollectStats:
        # Fork keeps the constructed workers (envs, replicas, RNG states)
        # without a picklable-spec round trip; every platform this repo
        # targets provides it.  The bounded queue gives backpressure: workers
        # pause when the coordinator falls behind instead of ballooning RAM.
        methods = mp.get_all_start_methods()
        ctx = mp.get_context("fork" if "fork" in methods else None)
        transition_queue = ctx.Queue(maxsize=4 * self.num_workers)
        processes = []
        pipes = {}
        for worker in self.workers:
            parent_conn, child_conn = ctx.Pipe()
            process = ctx.Process(
                target=_worker_loop,
                args=(worker, self.chunk_lock_steps, transition_queue, child_conn),
                daemon=True,
            )
            processes.append(process)
            pipes[worker.worker_id] = parent_conn

        stats = AsyncCollectStats(
            num_workers=self.num_workers,
            num_envs=self.num_envs,
            mode="async",
            per_worker=[None] * self.num_workers,
        )
        id_to_slot = {w.worker_id: slot for slot, w in enumerate(self.workers)}
        start = time.perf_counter()
        for process in processes:
            process.start()

        exits = 0
        stop_sent = False
        failure: Optional[str] = None
        try:
            while exits < self.num_workers:
                try:
                    kind, worker_id, payload = transition_queue.get(timeout=timeout)
                except queue_module.Empty:
                    dead = [p.pid for p in processes if not p.is_alive()]
                    raise RuntimeError(
                        f"async collection stalled for {timeout}s "
                        f"(dead worker pids: {dead})"
                    ) from None
                if kind == "chunk":
                    self.buffer.add_batch(
                        payload["states"],
                        payload["actions"],
                        payload["rewards"],
                        payload["next_states"],
                        payload["dones"],
                    )
                    stats.total_steps += payload["steps"]
                    stats.episodes += len(payload["episode_returns"])
                    stats.modelled_platform_seconds += payload[
                        "modelled_platform_seconds"
                    ]
                    self._steps_since_sync += payload["steps"]
                    self._qat_steps += payload["steps"]
                    if self.qat_controller is not None and not self.qat_controller.switched:
                        # The controller counts fleet-wide environment steps
                        # (cumulative across collect() calls); when the delay
                        # elapses, the switch must reach the forked replicas'
                        # snapshot numerics through the command pipe (the
                        # learner's object is not shared across the fork).
                        event = self.qat_controller.on_timestep(self._qat_steps)
                        if event is not None:
                            # The payload is driver-shaped: a bare quantizer
                            # for the global switch, a PrecisionPlan for
                            # per-layer policies (duck-typed fallback keeps
                            # minimal controller substitutes working).
                            payload_fn = getattr(
                                self.qat_controller, "broadcast_payload", None
                            )
                            precision_payload = (
                                payload_fn()
                                if payload_fn is not None
                                else self.qat_controller.numerics.quantizer
                            )
                            _send_to_all(pipes, ("precision", precision_payload))
                    if (
                        self.source_agent is not None
                        and not stop_sent
                        and self._steps_since_sync >= self.sync_interval
                    ):
                        params = self._actor_parameters()
                        _send_to_all(pipes, ("weights", params))
                        self._steps_since_sync = 0
                    if stats.total_steps >= num_steps and not stop_sent:
                        _send_to_all(pipes, ("stop", None))
                        stop_sent = True
                elif kind == "exit":
                    exits += 1
                    slot = id_to_slot[worker_id]
                    stats.per_worker[slot] = payload["stats"]
                    # Adopt the child's advanced engine (env/noise/warmup RNG
                    # streams, step counters, episode returns) so a later
                    # collect continues the trajectories instead of replaying
                    # the pre-fork state.  Shared-agent workers keep acting
                    # through the parent's learner, not the forked copy.
                    worker = self.workers[slot]
                    child_engine = payload["engine"]
                    if worker.shared_agent:
                        child_engine.agent = worker.engine.agent
                    worker.engine = child_engine
                elif kind == "error":
                    failure = f"worker {worker_id} failed: {payload}"
                    exits += 1
                if failure and not stop_sent:
                    _send_to_all(pipes, ("stop", None))
                    stop_sent = True
        finally:
            for process in processes:
                process.join(timeout=timeout)
                if process.is_alive():  # pragma: no cover - defensive cleanup
                    process.terminate()
            transition_queue.close()
            for conn in pipes.values():
                conn.close()
        if failure:
            raise RuntimeError(failure)
        stats.wall_seconds = time.perf_counter() - start
        return stats

    # ------------------------------------------------------------------ #
    # Entry point
    # ------------------------------------------------------------------ #
    def collect(
        self, num_steps: int, *, mode: str = "sync", timeout: float = 120.0
    ) -> AsyncCollectStats:
        """Collect at least ``num_steps`` environment steps into the buffer.

        ``mode="sync"`` runs whole deterministic rounds (steps round up to a
        multiple of ``num_workers * num_envs``); ``mode="async"`` free-runs
        the workers in forked processes until the drained total reaches
        ``num_steps`` (stragglers already in flight are drained too, so the
        total can overshoot by a few chunks).
        """
        if num_steps <= 0:
            raise ValueError(f"num_steps must be positive, got {num_steps}")
        if mode == "sync":
            return self._collect_sync(num_steps)
        if mode == "async":
            return self._collect_async(num_steps, timeout)
        raise ValueError(f"mode must be 'sync' or 'async', got {mode!r}")


@dataclass
class FleetGroup:
    """One benchmark's slice of a heterogeneous fleet.

    ``benchmark`` is the display name (the environment's ``name``
    attribute, e.g. ``"Hopper"``); ``key`` the lowercase registry key the
    fleet spec resolved to.  The group's :class:`AsyncCollector` owns the
    benchmark's workers and its private replay buffer — buffers cannot be
    shared across benchmarks because the state/action shapes differ.
    """

    benchmark: str
    key: str
    collector: AsyncCollector

    @property
    def num_workers(self) -> int:
        return self.collector.num_workers

    @property
    def num_envs(self) -> int:
        """Lock-step width of this group's workers (uniform within a group)."""
        return self.collector.num_envs

    @property
    def steps_per_round(self) -> int:
        """Environment steps this group contributes to one fleet round."""
        return self.collector.steps_per_round

    @property
    def buffer(self) -> ReplayBuffer:
        return self.collector.buffer

    @property
    def agent(self):
        """The benchmark's learner agent (the group's broadcast source)."""
        return self.collector.source_agent


class HeteroFleet:
    """A heterogeneous collector fleet: one collector group per benchmark.

    Workers of different groups own *different registered benchmarks* but
    share the training run: worker ids are global across the fleet (entry
    order of the spec claims consecutive ids), and every worker seeds its
    environments ``seed + env_offset + i`` where ``env_offset`` is the sum
    of the lock-step widths of all prior workers in spec order — with a
    uniform width this is exactly ``seed + worker_id * num_envs + i``, so a
    homogeneous spec reproduces the single-benchmark fleet bit for bit.
    Noise/warmup use the ``(seed, worker_id, stream)`` derived streams,
    keyed by worker id regardless of widths.  Each group drains into its
    own replay buffer and broadcasts its own learner's actor weights; the
    deterministic round schedule steps the groups in spec order, one
    :meth:`AsyncCollector.step_sync` each.  Groups may have **different
    lock-step widths** (the ``Benchmark:count:num_envs`` spec field); the
    width is uniform only *within* a group.
    """

    def __init__(self, groups: Sequence[FleetGroup]):
        groups = list(groups)
        if not groups:
            raise ValueError("HeteroFleet needs at least one group")
        keys = [group.key for group in groups]
        if len(set(keys)) != len(keys):
            raise ValueError(f"fleet groups must cover distinct benchmarks, got {keys}")
        ids = [
            worker.worker_id for group in groups for worker in group.collector.workers
        ]
        if len(set(ids)) != len(ids):
            raise ValueError(f"worker ids must be unique across the fleet, got {ids}")
        self.groups = groups

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    @classmethod
    def from_agents(
        cls,
        fleet: Sequence,
        agents,
        *,
        num_envs: int,
        buffer_capacity: int,
        seed: Optional[int] = 0,
        sigma: float = 0.1,
        warmup_timesteps: int = 0,
        sync_interval: int = 1,
        env_templates=None,
        platforms=None,
    ) -> "HeteroFleet":
        """Build the fleet a parsed spec describes around per-benchmark agents.

        Parameters
        ----------
        fleet:
            Parsed spec from :func:`parse_fleet_spec` (a raw string or a
            sequence of pairs/triples is accepted and parsed here).
        agents:
            Mapping of benchmark name (case-insensitive) to that
            benchmark's learner agent.  Every spec benchmark must be
            covered, and each agent's ``state_dim``/``action_dim`` must
            match the registry's :func:`benchmark_dimensions`.
        num_envs:
            Default lock-step width for spec entries that do not set their
            own ``Benchmark:count:num_envs`` width field.
        buffer_capacity, seed, sync_interval:
            Per-group replay capacity, the fleet-wide base seed, and the
            per-group broadcast interval.
        sigma, warmup_timesteps:
            Exploration noise std-dev and the *per-worker* warmup budget
            handed to each :meth:`CollectorWorker.from_agent`.
        env_templates:
            Optional mapping of benchmark name to a template environment
            instance (the workers step fresh seeded replicas of it);
            benchmarks without a template use ``registry.make``.
        platforms:
            Optional mapping of benchmark name to the
            :class:`~repro.platform.FixarPlatform` pricing that benchmark's
            batched inferences (layer dimensions differ per benchmark, so
            each group needs its own workload's platform).
        """
        fleet = parse_fleet_spec(fleet, default_width=num_envs)
        agents_by_key = {str(name).lower(): agent for name, agent in dict(agents).items()}
        if len(agents_by_key) != len(dict(agents)):
            raise ValueError("agents mapping has case-colliding benchmark names")
        spec_keys = [key for key, _count, _width in fleet]
        missing = [key for key in spec_keys if key not in agents_by_key]
        if missing:
            raise ValueError(f"agents mapping is missing fleet benchmarks: {missing}")
        extra = sorted(set(agents_by_key) - set(spec_keys))
        if extra:
            raise ValueError(f"agents mapping names benchmarks outside the fleet: {extra}")
        templates_by_key = {
            str(name).lower(): env for name, env in dict(env_templates or {}).items()
        }
        platforms_by_key = {
            str(name).lower(): platform
            for name, platform in dict(platforms or {}).items()
        }

        groups: List[FleetGroup] = []
        worker_id_base = 0
        env_offset = 0
        for key, count, width in fleet:
            agent = agents_by_key[key]
            dims = benchmark_dimensions(key)
            if (agent.state_dim, agent.action_dim) != (
                dims["state_dim"],
                dims["action_dim"],
            ):
                raise ValueError(
                    f"agent for {key!r} has dims "
                    f"({agent.state_dim}, {agent.action_dim}); the benchmark needs "
                    f"({dims['state_dim']}, {dims['action_dim']})"
                )
            template = templates_by_key.get(key)
            if template is None:
                template = make_env(key)
            workers = []
            for offset in range(count):
                workers.append(
                    CollectorWorker.from_agent(
                        worker_id_base + offset,
                        agent,
                        template,
                        width,
                        seed=seed,
                        sigma=sigma,
                        warmup_timesteps=warmup_timesteps,
                        platform=platforms_by_key.get(key),
                        env_offset=env_offset,
                    )
                )
                env_offset += width
            worker_id_base += count
            buffer = ReplayBuffer(
                buffer_capacity, agent.state_dim, agent.action_dim, seed=seed
            )
            collector = AsyncCollector(
                workers, buffer, source_agent=agent, sync_interval=sync_interval
            )
            groups.append(
                FleetGroup(benchmark=template.name, key=key, collector=collector)
            )
        return cls(groups)

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def num_workers(self) -> int:
        return sum(group.num_workers for group in self.groups)

    @property
    def widths(self) -> List[int]:
        """Per-group lock-step widths, in spec order (may be mixed)."""
        return [group.num_envs for group in self.groups]

    @property
    def steps_per_round(self) -> int:
        """Environment steps of one fleet round across all groups."""
        return sum(group.steps_per_round for group in self.groups)

    @property
    def benchmarks(self) -> List[str]:
        """Display names of the fleet's benchmarks, in spec order."""
        return [group.benchmark for group in self.groups]

    @property
    def spec(self) -> List[tuple]:
        """The fleet's resolved ``(benchmark_key, worker_count, width)`` entries."""
        return [(group.key, group.num_workers, group.num_envs) for group in self.groups]

    def episode_returns(self) -> dict:
        """Finished episode returns per benchmark (display-name keys)."""
        return {
            group.benchmark: list(group.collector.episode_returns)
            for group in self.groups
        }

    # ------------------------------------------------------------------ #
    # Deterministic round schedule
    # ------------------------------------------------------------------ #
    def reset(self) -> None:
        """Reset every worker's environments (fresh initial observations)."""
        for group in self.groups:
            for worker in group.collector.workers:
                worker.engine.reset()

    def step_sync(self, drain: bool = True) -> List[List[VectorTransitions]]:
        """One fleet round: every group runs one deterministic round in order.

        Returns each group's lock-step transitions (spec order) so a
        pipelined schedule can defer the buffer drains; with ``drain=True``
        each group drains into its own buffer immediately, exactly like the
        homogeneous collector.
        """
        return [group.collector.step_sync(drain=drain) for group in self.groups]

    def drain(self, rounds: Sequence[Sequence[VectorTransitions]]) -> None:
        """Insert one deferred fleet round into the per-group buffers."""
        if len(rounds) != len(self.groups):
            raise ValueError(
                f"expected one deferred round per group ({len(self.groups)}), "
                f"got {len(rounds)}"
            )
        for group, group_rounds in zip(self.groups, rounds):
            group.collector.drain(group_rounds)


def _send_to_all(pipes, message) -> None:
    """Best-effort command broadcast: a worker may have exited concurrently."""
    for conn in pipes.values():
        try:
            conn.send(message)
        except (BrokenPipeError, OSError):  # worker already gone
            pass


def _worker_loop(worker: CollectorWorker, chunk_lock_steps, transition_queue, conn) -> None:
    """Body of one forked collection worker process."""
    stop = False

    def drain_commands() -> None:
        nonlocal stop
        while conn.poll():
            kind, payload = conn.recv()
            if kind == "stop":
                stop = True
            elif kind == "weights":
                worker.sync_weights(payload)
            elif kind == "precision":
                worker.apply_precision_switch(payload)

    try:
        if worker.engine.observations is None:
            worker.engine.reset()
        worker_start = time.perf_counter()
        # Exit stats count only *delivered* chunks (a chunk in flight when
        # "stop" lands is dropped), so per-worker totals always agree with
        # what the coordinator drained into the shared buffer.
        delivered_steps = 0
        delivered_episodes = 0
        delivered_modelled = 0.0
        while True:
            drain_commands()
            if stop:
                break
            chunk = worker.collect_chunk(chunk_lock_steps)
            # The bounded queue is the backpressure valve: when it is full we
            # must keep draining the command pipe while waiting, or a weight
            # broadcast would fill the pipe, block the coordinator's send,
            # and deadlock the drain loop against this very put.
            while not stop:
                try:
                    transition_queue.put(
                        ("chunk", worker.worker_id, chunk), timeout=0.05
                    )
                    delivered_steps += chunk["steps"]
                    delivered_episodes += len(chunk["episode_returns"])
                    delivered_modelled += chunk["modelled_platform_seconds"]
                    break
                except queue_module.Full:
                    drain_commands()
            if stop:
                break
        wall = time.perf_counter() - worker_start
        exit_stats = RolloutStats(
            num_envs=worker.num_envs,
            total_steps=delivered_steps,
            iterations=delivered_steps // worker.num_envs,
            episodes=delivered_episodes,
            wall_seconds=wall,
            modelled_platform_seconds=delivered_modelled,
        )
        # Ship the engine back so the coordinator can adopt the advanced
        # env/noise/RNG state — a later collect must continue the worker's
        # trajectories, not replay them from the pre-fork snapshot.
        transition_queue.put(
            ("exit", worker.worker_id, {"stats": exit_stats, "engine": worker.engine})
        )
    except Exception as exc:  # pragma: no cover - surfaced via the coordinator
        transition_queue.put(("error", worker.worker_id, repr(exc)))
    finally:
        conn.close()
