"""Vectorized rollout engine: batched inference over N lock-stepped envs.

The scalar training loop feeds the platform one transition at a time,
leaving the batch dimension of ``MLP.forward`` (and of the accelerator's
data-level parallelism) idle during experience collection.  The
:class:`RolloutEngine` closes that gap: it drives a
:class:`~repro.envs.vector.VectorEnv`, selecting actions for all N
environments with **one** actor forward pass per lock-step, drawing
exploration noise in one batched call, and inserting the N transitions with
one :meth:`~repro.rl.replay_buffer.ReplayBuffer.add_batch` write.

The engine is the bit-compatibility seam of the subsystem: with
``num_envs == 1`` every RNG consumption (warmup uniform draws, exploration
noise, environment streams) happens in exactly the order of the scalar loop
in :mod:`repro.rl.training`, which is what makes the vectorized ``train``
provably behavior-preserving (``tests/test_rollout_engine.py``).

An optional :class:`~repro.platform.FixarPlatform` hook prices each
lock-step's batched actor inference (one batch-of-N FPGA pass + one PCIe
round trip instead of N serial ones), accumulating the modelled platform
time alongside the wall-clock measurement.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from time import perf_counter
from typing import Dict, List, Optional, Sequence, Union

import numpy as np

from ..envs.vector import VectorEnv, VectorStepResult
from .noise import GaussianNoise, NoiseProcess
from .profiling import StageTimers
from .replay_buffer import ReplayBuffer

__all__ = ["VectorTransitions", "RolloutStats", "RolloutEngine"]


@dataclass(frozen=True)
class VectorTransitions:
    """The N transitions produced by one lock-step, one row per env.

    ``next_states`` holds the *true* successor of each transition (the
    terminal observation when the episode ended — what belongs in the replay
    buffer), while ``observations`` holds what the policy acts on next
    (auto-reset already applied).
    """

    states: np.ndarray
    actions: np.ndarray
    rewards: np.ndarray
    next_states: np.ndarray
    dones: np.ndarray
    observations: np.ndarray
    infos: Sequence[dict]

    def __len__(self) -> int:
        return self.states.shape[0]


@dataclass
class RolloutStats:
    """Aggregate outcome of a :meth:`RolloutEngine.collect` run."""

    num_envs: int
    total_steps: int = 0
    iterations: int = 0
    episodes: int = 0
    wall_seconds: float = 0.0
    modelled_platform_seconds: float = 0.0
    #: Per-stage wall-clock attribution of this collect, present only when
    #: a profiler was attached (``RolloutEngine.set_profiler``).
    stage_seconds: Optional[Dict[str, float]] = None

    @property
    def steps_per_second(self) -> float:
        """Measured environment steps per wall-clock second."""
        return self.total_steps / self.wall_seconds if self.wall_seconds > 0 else 0.0

    @property
    def modelled_steps_per_second(self) -> float:
        """Environment steps per second under the platform timing model."""
        if self.modelled_platform_seconds <= 0:
            return 0.0
        return self.total_steps / self.modelled_platform_seconds

    def as_dict(self) -> dict:
        data = {
            "num_envs": self.num_envs,
            "total_steps": self.total_steps,
            "iterations": self.iterations,
            "episodes": self.episodes,
            "wall_seconds": self.wall_seconds,
            "modelled_platform_seconds": self.modelled_platform_seconds,
            "steps_per_second": self.steps_per_second,
            "modelled_steps_per_second": self.modelled_steps_per_second,
        }
        if self.stage_seconds is not None:
            data["stage_seconds"] = dict(self.stage_seconds)
        return data


class RolloutEngine:
    """Drives batched action selection, stepping, and replay insertion.

    Parameters
    ----------
    env:
        The vector environment to roll out (or a scalar count via
        ``VectorEnv``; the engine never steps scalar environments itself).
    agent:
        Any agent exposing ``act_batch(states, noise=None)`` and
        ``action_dim`` (DDPG and TD3 both qualify).
    buffer:
        Optional replay buffer receiving every transition via ``add_batch``.
    noise:
        Exploration noise process; defaults to Gaussian with ``sigma``.
    warmup_timesteps:
        Environment steps during which actions are drawn uniformly from
        ``[-1, 1]`` instead of from the policy.  The boundary is evaluated
        per lock-step, so with ``num_envs > 1`` it effectively rounds up to
        the next multiple of ``num_envs``.
    rng:
        Generator (or seed) for the warmup action draws.
    platform:
        Optional :class:`~repro.platform.FixarPlatform`; when present every
        policy lock-step is priced with ``platform.infer_batch(num_envs)``
        and accumulated into the rollout stats.
    """

    def __init__(
        self,
        env: VectorEnv,
        agent,
        *,
        buffer: Optional[ReplayBuffer] = None,
        noise: Optional[NoiseProcess] = None,
        sigma: float = 0.1,
        warmup_timesteps: int = 0,
        rng: Union[np.random.Generator, int, None] = None,
        platform=None,
    ):
        if not isinstance(env, VectorEnv):
            raise TypeError(f"env must be a VectorEnv, got {type(env).__name__}")
        if warmup_timesteps < 0:
            raise ValueError("warmup_timesteps must be non-negative")
        self.env = env
        self.agent = agent
        self.buffer = buffer
        self.noise = noise or GaussianNoise(agent.action_dim, sigma)
        if env.num_envs > 1 and type(self.noise).sample_batch is NoiseProcess.sample_batch:
            # The default sample_batch stacks sequential sample() calls: a
            # stateful process (e.g. DecayedNoise) would hand temporally
            # *consecutive* noise to parallel environments and be reset
            # whenever any one episode ends — not N independent processes.
            # OrnsteinUhlenbeckNoise defines per-environment batch state and
            # passes this check.
            raise ValueError(
                f"{type(self.noise).__name__} does not define a batched "
                "sample_batch; stateful exploration noise is not supported "
                "with num_envs > 1 — use GaussianNoise/OrnsteinUhlenbeckNoise "
                "or override sample_batch with per-environment semantics"
            )
        self.warmup_timesteps = warmup_timesteps
        self._rng = (
            rng if isinstance(rng, np.random.Generator) else np.random.default_rng(rng)
        )
        self.platform = platform

        self.total_env_steps = 0
        self.episode_returns: List[float] = []
        self.modelled_platform_seconds = 0.0
        self._running_returns = np.zeros(env.num_envs)
        self._observations: Optional[np.ndarray] = None

        #: Optional stage-level perf counters (off by default; attach via
        #: :meth:`set_profiler` or the CLIs' ``--profile``).
        self.profiler: Optional[StageTimers] = None
        # Hot-path caches: the lock-step width and warmup draw shape never
        # change, and the platform's batched-inference price is a pure
        # function of (platform object, batch size) — FixarPlatform is
        # immutable and precision switches arrive as *new* platform objects
        # (with_precision_state), so object identity is a sound cache key.
        self._n = env.num_envs
        self._warmup_shape = (env.num_envs, agent.action_dim)
        self._price_platform = None
        self._price_batch = -1
        self._price_seconds = 0.0

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    @property
    def num_envs(self) -> int:
        return self.env.num_envs

    @property
    def observations(self) -> Optional[np.ndarray]:
        """The current ``(N, S)`` policy inputs (None before reset)."""
        return self._observations

    def set_profiler(self, profiler: Optional[StageTimers]) -> Optional[StageTimers]:
        """Attach (or detach, with ``None``) stage timers to the hot path.

        One accumulator is wired through the engine, the vector environment,
        and the replay buffer, so a single object collects the whole
        lock-step breakdown.  Profiling changes no trajectory bit — it only
        brackets the existing stages with ``perf_counter`` reads.
        """
        self.profiler = profiler
        self.env.profiler = profiler
        if self.buffer is not None:
            self.buffer.profiler = profiler
        return profiler

    def reset(self) -> np.ndarray:
        """Reset every environment and the running episode returns."""
        self._observations = self.env.reset()
        self._running_returns[:] = 0.0
        return self._observations

    def restart_episodes(self, record: bool = True) -> np.ndarray:
        """Abandon the in-flight episodes and start fresh ones.

        Mirrors the scalar loop's shared-evaluation-environment handling:
        the running returns are recorded (as interrupted episodes), the
        noise process is reset, and every environment re-rolls its initial
        state.
        """
        if record:
            self.episode_returns.extend(float(r) for r in self._running_returns)
        self.noise.reset()
        return self.reset()

    # ------------------------------------------------------------------ #
    # Stepping
    # ------------------------------------------------------------------ #
    # repro-lint: hot
    def step(self) -> VectorTransitions:
        """One lock-step: batched action, env step, bulk replay insertion."""
        if self._observations is None:
            self.reset()
        states = self._observations
        n = self._n
        prof = self.profiler

        if self.total_env_steps < self.warmup_timesteps:
            rng = self._rng
            actions = rng.uniform(-1.0, 1.0, size=self._warmup_shape)
        else:
            noise = self.noise
            agent = self.agent
            if prof is not None:
                t0 = perf_counter()
                exploration = noise.sample_batch(n)
                t1 = perf_counter()
                prof.add("noise-draw", t1 - t0)
                actions = agent.act_batch(states, noise=exploration)
                prof.add("actor-forward", perf_counter() - t1)
            else:
                actions = agent.act_batch(states, noise=noise.sample_batch(n))
            platform = self.platform
            if platform is not None:
                if prof is not None:
                    t0 = perf_counter()
                if platform is not self._price_platform or n != self._price_batch:
                    report = platform.infer_batch(n)
                    self._price_seconds = report.total_seconds
                    self._price_platform = platform
                    self._price_batch = n
                self.modelled_platform_seconds += self._price_seconds
                if prof is not None:
                    prof.add("platform-pricing", perf_counter() - t0)

        env = self.env
        result: VectorStepResult = env.step(actions)
        rewards = result.rewards
        dones = result.dones
        infos = result.infos

        next_states = result.observations
        done_indices = np.flatnonzero(dones)
        if done_indices.size:
            next_states = next_states.copy()
            finals = getattr(infos, "final_observations", None)
            if finals is None:
                for i in done_indices:
                    next_states[i] = infos[i]["final_observation"]
            else:
                for i, observation in finals.items():
                    next_states[i] = observation

        buffer = self.buffer
        if buffer is not None:
            buffer.add_batch_trusted(states, actions, rewards, next_states, dones)

        running_returns = self._running_returns
        running_returns += rewards
        if done_indices.size:
            episode_returns = self.episode_returns
            for i in done_indices:
                episode_returns.append(float(running_returns[i]))
                running_returns[i] = 0.0
            noise = self.noise
            if n > 1:
                # Only the finished environments' noise state restarts; a
                # process with per-environment state (batched OU) keeps the
                # other trajectories, and stateless processes defer to a
                # single reset() — never one reset per finished episode (K
                # episodes ending together must not reset an annealing
                # schedule K times).
                noise.reset_envs(done_indices)
            else:
                # The scalar path resets exactly like the scalar loop (the
                # bit-compatibility contract).
                noise.reset()

        self._observations = result.observations
        self.total_env_steps += n
        return VectorTransitions(
            states=states,
            actions=actions,
            rewards=rewards,
            next_states=next_states,
            dones=dones,
            observations=result.observations,
            infos=infos,
        )

    def collect(self, num_steps: int) -> RolloutStats:
        """Roll out at least ``num_steps`` environment steps, timing them.

        Runs ``ceil(num_steps / num_envs)`` lock-steps; returns throughput
        statistics (wall-clock and, when a platform hook is attached, the
        modelled platform time of the batched inferences).
        """
        if num_steps <= 0:
            raise ValueError(f"num_steps must be positive, got {num_steps}")
        if self._observations is None:
            self.reset()
        iterations = -(-num_steps // self.env.num_envs)
        episodes_before = len(self.episode_returns)
        modelled_before = self.modelled_platform_seconds
        profiler = self.profiler
        stages_before = profiler.snapshot() if profiler is not None else None
        start = time.perf_counter()
        step = self.step
        for _ in range(iterations):
            step()
        wall = time.perf_counter() - start
        return RolloutStats(
            num_envs=self.env.num_envs,
            total_steps=iterations * self.env.num_envs,
            iterations=iterations,
            episodes=len(self.episode_returns) - episodes_before,
            wall_seconds=wall,
            modelled_platform_seconds=self.modelled_platform_seconds - modelled_before,
            stage_seconds=(
                profiler.delta(stages_before) if profiler is not None else None
            ),
        )
