"""Policy evaluation and learning-curve bookkeeping.

The paper evaluates the agent every 5000 timesteps by averaging the
cumulative reward of 10 rollouts from random initial states (an episode ends
when the agent falls down or after 1000 timesteps).  This module implements
that protocol and the learning-curve container used by Fig. 7.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from ..envs.base import Environment
from .ddpg import DDPGAgent

__all__ = ["evaluate_policy", "LearningCurve", "EvaluationPoint"]


def evaluate_policy(
    env: Environment,
    agent: DDPGAgent,
    episodes: int = 10,
    max_steps: Optional[int] = None,
) -> float:
    """Average cumulative reward of deterministic rollouts.

    Parameters
    ----------
    env:
        Evaluation environment (re-used across episodes).
    agent:
        The agent whose deterministic policy is evaluated (no noise).
    episodes:
        Number of rollouts to average (paper: 10 random initial states).
    max_steps:
        Optional per-episode step cap overriding the environment's horizon.
    """
    if episodes <= 0:
        raise ValueError(f"episodes must be positive, got {episodes}")
    returns = []
    for _ in range(episodes):
        observation = env.reset()
        total = 0.0
        steps = 0
        done = False
        while not done:
            action = agent.act(observation)
            observation, reward, done, _ = env.step(action)
            total += reward
            steps += 1
            if max_steps is not None and steps >= max_steps:
                break
        returns.append(total)
    return float(np.mean(returns))


@dataclass(frozen=True)
class EvaluationPoint:
    """One point of a learning curve."""

    timestep: int
    average_return: float


@dataclass
class LearningCurve:
    """A labelled sequence of evaluation points (one Fig. 7 series)."""

    label: str
    points: List[EvaluationPoint] = field(default_factory=list)

    def record(self, timestep: int, average_return: float) -> None:
        """Append one evaluation result."""
        self.points.append(EvaluationPoint(timestep, float(average_return)))

    @property
    def timesteps(self) -> np.ndarray:
        return np.array([p.timestep for p in self.points], dtype=np.int64)

    @property
    def returns(self) -> np.ndarray:
        return np.array([p.average_return for p in self.points], dtype=np.float64)

    @property
    def final_return(self) -> float:
        """The last evaluation's average return (NaN when empty)."""
        return float(self.returns[-1]) if self.points else float("nan")

    def best_return(self) -> float:
        """The best evaluation seen over training (NaN when empty)."""
        return float(self.returns.max()) if self.points else float("nan")

    def mean_return(self, last_fraction: float = 0.25) -> float:
        """Mean return over the final ``last_fraction`` of the curve.

        A more robust "converged performance" summary than the single last
        point, used when comparing numeric regimes.
        """
        if not self.points:
            return float("nan")
        if not 0.0 < last_fraction <= 1.0:
            raise ValueError(f"last_fraction must lie in (0, 1], got {last_fraction}")
        count = max(1, int(round(len(self.points) * last_fraction)))
        return float(self.returns[-count:].mean())

    def improvement(self) -> float:
        """Final minus first return (positive when training helped)."""
        if len(self.points) < 2:
            return 0.0
        return float(self.returns[-1] - self.returns[0])

    def summary(self) -> dict:
        """Serialisable summary used in reports and EXPERIMENTS.md."""
        return {
            "label": self.label,
            "evaluations": len(self.points),
            "final_return": self.final_return,
            "best_return": self.best_return(),
            "mean_tail_return": self.mean_return(),
            "improvement": self.improvement(),
        }


def compare_curves(curves: Sequence[LearningCurve]) -> List[dict]:
    """Summaries of several curves, sorted by converged performance."""
    summaries = [curve.summary() for curve in curves]
    return sorted(summaries, key=lambda s: s["mean_tail_return"], reverse=True)
