"""The unified round-scheduler: one place that drives every training schedule.

FIXAR's headline claim is *adaptive parallelism* — the platform reshapes how
work is scheduled onto the accelerator as the workload changes.  Before this
subsystem existed, the round schedules lived inline (and duplicated) in
:func:`~repro.rl.training.train` and :func:`~repro.rl.training.train_fleet`;
now both entry points are thin wrappers over one :class:`RoundScheduler`
that drives one or more collector groups through a pluggable
:class:`SchedulePolicy`:

* :class:`SequentialPolicy` — collect a round, then consume it.  Bit-exact
  with the historical ``pipeline_depth == 0`` loop (and through it with the
  whole oracle chain down to ``train_scalar_reference``).
* :class:`PipelinedPolicy` — the bounded-staleness overlap: the fleet
  collects round ``k+1 .. k+depth`` while the learner is still consuming
  round ``k``.  ``PipelinedPolicy(0)`` degenerates to the sequential
  schedule.
* :class:`ThroughputWeightedPolicy` — *adaptive* round shaping for
  heterogeneous fleets: benchmarks with cheaper modelled ``host +
  inference`` chains are allocated extra collection lock-steps per round,
  using :meth:`FixarPlatform.fleet_collection_round_seconds` as the cost
  oracle.  The expensive benchmark's chain bounds the round either way, so
  the extra lock-steps ride inside time the fleet was already paying for —
  the QuaRL observation that quantized-RL throughput hinges on keeping
  collection saturated, made first-class.

Determinism contract
--------------------
A policy never introduces nondeterminism: collection is always the
synchronous in-process mode (:meth:`AsyncCollector.step_sync`), rounds are
emulated in one thread, and the only knobs are *how many* lock-steps each
group runs per round (the policy's ``lock_steps`` weights, fixed for the
whole run) and *how many rounds* the fleet may run ahead of the learner
(``depth``).  Every policy preserves the work invariants the regression
tests pin: one agent update per collected post-warmup environment step
(per benchmark), one evaluation per crossed ``evaluation_interval``
boundary, and a full drain of any in-flight rounds at the end of the run.

The scheduler deliberately does **not** import the platform layer —
``repro.platform`` sits *downstream* of ``repro.rl`` in the layer map, so
the cost oracle arrives as a duck-typed object (anything exposing the
``fleet_collection_round_seconds`` / ``fleet_collection_steps_per_second``
pricing pair).  Without an oracle the weighted policy degrades to uniform
weights rather than guessing.

The *device-assignment* seam is the pool analogue of the schedule seam: a
:class:`DeviceAssignmentPolicy` (round-robin, explicit affinity, or
greedy load balancing) maps each benchmark group onto one accelerator of
a duck-typed device pool (:class:`~repro.platform.AcceleratorPool`),
resolved once per run via :func:`resolve_assignment` — symmetric with
:func:`resolve_policy`.  Assignment changes only which modelled device
pays for each group's batches, never the training numerics.
"""

from __future__ import annotations

import operator
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Deque, Dict, List, Optional, Sequence, Tuple

from .evaluation import LearningCurve, evaluate_policy
from .qat import QATEvent
from .workers import AsyncCollector

__all__ = [
    "ScheduledGroup",
    "SchedulePolicy",
    "SequentialPolicy",
    "PipelinedPolicy",
    "ThroughputWeightedPolicy",
    "ScheduleOutcome",
    "RoundScheduler",
    "resolve_policy",
    "DeviceAssignmentPolicy",
    "RoundRobinAssignment",
    "AffinityAssignment",
    "LoadBalancedAssignment",
    "ASSIGNMENTS",
    "resolve_assignment",
]


@dataclass
class ScheduledGroup:
    """One benchmark's slice of a scheduled run.

    ``key`` identifies the group (the registry key in a fleet, any stable
    label otherwise) and doubles as the benchmark name the weighted policy's
    cost oracle prices; ``benchmark`` is the display name.  The group owns
    its collector, learner agent, replay buffer, learning curve, and
    evaluation environment — everything the scheduler's learner phase needs.
    """

    key: str
    benchmark: str
    collector: AsyncCollector
    agent: object
    buffer: object
    curve: LearningCurve
    eval_env: object

    @property
    def num_envs(self) -> int:
        """Lock-step width of this group's workers."""
        return self.collector.num_envs

    @property
    def num_workers(self) -> int:
        return self.collector.num_workers

    @property
    def steps_per_lock_round(self) -> int:
        """Environment steps of one of this group's collector rounds."""
        return self.collector.steps_per_round


class SchedulePolicy:
    """How the scheduler shapes a round: lock-step weights + staleness depth.

    ``depth`` is the bounded staleness window (rounds the fleet may run
    ahead of the learner; 0 = strictly alternating).  :meth:`lock_steps`
    returns one positive integer per group — how many collector rounds that
    group runs per scheduler round; the weights are resolved once at
    scheduler construction and change only if :meth:`relock` returns a new
    allocation at a precision-epoch boundary — a deterministic point of the
    schedule, which is what keeps weighted runs reproducible.
    """

    name = "sequential"
    depth = 0

    def lock_steps(self, groups: Sequence[ScheduledGroup], platform=None) -> List[int]:
        """Lock-step allocation per group (default: one each, spec order)."""
        return [1] * len(groups)

    def relock(
        self,
        groups: Sequence[ScheduledGroup],
        platform=None,
        precision_state=None,
    ) -> Optional[List[int]]:
        """Re-priced weights after a precision event, or ``None`` to keep.

        The scheduler calls this at the deterministic round boundary where
        a precision event fired, handing it the driver's normalized
        ``precision_state()`` profile; a policy that prices rounds through
        the platform oracle can return a fresh allocation reflecting the
        new per-layer bit widths (see
        :class:`ThroughputWeightedPolicy(adaptive=True)
        <ThroughputWeightedPolicy>`).  The default keeps the locked weights
        for the whole run.
        """
        return None

    def describe(self) -> str:
        return self.name


class SequentialPolicy(SchedulePolicy):
    """Collect one round per group in spec order, then consume it.

    This is the historical ``pipeline_depth == 0`` schedule, preserved as
    the behavioral oracle: the refactored :func:`~repro.rl.training.train`
    under this policy is bit-exact with the pre-scheduler loop (pinned by
    ``tests/test_scheduler.py``).
    """

    name = "sequential"
    depth = 0


class PipelinedPolicy(SchedulePolicy):
    """Bounded-staleness overlap: the fleet runs up to ``depth`` rounds ahead.

    Collection of round ``k+1`` is scheduled before the learner phase of
    round ``k`` (deterministically, in one thread), so collection acts on
    actor weights up to ``depth`` rounds older than the sequential schedule
    would use; update-side data availability is unchanged and the backlog
    drains at the end of the run.  ``PipelinedPolicy(0)`` *is* the
    sequential schedule.
    """

    name = "pipelined"

    def __init__(self, depth: int = 1):
        if depth < 0:
            raise ValueError(f"pipeline depth must be non-negative, got {depth}")
        self.depth = depth

    def describe(self) -> str:
        return f"{self.name}(depth={self.depth})"


class ThroughputWeightedPolicy(SchedulePolicy):
    """Allocate extra lock-steps to benchmarks with cheaper modelled chains.

    On a heterogeneous fleet the slowest benchmark's serial ``host +
    inference`` chain bounds the collection round (each worker runs on its
    own host core; the single accelerator serves all batches back to back),
    so every cheaper benchmark's workers idle part of every round.  The
    fleet's true ceiling is the sum of the per-worker ceilings
    ``width_b / chain_b`` — reached when benchmark ``b`` runs lock-steps in
    proportion to ``1 / chain_b`` instead of one per round.  This policy
    approximates those proportions with small integer weights: each
    ``slowest_chain / chain_b`` ratio is rounded to a fraction with
    denominator at most ``max_weight``, the fractions are put over a common
    denominator, and the resulting integers (capped at ``max_weight``)
    become the per-round lock-step allocation.  All chain costs come from
    the ``fleet_collection_round_seconds`` cost oracle.

    The policy is conservative: it re-prices the weighted round through the
    oracle and falls back to uniform weights whenever the allocation would
    not improve modelled collection steps/sec (the accelerator-serial bound
    can eat the slack) — so it never schedules worse than spec-order
    round-robin.  With a single group, or without an oracle, it degenerates
    to uniform weights.

    ``weights`` overrides the oracle with an explicit per-benchmark mapping
    (lowercase keys), for tests and manual tuning.

    ``adaptive=True`` (the ``--schedule adaptive`` spelling) additionally
    re-prices the allocation at precision-epoch boundaries: when the run's
    precision driver fires an event, the scheduler hands this policy the new
    normalized precision state, the oracle is re-derived through
    ``platform.with_precision_state`` (reduced activation widths shrink the
    modelled PCIe payloads), and :meth:`relock` returns a fresh allocation.
    Both the boundary (a scheduler round index) and the re-priced weights
    are deterministic, so adaptive runs stay reproducible.
    """

    name = "weighted"

    def __init__(
        self,
        max_weight: int = 16,
        depth: int = 0,
        platform=None,
        weights: Optional[Dict[str, int]] = None,
        adaptive: bool = False,
    ):
        if max_weight < 1:
            raise ValueError(f"max_weight must be >= 1, got {max_weight}")
        if depth < 0:
            raise ValueError(f"pipeline depth must be non-negative, got {depth}")
        self.max_weight = max_weight
        self.depth = depth
        self.platform = platform
        self.weights = weights
        self.adaptive = adaptive

    def _ratio_weights(self, chains: Sequence[float]) -> List[int]:
        """Integer lock-step weights approximating ``1 / chain`` proportions."""
        from fractions import Fraction
        from math import gcd

        slowest = max(chains)
        ratios = [
            Fraction(slowest / chain).limit_denominator(self.max_weight)
            for chain in chains
        ]
        denominator = 1
        for ratio in ratios:
            denominator = denominator * ratio.denominator // gcd(
                denominator, ratio.denominator
            )
        weights = [max(1, int(ratio * denominator)) for ratio in ratios]
        # Cap the allocation so rounds stay bounded (extreme chain ratios,
        # or a three-way common denominator, can blow past the cap).  The
        # clamp distorts the ideal proportions, but the oracle verification
        # in lock_steps discards any allocation that does not actually
        # improve modelled throughput.
        weights = [min(weight, self.max_weight) for weight in weights]
        # Reduce by the gcd so equivalent allocations use the smallest
        # rounds (e.g. a clamped [17, 16] -> [16, 16] is just uniform).
        common = 0
        for weight in weights:
            common = gcd(common, weight)
        return [weight // common for weight in weights]

    def lock_steps(self, groups: Sequence[ScheduledGroup], platform=None) -> List[int]:
        if self.weights is not None:
            group_keys = {group.key for group in groups}
            unknown = sorted(key for key in self.weights if key not in group_keys)
            if unknown:
                # A typo'd key must not silently degrade that benchmark to
                # the default weight of 1 (a round-robin slice of the round).
                raise ValueError(
                    f"explicit weights name benchmarks that match no "
                    f"scheduled group: {unknown}; scheduled keys are "
                    f"{sorted(group_keys)}"
                )
            try:
                # operator.index rejects non-integral weights: 2.9 lock-steps
                # must not silently truncate to 2 (same convention as
                # parse_fleet_spec's worker counts).
                resolved = [
                    operator.index(self.weights.get(group.key, 1)) for group in groups
                ]
            except TypeError as exc:
                raise ValueError(
                    f"explicit weights must be integers: {exc}"
                ) from None
            if any(weight < 1 for weight in resolved):
                raise ValueError(f"explicit weights must be >= 1, got {self.weights}")
            return resolved
        oracle = platform if platform is not None else self.platform
        if oracle is None or len(groups) <= 1:
            return [1] * len(groups)
        try:
            chains = [
                oracle.fleet_collection_round_seconds(
                    [(group.key, 1, group.num_envs)], group.num_envs
                )
                for group in groups
            ]
        except (KeyError, ValueError):
            # A group whose key is not a registered benchmark (custom envs)
            # cannot be priced; weighting is a pure optimization, so degrade
            # to the round-robin allocation instead of failing the run.
            return [1] * len(groups)
        weights = self._ratio_weights(chains)
        if all(weight == 1 for weight in weights):
            return weights
        fleet = [
            (group.key, group.num_workers, group.num_envs) for group in groups
        ]
        num_envs = groups[0].num_envs
        uniform = oracle.fleet_collection_steps_per_second(fleet, num_envs)
        weighted = oracle.fleet_collection_steps_per_second(
            fleet, num_envs, weights=weights
        )
        if weighted < uniform:
            return [1] * len(groups)
        return weights

    def relock(
        self,
        groups: Sequence[ScheduledGroup],
        platform=None,
        precision_state=None,
    ) -> Optional[List[int]]:
        """Re-price the allocation against the post-switch oracle.

        Only the adaptive variant re-locks, and only from the oracle —
        explicit weights were a deliberate override and stay put.  The
        oracle is re-derived via ``with_precision_state`` so the chains
        reflect the bit widths actually in effect; everything downstream is
        :meth:`lock_steps` unchanged, including the conservative
        never-worse-than-uniform verification.
        """
        if not self.adaptive or self.weights is not None:
            return None
        oracle = platform if platform is not None else self.platform
        if oracle is None or len(groups) <= 1:
            return None
        if precision_state is not None:
            with_state = getattr(oracle, "with_precision_state", None)
            if with_state is not None:
                oracle = with_state(precision_state)
        return self.lock_steps(groups, oracle)

    def describe(self) -> str:
        suffix = ", adaptive" if self.adaptive else ""
        return f"{self.name}(max_weight={self.max_weight}, depth={self.depth}{suffix})"


def resolve_policy(config, platform=None) -> SchedulePolicy:
    """The :class:`SchedulePolicy` a :class:`TrainingConfig` asks for.

    ``config.schedule`` of ``None`` resolves from ``pipeline_depth`` (the
    historical behavior: depth 0 is sequential, anything else pipelined);
    ``"weighted"`` combines throughput-weighted rounds with the configured
    staleness depth, and ``"adaptive"`` is the weighted policy that also
    re-prices at precision-epoch boundaries.  ``platform`` is handed to the
    weighted policy as its cost oracle.
    """
    name = getattr(config, "schedule", None)
    if name is None:
        name = "pipelined" if config.pipeline_depth > 0 else "sequential"
    if name == "sequential":
        return SequentialPolicy()
    if name == "pipelined":
        return PipelinedPolicy(config.pipeline_depth)
    if name == "weighted":
        return ThroughputWeightedPolicy(
            depth=config.pipeline_depth, platform=platform
        )
    if name == "adaptive":
        return ThroughputWeightedPolicy(
            depth=config.pipeline_depth, platform=platform, adaptive=True
        )
    raise ValueError(
        f"unknown schedule {name!r}; expected sequential, pipelined, "
        "weighted, or adaptive"
    )


class DeviceAssignmentPolicy:
    """How a fleet's benchmark groups map onto a device pool's accelerators.

    The device-pool analogue of :class:`SchedulePolicy`: where a schedule
    policy shapes *when* each group's lock-steps run inside a round, an
    assignment policy decides *which accelerator* serves each group's
    batched inferences.  :meth:`assign` returns one collection-device index
    per group (duck-typed groups expose ``key`` / ``num_workers`` /
    ``num_envs``, same shape the weighted schedule prices); the pool
    arrives duck-typed too (anything exposing ``collection_devices`` and
    the ``fleet_*`` pricing pair), because ``repro.platform`` sits
    downstream of ``repro.rl`` in the layer map.  Assignments are resolved
    once per run and stay fixed, so device affinity never introduces
    nondeterminism — it only changes which modelled accelerator pays for
    each group's batches.
    """

    name = "round-robin"

    def assign(self, groups: Sequence, pool) -> List[int]:
        """Collection-device index per group (default: round-robin)."""
        devices = list(pool.collection_devices)
        return [devices[index % len(devices)] for index in range(len(groups))]

    def describe(self) -> str:
        return self.name


class RoundRobinAssignment(DeviceAssignmentPolicy):
    """Deal the groups over the collection devices in spec order.

    The default policy: group ``g`` lands on collection device ``g mod D``.
    With one device it degenerates to the single-accelerator serialization
    — the assignment half of the 1-device bit-exactness pin.
    """

    name = "round-robin"


class AffinityAssignment(DeviceAssignmentPolicy):
    """Pin benchmarks to devices with an explicit ``{key: device}`` mapping.

    Keys are matched case-insensitively against the group keys; mapping
    keys that match no group raise (the same unknown-key contract as the
    weighted policy's explicit lock-step weights — a typo'd benchmark must
    not silently fall back to round-robin).  Groups the mapping does not
    name round-robin over the collection devices.
    """

    name = "affinity"

    def __init__(self, mapping: Dict[str, int]):
        if not mapping:
            raise ValueError("AffinityAssignment needs a non-empty mapping")
        try:
            self.mapping = {
                str(key).lower(): operator.index(device)
                for key, device in dict(mapping).items()
            }
        except TypeError as exc:
            raise ValueError(
                f"device assignments must be integers: {exc}"
            ) from None

    def assign(self, groups: Sequence, pool) -> List[int]:
        keys = [group.key for group in groups]
        unknown = sorted(key for key in self.mapping if key not in set(keys))
        if unknown:
            raise ValueError(
                f"device assignment names benchmarks that match no scheduled "
                f"group: {unknown}; scheduled keys are {sorted(set(keys))}"
            )
        collection = list(pool.collection_devices)
        for key, device in self.mapping.items():
            if device not in collection:
                raise ValueError(
                    f"benchmark {key!r} assigned to device {device}, but the "
                    f"pool's collection devices are {tuple(collection)}"
                )
        devices = []
        cursor = 0
        for key in keys:
            if key in self.mapping:
                devices.append(self.mapping[key])
            else:
                devices.append(collection[cursor % len(collection)])
                cursor += 1
        return devices

    def describe(self) -> str:
        return f"{self.name}({self.mapping})"


class LoadBalancedAssignment(DeviceAssignmentPolicy):
    """Greedily even out the modelled accelerator load across devices.

    Groups are placed heaviest-first (each group's load priced as its
    single-group accelerator-serial time through the pool's
    ``fleet_collection_round_seconds`` oracle) onto the device with the
    least accumulated load.  Groups the oracle cannot price (custom
    benchmarks) fall back to round-robin — balancing is a pure
    optimization, so it degrades instead of failing the run, mirroring
    :class:`ThroughputWeightedPolicy`.
    """

    name = "balanced"

    def assign(self, groups: Sequence, pool) -> List[int]:
        collection = list(pool.collection_devices)
        if len(collection) == 1:
            return [collection[0]] * len(groups)
        try:
            costs = [
                group.num_workers
                * pool.fleet_collection_round_seconds(
                    [(group.key, 1, group.num_envs)], group.num_envs
                )
                for group in groups
            ]
        except (KeyError, ValueError):
            return RoundRobinAssignment().assign(groups, pool)
        load = {device: 0.0 for device in collection}
        devices: List[Optional[int]] = [None] * len(groups)
        # Heaviest groups first; ties broken by spec order so the
        # assignment stays deterministic.
        for index in sorted(
            range(len(groups)), key=lambda i: (-costs[i], i)
        ):
            device = min(collection, key=lambda d: (load[d], d))
            devices[index] = device
            load[device] += costs[index]
        return devices


#: Named device-assignment policies ``TrainingConfig.assignment`` accepts
#: (a mapping selects :class:`AffinityAssignment` instead).
ASSIGNMENTS = ("round-robin", "balanced")


def resolve_assignment(config, pool=None) -> DeviceAssignmentPolicy:
    """The :class:`DeviceAssignmentPolicy` a :class:`TrainingConfig` asks for.

    Mirrors :func:`resolve_policy`: ``config.assignment`` of ``None`` (or a
    config without the knob) resolves to round-robin, a policy name from
    ``ASSIGNMENTS`` picks the named policy, and a ``{benchmark: device}``
    mapping builds an :class:`AffinityAssignment`.  ``pool`` is accepted
    for signature symmetry; the policies receive it at :meth:`assign` time.
    """
    assignment = getattr(config, "assignment", None)
    if assignment is None or assignment == "round-robin":
        return RoundRobinAssignment()
    if assignment == "balanced":
        return LoadBalancedAssignment()
    if isinstance(assignment, str):
        raise ValueError(
            f"unknown assignment {assignment!r}; expected one of "
            f"{ASSIGNMENTS} or a {{benchmark: device}} mapping"
        )
    return AffinityAssignment(dict(assignment))


@dataclass
class ScheduleOutcome:
    """What one scheduled run produced, keyed the way the wrappers need it."""

    #: Environment steps actually collected (whole rounds, fleet-wide).
    total_timesteps: int = 0
    #: Environment steps of one scheduler round across all groups.
    steps_per_round: int = 0
    #: Scheduler rounds run.
    iterations: int = 0
    #: Resolved lock-step weights, one per group in spec order.
    weights: List[int] = field(default_factory=list)
    #: Agent updates performed per group key.
    updates_by_key: Dict[str, int] = field(default_factory=dict)
    #: Environment steps collected per group key (whole run).
    steps_by_key: Dict[str, int] = field(default_factory=dict)
    #: The shared QAT precision switch, if it fired.
    qat_event: Optional[QATEvent] = None

    @property
    def total_updates(self) -> int:
        return sum(self.updates_by_key.values())


class RoundScheduler:
    """Drives collector groups through a policy's round schedule.

    This is the single home of the round/drain/update/evaluate bookkeeping
    that used to live inline (twice) in ``train()`` and ``train_fleet()``:

    1. advance the QAT controller by the round's environment steps;
    2. **collect** — each group runs its policy-weighted number of
       deterministic collector rounds, in spec order (drained immediately at
       depth 0, deferred behind the bounded-staleness window otherwise);
    3. **learn** — drain the due round, run one agent update per collected
       post-warmup step of each group's slice (spec-order offsets), and
       record one evaluation per crossed ``evaluation_interval`` boundary;
    4. drain the in-flight backlog at the end of the run.

    Parameters
    ----------
    groups:
        The :class:`ScheduledGroup` s in spec order.
    policy:
        The :class:`SchedulePolicy` shaping the rounds.
    config:
        The run's :class:`~repro.rl.training.TrainingConfig` (timestep
        budget, warmup, batch size, evaluation cadence).
    qat_controller:
        Optional shared Algorithm 1 controller, advanced once per
        fleet-wide environment step.
    platform:
        Optional cost oracle forwarded to the policy's ``lock_steps``.
    on_evaluation:
        Optional callback ``(evaluated_step, metrics_by_key)`` fired after
        each evaluation boundary; ``metrics_by_key`` maps each group key to
        ``{"average_return", "episodes"}``.  The training wrappers adapt
        this to their public ``progress_callback`` shapes.
    restart_shared_env:
        Single-group compatibility hook for the scalar loop's
        shared-evaluation-environment semantics: restart every worker's
        episodes after each evaluation (the evaluation consumed the shared
        environment's episode).  Only legal at depth 0 — the caller
        enforces that, as the historical loop did.
    """

    def __init__(
        self,
        groups: Sequence[ScheduledGroup],
        policy: SchedulePolicy,
        config,
        *,
        qat_controller=None,
        platform=None,
        on_evaluation: Optional[Callable[[int, Dict[str, dict]], None]] = None,
        restart_shared_env: bool = False,
    ):
        groups = list(groups)
        if not groups:
            raise ValueError("RoundScheduler needs at least one group")
        keys = [group.key for group in groups]
        if len(set(keys)) != len(keys):
            raise ValueError(f"scheduled groups must have unique keys, got {keys}")
        if restart_shared_env and len(groups) > 1:
            raise ValueError(
                "restart_shared_env is the single-group scalar-loop "
                "compatibility hook; a fleet never shares evaluation envs"
            )
        self.groups = groups
        self.policy = policy
        self.config = config
        self.qat_controller = qat_controller
        self.platform = platform
        self.on_evaluation = on_evaluation
        self.restart_shared_env = restart_shared_env
        self.weights = self._validated_weights(policy.lock_steps(groups, platform))
        self._updates_by_key = {group.key: 0 for group in groups}
        self._qat_event: Optional[QATEvent] = None

    def _validated_weights(self, weights) -> List[int]:
        weights = list(weights)
        if len(weights) != len(self.groups) or any(
            int(weight) != weight or weight < 1 for weight in weights
        ):
            raise ValueError(
                f"policy {self.policy.describe()} produced invalid lock-step "
                f"weights {weights} for {len(self.groups)} groups"
            )
        return [int(weight) for weight in weights]

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def steps_per_round(self) -> int:
        """Environment steps of one scheduler round across all groups."""
        return self._round_steps(self.weights)

    def _round_steps(self, weights: Sequence[int]) -> int:
        """Environment steps of one round under an explicit allocation."""
        return sum(
            weight * group.steps_per_lock_round
            for group, weight in zip(self.groups, weights)
        )

    def _group_offsets(self, weights: Sequence[int]) -> List[int]:
        """Each group's slice offset inside a round's global step range."""
        offsets = []
        accumulated = 0
        for group, weight in zip(self.groups, weights):
            offsets.append(accumulated)
            accumulated += weight * group.steps_per_lock_round
        return offsets

    # ------------------------------------------------------------------ #
    # The learner phase (drain, update, evaluate)
    # ------------------------------------------------------------------ #
    def _learner_round(
        self,
        global_step: int,
        weights: Sequence[int],
        deferred,
        episodes_snapshot: Optional[Dict[str, int]],
    ) -> None:
        """Drain one round, run its updates, record crossed evaluations.

        ``global_step`` is the fleet-wide step count at the round's
        collection start and ``weights`` the allocation the round was
        collected under — passed explicitly (rather than derived from a
        round index) because an adaptive policy may re-lock the live
        weights while this round is still queued behind the staleness
        window.  ``deferred`` is ``None`` in the sequential schedule (the
        collectors drained immediately) and the round's per-group queued
        transitions in the pipelined one.  Either way the buffers hold
        exactly the rounds up to this one when the updates sample them, so
        every policy sees the same update-side data availability — policies
        differ only in how stale the *collection* weights are and how
        lock-steps are allocated.  ``episodes_snapshot`` carries the
        per-group episode counts as of the round's collection (pipelined
        schedules pass it so progress metrics do not count rounds the fleet
        has already run ahead on).
        """
        config = self.config
        steps_per_round = self._round_steps(weights)
        global_after = global_step + steps_per_round
        if deferred is not None:
            for group, rounds in zip(self.groups, deferred):
                group.collector.drain(rounds)

        # ----- Agent updates: one per collected post-warmup step ---------- #
        offsets = self._group_offsets(weights)
        for group, offset, weight in zip(self.groups, offsets, weights):
            buffer = group.buffer
            if len(buffer) >= config.batch_size:
                group_lo = global_step + offset
                group_hi = group_lo + weight * group.steps_per_lock_round
                first_update_step = max(group_lo, config.warmup_timesteps)
                for _ in range(max(0, group_hi - first_update_step)):
                    group.agent.update(buffer.sample(config.batch_size))
                    self._updates_by_key[group.key] += 1

        # ----- Periodic evaluation: one point per crossed boundary -------- #
        # A round can cross several evaluation_interval boundaries at once;
        # each one gets its own curve point per group, matching the scalar
        # loop's cadence instead of collapsing them into one.
        interval = config.evaluation_interval
        for boundary in range(global_step // interval + 1, global_after // interval + 1):
            evaluated_step = boundary * interval
            metrics: Dict[str, dict] = {}
            for group in self.groups:
                average_return = evaluate_policy(
                    group.eval_env, group.agent, episodes=config.evaluation_episodes
                )
                group.curve.record(evaluated_step, average_return)
                if self.restart_shared_env:
                    # Evaluation consumed the shared environment's episode;
                    # start fresh training episodes from a clean state.
                    group.collector.restart_episodes(record=True)
                metrics[group.key] = {
                    "average_return": average_return,
                    "episodes": (
                        len(group.collector.episode_returns)
                        if episodes_snapshot is None
                        else episodes_snapshot[group.key]
                    ),
                }
            if self.on_evaluation is not None:
                self.on_evaluation(evaluated_step, metrics)

    # ------------------------------------------------------------------ #
    # The schedule
    # ------------------------------------------------------------------ #
    def _maybe_relock(self) -> None:
        """Offer the policy a re-pricing after a precision event.

        Runs at the round boundary where the event fired — a deterministic
        point of the schedule — handing the policy the precision driver's
        normalized state so oracle-driven policies can reflect the new bit
        widths in their lock-step allocation.  A ``None`` return keeps the
        current weights; anything else is validated exactly like the
        construction-time allocation and swapped in for subsequent rounds
        (rounds already queued behind the staleness window keep the weights
        they were collected under).
        """
        new_weights = self.policy.relock(
            self.groups,
            self.platform,
            getattr(self.qat_controller, "precision_state", lambda: None)(),
        )
        if new_weights is not None:
            self.weights = self._validated_weights(new_weights)

    def run(self) -> ScheduleOutcome:
        """Run the whole schedule and return the bookkeeping totals."""
        config = self.config
        depth = self.policy.depth

        # In-flight rounds the fleet has collected but the learner has not
        # yet consumed (at most ``depth`` long): (round start step, weights
        # at collection, per-group transitions, per-group episode counts as
        # of collection).
        pending: Deque[Tuple[int, List[int], List, Dict[str, int]]] = deque()
        collected = 0
        iterations = 0
        steps_by_key = {group.key: 0 for group in self.groups}
        while collected < config.total_timesteps:
            weights = list(self.weights)
            steps_per_round = self._round_steps(weights)
            global_step = collected

            # QAT advances with the collection timeline: the precision
            # driver counts environment steps, and in-process replicas share
            # the learner's numerics object, so a precision switch applies
            # to collection immediately — the (lagging) pipelined learner
            # then runs its remaining updates at the new precision, exactly
            # as a wall-clock switch would.
            event_fired = False
            if self.qat_controller is not None:
                for offset in range(steps_per_round):
                    event = self.qat_controller.on_timestep(global_step + offset)
                    if event is not None:
                        self._qat_event = event
                        event_fired = True

            if depth == 0:
                # Sequential schedule: collect a round, then consume it.
                for group, weight in zip(self.groups, weights):
                    for _ in range(weight):
                        group.collector.step_sync()
                self._learner_round(global_step, weights, None, None)
            else:
                # Pipelined schedule: collect round k first — emulating
                # "collection of round k runs while the learner is busy with
                # round k - depth" — then let the learner catch up to within
                # the staleness window.
                deferred: List[List] = []
                for group, weight in zip(self.groups, weights):
                    rounds: List = []
                    for _ in range(weight):
                        rounds.extend(group.collector.step_sync(drain=False))
                    deferred.append(rounds)
                pending.append(
                    (
                        global_step,
                        weights,
                        deferred,
                        {
                            group.key: len(group.collector.episode_returns)
                            for group in self.groups
                        },
                    )
                )
                if len(pending) > depth:
                    self._learner_round(*pending.popleft())

            collected += steps_per_round
            iterations += 1
            for group, weight in zip(self.groups, weights):
                steps_by_key[group.key] += weight * group.steps_per_lock_round
            if event_fired:
                # Precision-epoch boundary: let the policy re-price the
                # allocation for the rounds that follow.
                self._maybe_relock()

        # Drain the pipeline: the learner consumes the last in-flight rounds.
        while pending:
            self._learner_round(*pending.popleft())

        total_timesteps = collected
        # If the run ended between evaluation points, add a final evaluation
        # so short smoke-test runs still produce non-empty curves.
        for group in self.groups:
            if not group.curve.points:
                group.curve.record(
                    total_timesteps,
                    evaluate_policy(
                        group.eval_env,
                        group.agent,
                        episodes=config.evaluation_episodes,
                    ),
                )

        return ScheduleOutcome(
            total_timesteps=total_timesteps,
            steps_per_round=self.steps_per_round,
            iterations=iterations,
            weights=list(self.weights),
            updates_by_key=dict(self._updates_by_key),
            steps_by_key=steps_by_key,
            qat_event=self._qat_event,
        )
