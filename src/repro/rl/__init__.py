"""Deep reinforcement learning substrate (DDPG + quantization-aware training).

Contains the replay buffer, exploration noise processes, the DDPG agent with
explicit forward/backward/weight-update phases, Algorithm 1's QAT schedule
and controller, the training loop, and the evaluation protocol used by the
paper's Fig. 7 accuracy study.
"""

from .checkpoint import checkpoint_metadata, load_agent_into, save_agent
from .ddpg import DDPGAgent, DDPGConfig, UpdateMetrics
from .evaluation import EvaluationPoint, LearningCurve, compare_curves, evaluate_policy
from .noise import DecayedNoise, GaussianNoise, NoiseProcess, OrnsteinUhlenbeckNoise
from .qat import QATController, QATEvent, QATSchedule
from .replay_buffer import ReplayBuffer, TransitionBatch
from .td3 import TD3Agent, TD3Config
from .training import TrainingConfig, TrainingResult, train

__all__ = [
    "DDPGAgent",
    "DDPGConfig",
    "TD3Agent",
    "TD3Config",
    "UpdateMetrics",
    "save_agent",
    "load_agent_into",
    "checkpoint_metadata",
    "ReplayBuffer",
    "TransitionBatch",
    "NoiseProcess",
    "GaussianNoise",
    "OrnsteinUhlenbeckNoise",
    "DecayedNoise",
    "QATSchedule",
    "QATController",
    "QATEvent",
    "TrainingConfig",
    "TrainingResult",
    "train",
    "evaluate_policy",
    "LearningCurve",
    "EvaluationPoint",
    "compare_curves",
]
