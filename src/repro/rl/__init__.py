"""Deep reinforcement learning substrate (DDPG + quantization-aware training).

Contains the replay buffer, exploration noise processes, the DDPG agent with
explicit forward/backward/weight-update phases, Algorithm 1's QAT schedule
and controller, the training loop, and the evaluation protocol used by the
paper's Fig. 7 accuracy study.

Experience collection is built on the vectorized rollout subsystem: a
:class:`RolloutEngine` lock-steps a :class:`~repro.envs.VectorEnv`, selects
actions for all ``num_envs`` environments with one batched actor forward
pass, draws exploration noise in one batched call
(:meth:`NoiseProcess.sample_batch`), and inserts transitions with one
:meth:`ReplayBuffer.add_batch` write.  :func:`train` drives DDPG and TD3
through that engine for any ``num_envs`` (``num_envs == 1`` reproduces the
scalar loop — preserved as :func:`train_scalar_reference` — bit for bit).
Multi-worker collection builds on that seam: an :class:`AsyncCollector`
coordinates :class:`CollectorWorker` replicas (each owning its own
``VectorEnv`` + engine, seeded ``seed + worker_id * num_envs + i``) around
one shared replay buffer, with a deterministic synchronous mode used by
:func:`train` (``TrainingConfig.num_workers``) and a free-running
multi-process mode for raw collection throughput.  A fleet can also span
*heterogeneous benchmarks* (``TrainingConfig.fleet``, e.g.
``"HalfCheetah:2,Hopper:2"``): :class:`HeteroFleet` groups the workers per
benchmark (own replay buffer and learner agent each, one shared numerics
object so QAT switches apply fleet-wide) and :func:`train_fleet` runs the
deterministic round schedule across the groups.  The round schedules
themselves live in the *scheduler subsystem* (:mod:`repro.rl.scheduler`):
a :class:`RoundScheduler` drives the collector groups through a pluggable
:class:`SchedulePolicy` — :class:`SequentialPolicy` (the bit-exact
historical loop), :class:`PipelinedPolicy` (bounded staleness: the fleet
collects round k+1 while the learner drains round k, priced by the
platform as ``max(collection, update)`` per round via
:meth:`~repro.platform.FixarPlatform.pipelined_round_seconds`), and
:class:`ThroughputWeightedPolicy` (heterogeneous benchmarks with cheaper
modelled host+inference chains collect extra lock-steps per round,
``FixarPlatform.fleet_collection_round_seconds`` as cost oracle) —
selected by ``TrainingConfig.schedule``.  Activation precision is driven
by the *precision subsystem* (:mod:`repro.rl.precision`): a pluggable
:class:`PrecisionPolicy` — :class:`GlobalSwitchPolicy` (Algorithm 1's
single fleet-wide switch, bit-exact with :class:`QATController`),
:class:`PerLayerSchedulePolicy` (static per-layer bitwidth table), and
:class:`RangeDrivenPolicy` (switches each layer once its activation-range
statistics stabilise) — resolves to per-layer
:class:`PrecisionPlan` state that the numerics, collector broadcast,
checkpoint, and platform pricing layers all consume.  Future
scaling layers
(sharded accelerators, multi-backend inference) should likewise slot in
behind the engine's ``act_batch``/``step`` seam rather than re-introducing
per-transition calls.
"""

from .checkpoint import checkpoint_metadata, load_agent_into, save_agent
from .ddpg import DDPGAgent, DDPGConfig, UpdateMetrics
from .evaluation import EvaluationPoint, LearningCurve, compare_curves, evaluate_policy
from .noise import DecayedNoise, GaussianNoise, NoiseProcess, OrnsteinUhlenbeckNoise
from .precision import (
    PRECISION_POLICIES,
    GlobalSwitchPolicy,
    LayerSwitch,
    PerLayerSchedulePolicy,
    PrecisionEvent,
    PrecisionPlan,
    PrecisionPolicy,
    RangeDrivenPolicy,
    register_precision_policy,
    resolve_precision,
)
from .profiling import ROLLOUT_STAGES, StageTimers
from .qat import QATController, QATEvent, QATSchedule
from .replay_buffer import ReplayBuffer, TransitionBatch
from .rollout import RolloutEngine, RolloutStats, VectorTransitions
from .scheduler import (
    ASSIGNMENTS,
    AffinityAssignment,
    DeviceAssignmentPolicy,
    LoadBalancedAssignment,
    PipelinedPolicy,
    RoundRobinAssignment,
    RoundScheduler,
    ScheduledGroup,
    ScheduleOutcome,
    SchedulePolicy,
    SequentialPolicy,
    ThroughputWeightedPolicy,
    resolve_assignment,
    resolve_policy,
)
from .td3 import TD3Agent, TD3Config
from .training import (
    FleetTrainingResult,
    TrainingConfig,
    TrainingResult,
    train,
    train_fleet,
    train_scalar_reference,
)
from .workers import (
    ActorPolicy,
    AsyncCollector,
    AsyncCollectStats,
    CollectorWorker,
    FleetGroup,
    HeteroFleet,
    parse_fleet_spec,
    worker_env_seed,
)

__all__ = [
    "DDPGAgent",
    "DDPGConfig",
    "TD3Agent",
    "TD3Config",
    "UpdateMetrics",
    "save_agent",
    "load_agent_into",
    "checkpoint_metadata",
    "ReplayBuffer",
    "TransitionBatch",
    "NoiseProcess",
    "GaussianNoise",
    "OrnsteinUhlenbeckNoise",
    "DecayedNoise",
    "QATSchedule",
    "QATController",
    "QATEvent",
    "PrecisionPolicy",
    "PrecisionPlan",
    "PrecisionEvent",
    "LayerSwitch",
    "GlobalSwitchPolicy",
    "PerLayerSchedulePolicy",
    "RangeDrivenPolicy",
    "PRECISION_POLICIES",
    "register_precision_policy",
    "resolve_precision",
    "RolloutEngine",
    "RolloutStats",
    "VectorTransitions",
    "StageTimers",
    "ROLLOUT_STAGES",
    "RoundScheduler",
    "ScheduledGroup",
    "ScheduleOutcome",
    "SchedulePolicy",
    "SequentialPolicy",
    "PipelinedPolicy",
    "ThroughputWeightedPolicy",
    "resolve_policy",
    "DeviceAssignmentPolicy",
    "RoundRobinAssignment",
    "AffinityAssignment",
    "LoadBalancedAssignment",
    "ASSIGNMENTS",
    "resolve_assignment",
    "ActorPolicy",
    "AsyncCollector",
    "AsyncCollectStats",
    "CollectorWorker",
    "FleetGroup",
    "HeteroFleet",
    "parse_fleet_spec",
    "worker_env_seed",
    "TrainingConfig",
    "TrainingResult",
    "FleetTrainingResult",
    "train",
    "train_fleet",
    "train_scalar_reference",
    "evaluate_policy",
    "LearningCurve",
    "EvaluationPoint",
    "compare_curves",
]
