"""Stage-level perf counters for the rollout hot path.

The rollout subsystem's throughput contracts are *measured* numbers
(``benchmarks/bench_hotpath.py``), and measured numbers need attribution:
when the in-process anchor moves, which stage moved it?  :class:`StageTimers`
is the answer — a near-zero-overhead accumulator threaded through
:meth:`~repro.rl.rollout.RolloutEngine.step` →
:meth:`~repro.envs.vector.VectorEnv._step_vectorized` →
:meth:`~repro.rl.replay_buffer.ReplayBuffer.add_batch`, attributing
wall-clock seconds to the named stages of one lock-step.

Profiling is **off by default**.  Every instrumented callsite keeps a
``profiler`` attribute that is ``None`` unless explicitly attached (via
:meth:`RolloutEngine.set_profiler` or ``--profile`` on the train/serve
CLIs), so the disabled path costs one ``is None`` branch per stage — a few
nanoseconds against a lock-step measured in hundreds of microseconds.  The
instrumentation never touches the maths: enabling it must not change a
single trajectory bit (``tests/test_profiling.py`` pins this).

The canonical stages, in lock-step order:

=================  ====================================================
``noise-draw``      Exploration noise (engine) + per-env dynamics noise
                    draws (vector env).
``actor-forward``   The batched policy forward pass (``act_batch``).
``platform-pricing``  The FIXAR timing-model query for the batched
                    inference (cached per (platform, batch) pair).
``dynamics-kernel``  The batch-invariant physics kernel plus episode
                    bookkeeping.
``observe``         Observation assembly (including observation noise).
``info-build``      Per-step info construction (lazy after this PR —
                    mostly terminal-observation capture on done rows).
``buffer-write``    The replay-buffer insertion.
=================  ====================================================
"""

from __future__ import annotations

import functools
from time import perf_counter
from typing import Callable, Dict, Optional

__all__ = ["ROLLOUT_STAGES", "StageTimers"]

#: The stages the instrumented rollout hot path reports, in lock-step order.
ROLLOUT_STAGES = (
    "noise-draw",
    "actor-forward",
    "platform-pricing",
    "dynamics-kernel",
    "observe",
    "info-build",
    "buffer-write",
)


class StageTimers:
    """Accumulates wall-clock seconds (and call counts) per named stage.

    Instrumented code holds a local ``prof`` and brackets each stage with
    ``perf_counter()`` reads only when ``prof is not None``::

        prof = self.profiler
        if prof is not None:
            t0 = perf_counter()
        ...stage work...
        if prof is not None:
            prof.add("dynamics-kernel", perf_counter() - t0)

    Unknown stage names are accepted (the object is a generic accumulator);
    :data:`ROLLOUT_STAGES` lists the ones the rollout path emits.
    """

    __slots__ = ("totals", "counts")

    def __init__(self):
        self.totals: Dict[str, float] = {}
        self.counts: Dict[str, int] = {}

    # ------------------------------------------------------------------ #
    # Accumulation
    # ------------------------------------------------------------------ #
    def add(self, stage: str, seconds: float) -> None:
        """Credit ``seconds`` of wall clock (one call) to ``stage``."""
        totals = self.totals
        if stage in totals:
            totals[stage] += seconds
            self.counts[stage] += 1
        else:
            totals[stage] = seconds
            self.counts[stage] = 1

    def merge(self, other: "StageTimers") -> None:
        """Fold another accumulator's stages into this one."""
        for stage, seconds in other.totals.items():
            totals = self.totals
            if stage in totals:
                totals[stage] += seconds
                self.counts[stage] += other.counts[stage]
            else:
                totals[stage] = seconds
                self.counts[stage] = other.counts[stage]

    def reset(self) -> None:
        """Zero every stage."""
        self.totals.clear()
        self.counts.clear()

    def wrap(self, fn: Callable, stage: str) -> Callable:
        """A wrapper of ``fn`` that credits its wall clock to ``stage``.

        Used where code cannot be instrumented inline — e.g. the serving CLI
        times the policy's ``act_batch`` without touching the (deterministic,
        wall-clock-free) serving layer.
        """

        @functools.wraps(fn)
        def timed(*args, **kwargs):
            t0 = perf_counter()
            result = fn(*args, **kwargs)
            self.add(stage, perf_counter() - t0)
            return result

        return timed

    # ------------------------------------------------------------------ #
    # Readout
    # ------------------------------------------------------------------ #
    @property
    def total_seconds(self) -> float:
        """Sum of every stage's accumulated seconds."""
        return sum(self.totals.values())

    def snapshot(self) -> Dict[str, float]:
        """A point-in-time copy of the per-stage totals."""
        return dict(self.totals)

    def delta(self, snapshot: Dict[str, float]) -> Dict[str, float]:
        """Per-stage seconds accumulated since ``snapshot`` (zeros dropped)."""
        out = {}
        for stage, seconds in self.totals.items():
            gained = seconds - snapshot.get(stage, 0.0)
            if gained > 0.0:
                out[stage] = gained
        return out

    def as_dict(self) -> Dict[str, dict]:
        """``{stage: {"seconds": ..., "calls": ...}}`` for every stage."""
        return {
            stage: {"seconds": seconds, "calls": self.counts[stage]}
            for stage, seconds in self.totals.items()
        }

    def table(self, wall_seconds: Optional[float] = None) -> str:
        """A fixed-width per-stage breakdown, largest stage first.

        With ``wall_seconds`` the share column is computed against the full
        measured wall clock and an ``(untimed)`` remainder row accounts for
        the Python glue between stages; otherwise shares are of the timed
        total.
        """
        rows = sorted(self.totals.items(), key=lambda item: -item[1])
        timed = self.total_seconds
        denominator = wall_seconds if wall_seconds else timed
        lines = [
            f"{'stage':<18} {'seconds':>10} {'calls':>9} {'us/call':>9} {'share':>7}"
        ]
        for stage, seconds in rows:
            calls = self.counts[stage]
            per_call = seconds / calls * 1e6 if calls else 0.0
            share = seconds / denominator * 100.0 if denominator > 0 else 0.0
            lines.append(
                f"{stage:<18} {seconds:>10.4f} {calls:>9d} {per_call:>9.1f} "
                f"{share:>6.1f}%"
            )
        if wall_seconds and wall_seconds > timed:
            remainder = wall_seconds - timed
            share = remainder / wall_seconds * 100.0
            lines.append(
                f"{'(untimed)':<18} {remainder:>10.4f} {'-':>9} {'-':>9} "
                f"{share:>6.1f}%"
            )
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"StageTimers({self.totals!r})"
