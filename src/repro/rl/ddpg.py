"""Deep Deterministic Policy Gradient (DDPG) agent.

DDPG is the actor-critic algorithm the paper accelerates: a deterministic
actor maps states to continuous actions, a critic estimates Q-values, target
copies of both networks stabilise the bootstrapped temporal-difference
target, and both networks are optimised with Adam.

The implementation is deliberately explicit about its forward / backward /
weight-update phases: the FIXAR accelerator schedules exactly these phases
on its array cores (critic FP+BP+WU, then actor FP+BP+WU, then actor
inference for the next action), so the same structure is reused by the
accelerator simulator to count work.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence

import numpy as np

from ..nn import (
    Adam,
    MLP,
    Numerics,
    build_actor,
    build_critic,
    mse_loss,
    policy_gradient_loss,
)
from .replay_buffer import TransitionBatch

__all__ = ["DDPGConfig", "DDPGAgent", "batched_policy_actions"]


def batched_policy_actions(actor, states, noise=None) -> np.ndarray:
    """Saturated batched actor inference: forward, add noise, clip to ±1.

    The one shared implementation behind ``DDPGAgent.act_batch``,
    ``TD3Agent.act_batch``, and the collection workers'
    :class:`~repro.rl.workers.ActorPolicy` replicas — replica inference must
    match the learner's bit for bit, so the semantics live in exactly one
    place.
    """
    states = np.atleast_2d(np.asarray(states, dtype=np.float64))
    actions = actor.forward(states)
    if noise is not None:
        actions = actions + np.asarray(noise, dtype=np.float64).reshape(actions.shape)
    return np.clip(actions, -1.0, 1.0)


@dataclass(frozen=True)
class DDPGConfig:
    """Hyper-parameters of the DDPG agent (paper defaults)."""

    #: Discount factor for future rewards.
    gamma: float = 0.99
    #: Polyak averaging coefficient for the target networks.
    tau: float = 0.005
    #: Actor learning rate (paper: 1e-4).
    actor_learning_rate: float = 1e-4
    #: Critic learning rate (paper: 1e-4).
    critic_learning_rate: float = 1e-4
    #: Hidden layer sizes (paper: 400, 300).
    hidden_sizes: Sequence[int] = (400, 300)

    def __post_init__(self) -> None:
        if not 0.0 < self.gamma <= 1.0:
            raise ValueError(f"gamma must lie in (0, 1], got {self.gamma}")
        if not 0.0 < self.tau <= 1.0:
            raise ValueError(f"tau must lie in (0, 1], got {self.tau}")
        if self.actor_learning_rate <= 0 or self.critic_learning_rate <= 0:
            raise ValueError("learning rates must be positive")
        if len(self.hidden_sizes) == 0:
            raise ValueError("hidden_sizes must not be empty")


@dataclass
class UpdateMetrics:
    """Diagnostics returned by one training update."""

    critic_loss: float
    actor_loss: float
    mean_q: float
    mean_target_q: float
    extras: Dict[str, float] = field(default_factory=dict)


class DDPGAgent:
    """The paper's DDPG agent with pluggable numeric policy.

    Parameters
    ----------
    state_dim, action_dim:
        Environment dimensionalities.
    config:
        DDPG hyper-parameters.
    numerics:
        Numeric policy shared by the actor, critic, and their target copies.
        Defaults to full floating point.
    rng:
        Random generator for weight initialisation.
    """

    def __init__(
        self,
        state_dim: int,
        action_dim: int,
        config: Optional[DDPGConfig] = None,
        numerics: Optional[Numerics] = None,
        rng: Optional[np.random.Generator] = None,
    ):
        if state_dim <= 0 or action_dim <= 0:
            raise ValueError("state_dim and action_dim must be positive")
        self.state_dim = state_dim
        self.action_dim = action_dim
        self.config = config or DDPGConfig()
        self.numerics = numerics or Numerics()
        rng = rng or np.random.default_rng()

        hidden = tuple(self.config.hidden_sizes)
        self.actor: MLP = build_actor(state_dim, action_dim, hidden, rng=rng, numerics=self.numerics)
        self.critic: MLP = build_critic(state_dim, action_dim, hidden, rng=rng, numerics=self.numerics)
        self.target_actor: MLP = build_actor(state_dim, action_dim, hidden, rng=rng, numerics=self.numerics)
        self.target_critic: MLP = build_critic(state_dim, action_dim, hidden, rng=rng, numerics=self.numerics)
        self.target_actor.copy_from(self.actor)
        self.target_critic.copy_from(self.critic)

        project = self.numerics.project_weight
        self.actor_optimizer = Adam(
            self.actor.parameters(), self.config.actor_learning_rate, project=project
        )
        self.critic_optimizer = Adam(
            self.critic.parameters(), self.config.critic_learning_rate, project=project
        )
        self.update_count = 0

    # ------------------------------------------------------------------ #
    # Acting
    # ------------------------------------------------------------------ #
    def act(self, state: np.ndarray, noise: Optional[np.ndarray] = None) -> np.ndarray:
        """Actor inference for a single state, with optional exploration noise.

        The result is clipped into the ±1 action range, matching the tanh
        output bound and the accelerator's saturation of the noisy action.
        """
        state = np.asarray(state, dtype=np.float64).reshape(1, -1)
        action = self.actor.forward(state)[0]
        if noise is not None:
            action = action + np.asarray(noise, dtype=np.float64).ravel()
        return np.clip(action, -1.0, 1.0)

    def act_batch(self, states: np.ndarray, noise: Optional[np.ndarray] = None) -> np.ndarray:
        """Actor inference for a batch of states in one forward pass.

        With ``noise`` (one row per state) this is the batched counterpart of
        :meth:`act`: the noise is added before the saturating clip, so a
        single-row call reproduces ``act`` bit for bit.
        """
        return batched_policy_actions(self.actor, states, noise)

    def q_value(self, states: np.ndarray, actions: np.ndarray) -> np.ndarray:
        """Critic evaluation of state-action pairs."""
        states = np.atleast_2d(np.asarray(states, dtype=np.float64))
        actions = np.atleast_2d(np.asarray(actions, dtype=np.float64))
        return self.critic.forward(np.concatenate([states, actions], axis=1))

    # ------------------------------------------------------------------ #
    # Learning
    # ------------------------------------------------------------------ #
    def update(self, batch: TransitionBatch) -> UpdateMetrics:
        """One DDPG update from a replay batch (critic, then actor, then targets)."""
        gamma = self.config.gamma

        # ----- Temporal-difference target from the target networks -------- #
        next_actions = self.target_actor.forward(batch.next_states)
        target_inputs = np.concatenate([batch.next_states, next_actions], axis=1)
        next_q = self.target_critic.forward(target_inputs)
        target_q = batch.rewards + gamma * (1.0 - batch.dones) * next_q

        # ----- Critic regression (FP + BP + WU on the critic network) ----- #
        self.critic.zero_grad()
        critic_inputs = np.concatenate([batch.states, batch.actions], axis=1)
        q_values = self.critic.forward(critic_inputs)
        critic_loss, critic_grad = mse_loss(q_values, target_q)
        self.critic.backward(critic_grad)
        self.critic_optimizer.step(self.critic.gradients())

        # ----- Actor policy gradient (FP + BP + WU on the actor network) -- #
        self.actor.zero_grad()
        self.critic.zero_grad()
        predicted_actions = self.actor.forward(batch.states)
        policy_inputs = np.concatenate([batch.states, predicted_actions], axis=1)
        policy_q = self.critic.forward(policy_inputs)
        actor_loss, q_grad = policy_gradient_loss(policy_q)
        input_grad = self.critic.backward(q_grad)
        action_grad = input_grad[:, self.state_dim:]
        self.actor.backward(action_grad)
        self.actor_optimizer.step(self.actor.gradients())
        # The critic gradients accumulated while differentiating through it
        # belong to the actor's objective; they are discarded on the next
        # zero_grad rather than applied.

        # ----- Target network soft update ---------------------------------- #
        self.target_actor.soft_update_from(self.actor, self.config.tau)
        self.target_critic.soft_update_from(self.critic, self.config.tau)

        self.update_count += 1
        return UpdateMetrics(
            critic_loss=float(critic_loss),
            actor_loss=float(actor_loss),
            mean_q=float(np.mean(q_values)),
            mean_target_q=float(np.mean(target_q)),
        )

    # ------------------------------------------------------------------ #
    # Model accounting (consumed by the accelerator memory/timing models)
    # ------------------------------------------------------------------ #
    def network_shapes(self) -> Dict[str, list]:
        """Dense-layer shapes of the actor and critic networks."""
        return {
            "actor": self.actor.layer_shapes,
            "critic": self.critic.layer_shapes,
        }

    def parameter_count(self) -> int:
        """Total trainable parameters across actor and critic."""
        return self.actor.parameter_count + self.critic.parameter_count

    def model_size_bytes(self, bits_per_weight: int = 32) -> int:
        """Model footprint (actor + critic) at the given weight precision."""
        return (
            self.actor.model_size_bytes(bits_per_weight)
            + self.critic.model_size_bytes(bits_per_weight)
        )
