"""Plain-text report formatting for tables and figure series.

The benchmark harness prints the same rows and series the paper reports;
these helpers render lists of dictionaries as aligned text tables and
learning curves / batch sweeps as compact series listings, without any
plotting dependency.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence

__all__ = ["format_table", "format_series", "format_breakdown", "format_curve"]


def _format_value(value: object, precision: int) -> str:
    if value is None:
        return "-"
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, float):
        return f"{value:.{precision}f}"
    return str(value)


def format_table(rows: Sequence[Mapping[str, object]], precision: int = 1, title: Optional[str] = None) -> str:
    """Render a list of dict rows as an aligned text table."""
    if not rows:
        return title or ""
    columns: List[str] = []
    for row in rows:
        for key in row:
            if key not in columns:
                columns.append(key)
    rendered: List[List[str]] = [
        [_format_value(row.get(column), precision) for column in columns] for row in rows
    ]
    widths = [
        max(len(column), *(len(line[index]) for line in rendered))
        for index, column in enumerate(columns)
    ]
    lines: List[str] = []
    if title:
        lines.append(title)
    header = " | ".join(column.ljust(width) for column, width in zip(columns, widths))
    lines.append(header)
    lines.append("-+-".join("-" * width for width in widths))
    for line in rendered:
        lines.append(" | ".join(cell.ljust(width) for cell, width in zip(line, widths)))
    return "\n".join(lines)


def format_series(series: Mapping[object, float], name: str = "", precision: int = 1) -> str:
    """Render an ``x → y`` mapping (e.g. batch size → IPS) as one line."""
    parts = [f"{x}: {_format_value(y, precision)}" for x, y in series.items()]
    prefix = f"{name}  " if name else ""
    return prefix + ", ".join(parts)


def format_breakdown(breakdown: Mapping[str, float], unit: str = "ms", scale: float = 1e3, precision: int = 2) -> str:
    """Render a per-component breakdown (e.g. the Fig. 9a time components)."""
    parts = [f"{key}={value * scale:.{precision}f}{unit}" for key, value in breakdown.items()]
    total = sum(breakdown.values()) * scale
    parts.append(f"total={total:.{precision}f}{unit}")
    return ", ".join(parts)


def format_curve(timesteps: Iterable[int], returns: Iterable[float], label: str = "", precision: int = 1) -> str:
    """Render a learning curve as ``label: t1:r1 t2:r2 …``."""
    points = " ".join(
        f"{int(t)}:{_format_value(float(r), precision)}" for t, r in zip(timesteps, returns)
    )
    return f"{label}: {points}" if label else points


def rows_to_csv(rows: Sequence[Mapping[str, object]]) -> str:
    """Render dict rows as CSV text (no external dependency)."""
    if not rows:
        return ""
    columns: List[str] = []
    for row in rows:
        for key in row:
            if key not in columns:
                columns.append(key)
    lines = [",".join(columns)]
    for row in rows:
        lines.append(",".join(str(row.get(column, "")) for column in columns))
    return "\n".join(lines)


def summarize_speedups(candidate: Dict[int, float], baseline: Dict[int, float]) -> Dict[int, float]:
    """Per-batch speedup of one IPS sweep over another."""
    speedups: Dict[int, float] = {}
    for batch, value in candidate.items():
        if batch in baseline and baseline[batch] > 0:
            speedups[batch] = value / baseline[batch]
    return speedups
