"""The FIXAR system: the paper's contribution assembled end to end.

:class:`FixarSystem` wires together everything the platform needs for one
benchmark: the environment (host CPU side), the DDPG agent under a numeric
regime, the Algorithm 1 QAT controller, the FPGA accelerator simulator with
the agent's networks resident in its on-chip memory, and the platform /
baseline timing models.  On top of that it provides the experiment drivers
used by the benchmark harness:

* :meth:`train` — run quantization-aware training and return the learning
  curve (Fig. 7);
* :meth:`throughput_report` — platform and accelerator throughput, time
  breakdowns, and the CPU-GPU baseline (Figs. 8–10);
* :meth:`headline_summary` — the abstract's headline numbers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..accelerator import FixarAccelerator, PrecisionMode, ResourceModel
from ..envs import make as make_env
from ..nn import DynamicFixedPointNumerics, make_numerics
from ..platform import (
    PAPER_BATCH_SIZES,
    AcceleratorPool,
    CoSimulationResult,
    CpuGpuPlatform,
    FixarPlatform,
    PlatformCoSimulation,
    WorkloadSpec,
    average_ips,
    speedup,
)
from ..rl import (
    DDPGAgent,
    QATController,
    TrainingResult,
    train,
)
from .comparison import comparison_table, fixar_entry
from .config import FixarConfig

__all__ = ["FixarSystem", "ThroughputReport"]


@dataclass
class ThroughputReport:
    """Throughput and efficiency of FIXAR vs the CPU-GPU baseline."""

    benchmark: str
    batch_sizes: List[int]
    platform_ips: Dict[int, float] = field(default_factory=dict)
    baseline_platform_ips: Dict[int, float] = field(default_factory=dict)
    accelerator_ips: Dict[int, float] = field(default_factory=dict)
    gpu_accelerator_ips: Dict[int, float] = field(default_factory=dict)
    accelerator_ips_per_watt: Dict[int, float] = field(default_factory=dict)
    gpu_ips_per_watt: Dict[int, float] = field(default_factory=dict)
    time_breakdowns: Dict[int, Dict[str, float]] = field(default_factory=dict)
    time_ratios: Dict[int, Dict[str, float]] = field(default_factory=dict)

    @property
    def platform_speedups(self) -> Dict[int, float]:
        """FIXAR platform speedup over the CPU-GPU platform per batch size."""
        return {
            batch: speedup(self.platform_ips[batch], self.baseline_platform_ips[batch])
            for batch in self.batch_sizes
        }

    @property
    def accelerator_speedups(self) -> Dict[int, float]:
        """FIXAR accelerator speedup over the GPU per batch size."""
        return {
            batch: speedup(self.accelerator_ips[batch], self.gpu_accelerator_ips[batch])
            for batch in self.batch_sizes
        }

    def summary(self) -> Dict[str, float]:
        """Aggregate numbers in the style of the paper's abstract."""
        mean_platform = average_ips(list(self.platform_ips.values()))
        mean_accelerator = average_ips(list(self.accelerator_ips.values()))
        mean_efficiency = average_ips(list(self.accelerator_ips_per_watt.values()))
        mean_platform_speedup = float(np.mean(list(self.platform_speedups.values())))
        mean_accelerator_speedup = float(np.mean(list(self.accelerator_speedups.values())))
        mean_gpu_efficiency = average_ips(list(self.gpu_ips_per_watt.values()))
        return {
            "platform_ips": mean_platform,
            "accelerator_ips": mean_accelerator,
            "accelerator_ips_per_watt": mean_efficiency,
            "platform_speedup_vs_cpu_gpu": mean_platform_speedup,
            "accelerator_speedup_vs_gpu": mean_accelerator_speedup,
            "efficiency_gain_vs_gpu": mean_efficiency / mean_gpu_efficiency,
        }


class FixarSystem:
    """A complete FIXAR platform instance for one benchmark."""

    def __init__(self, config: Optional[FixarConfig] = None):
        self.config = config or FixarConfig()
        rng = np.random.default_rng(self.config.seed)

        # Host side: the environment the CPU emulates.
        self.env = make_env(self.config.benchmark, seed=self.config.seed)
        self.eval_env = make_env(self.config.benchmark, seed=None if self.config.seed is None else self.config.seed + 1)

        # Numeric regime and agent.
        self.numerics = make_numerics(self.config.numeric_regime, num_bits=self.config.qat.num_bits)
        self.agent = DDPGAgent(
            self.env.state_dim,
            self.env.action_dim,
            config=self.config.ddpg,
            numerics=self.numerics,
            rng=rng,
        )

        # Algorithm 1 controller (only meaningful for the dynamic regime).
        # A configured precision *policy* (``training.precision``) replaces
        # the controller: train() resolves it over the shared numerics, so
        # building one here would configure two competing drivers.
        self.qat_controller: Optional[QATController] = None
        if (
            isinstance(self.numerics, DynamicFixedPointNumerics)
            and self.config.training.precision is None
        ):
            self.qat_controller = QATController(self.numerics, self.config.qat)

        # FPGA accelerator with the agent's networks resident on chip.
        self.accelerator = FixarAccelerator(self.config.accelerator)
        self.accelerator.load_agent(self.agent)

        # Platform timing models.
        self.workload = WorkloadSpec(
            benchmark=self.env.name,
            state_dim=self.env.state_dim,
            action_dim=self.env.action_dim,
            hidden_sizes=tuple(self.config.ddpg.hidden_sizes),
        )
        self.platform = FixarPlatform(self.workload, self.config.accelerator)
        self.baseline = CpuGpuPlatform()
        self.resources = ResourceModel(self.config.accelerator)

    # ------------------------------------------------------------------ #
    # Training (Fig. 7)
    # ------------------------------------------------------------------ #
    def train(
        self, label: Optional[str] = None, profiler=None
    ) -> TrainingResult:
        """Run quantization-aware DDPG training for this system's regime.

        When the QAT switch fires, the accelerator's PE datapaths are
        reconfigured to the half-precision mode so subsequent timing queries
        reflect the doubled streaming rate.

        With ``config.training.devices > 1`` the run is priced on an
        :class:`~repro.platform.AcceleratorPool` built over this system's
        platform: the rollout engine's batched inferences shard across the
        pool's collection devices (the training numerics are unchanged —
        only the modelled platform accounting differs).

        ``profiler`` optionally attaches a
        :class:`~repro.rl.StageTimers` accumulator to the collection hot
        path (the CLI's ``--profile``); the trajectories are unaffected.
        """
        platform_hook = None
        if self.config.training.devices > 1:
            platform_hook = AcceleratorPool(
                self.platform,
                self.config.training.devices,
                placement=self.config.training.placement,
            )
        result = train(
            self.env,
            self.agent,
            self.config.training,
            eval_env=self.eval_env,
            qat_controller=self.qat_controller,
            label=label or self.config.numeric_regime,
            platform=platform_hook,
            profiler=profiler,
        )
        if result.qat_event is not None:
            self.accelerator.set_precision(PrecisionMode.HALF)
            self.platform.half_precision = True
        # Refresh the weights resident in the accelerator memory.
        self.accelerator.load_agent(self.agent)
        return result

    def cosimulate(self) -> CoSimulationResult:
        """Run a trace-driven co-simulation of this system's training config.

        Every real timestep of the (reduced-scale) training loop is priced
        with the platform timing models, including the effect of the QAT
        precision switch on the accelerator time; the same trace is priced on
        the CPU-GPU baseline for comparison.
        """
        cosim = PlatformCoSimulation(
            self.env,
            self.agent,
            self.platform,
            self.config.training,
            qat_controller=self.qat_controller,
            baseline=self.baseline,
        )
        result = cosim.run()
        if result.precision_switch_timestep is not None:
            self.accelerator.set_precision(PrecisionMode.HALF)
        self.accelerator.load_agent(self.agent)
        return result

    # ------------------------------------------------------------------ #
    # Throughput and efficiency (Figs. 8–10)
    # ------------------------------------------------------------------ #
    def throughput_report(self, batch_sizes: Sequence[int] = PAPER_BATCH_SIZES) -> ThroughputReport:
        """Platform / accelerator throughput and efficiency vs the baseline."""
        report = ThroughputReport(benchmark=self.env.name, batch_sizes=list(batch_sizes))
        for batch in batch_sizes:
            report.platform_ips[batch] = self.platform.platform_ips(batch)
            report.baseline_platform_ips[batch] = self.baseline.ips(self.env.name, batch)
            report.accelerator_ips[batch] = self.platform.accelerator_ips(batch)
            report.gpu_accelerator_ips[batch] = self.baseline.gpu.ips(batch)
            report.accelerator_ips_per_watt[batch] = self.platform.accelerator_ips_per_watt(batch)
            report.gpu_ips_per_watt[batch] = self.baseline.gpu.ips_per_watt(batch)
            report.time_breakdowns[batch] = self.platform.timestep_breakdown(batch)
            report.time_ratios[batch] = self.platform.timestep_ratio(batch)
        return report

    def resource_table(self) -> List[Dict[str, object]]:
        """Table I for the configured accelerator."""
        return self.resources.table()

    def comparison_table(self) -> List[Dict[str, object]]:
        """Table II using this accelerator's modelled peak performance."""
        peak_ips = max(
            self.platform.accelerator_ips(batch) for batch in PAPER_BATCH_SIZES
        )
        efficiency = max(
            self.platform.accelerator_ips_per_watt(batch) for batch in PAPER_BATCH_SIZES
        )
        dsp = self.resources.total().dsp
        entry = fixar_entry(
            peak_ips=peak_ips,
            energy_efficiency=efficiency,
            dsp_count=dsp,
            clock_mhz=self.config.accelerator.clock_hz / 1e6,
        )
        return comparison_table(entry)

    def headline_summary(self, batch_sizes: Sequence[int] = PAPER_BATCH_SIZES) -> Dict[str, float]:
        """The abstract's headline numbers for this benchmark."""
        return self.throughput_report(batch_sizes).summary()
