"""The FIXAR core: configuration, the assembled system, and reporting."""

from .comparison import (
    AcceleratorEntry,
    FA3C_ASPLOS19,
    PPO_FCCM20,
    comparison_table,
    fixar_entry,
    normalize_peak_performance,
)
from .config import FixarConfig, paper_config, smoke_test_config
from .fixar import FixarSystem, ThroughputReport
from .report import (
    format_breakdown,
    format_curve,
    format_series,
    format_table,
    rows_to_csv,
    summarize_speedups,
)

__all__ = [
    "FixarConfig",
    "paper_config",
    "smoke_test_config",
    "FixarSystem",
    "ThroughputReport",
    "AcceleratorEntry",
    "FA3C_ASPLOS19",
    "PPO_FCCM20",
    "fixar_entry",
    "comparison_table",
    "normalize_peak_performance",
    "format_table",
    "format_series",
    "format_breakdown",
    "format_curve",
    "rows_to_csv",
    "summarize_speedups",
]
