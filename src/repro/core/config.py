"""Top-level configuration of a FIXAR experiment.

Bundles every knob of the reproduction — benchmark, DDPG hyper-parameters,
the QAT schedule, the training-loop scale, and the accelerator / platform
parameters — into one dataclass, with presets for the paper's configuration
and for a reduced-scale configuration that finishes in CI time.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional, Tuple

from ..accelerator import AcceleratorConfig
from ..rl.ddpg import DDPGConfig
from ..rl.qat import QATSchedule
from ..rl.training import TrainingConfig

__all__ = ["FixarConfig", "paper_config", "smoke_test_config"]


@dataclass(frozen=True)
class FixarConfig:
    """Everything needed to instantiate and run a FIXAR experiment."""

    #: Benchmark environment name (HalfCheetah, Hopper, or Swimmer).
    benchmark: str = "HalfCheetah"
    #: DDPG hyper-parameters.
    ddpg: DDPGConfig = field(default_factory=DDPGConfig)
    #: Algorithm 1 schedule (quantization bits and delay).
    qat: QATSchedule = field(default_factory=QATSchedule)
    #: Training-loop configuration.
    training: TrainingConfig = field(default_factory=TrainingConfig)
    #: Accelerator structural parameters.
    accelerator: AcceleratorConfig = field(default_factory=AcceleratorConfig)
    #: Numeric regime name ("fixar-dynamic", "float32", "fixed32", "fixed16").
    numeric_regime: str = "fixar-dynamic"
    #: Random seed for network initialisation.
    seed: Optional[int] = 0

    def with_benchmark(self, benchmark: str) -> "FixarConfig":
        """A copy of this configuration targeting another benchmark."""
        return replace(self, benchmark=benchmark)

    def with_regime(self, regime: str) -> "FixarConfig":
        """A copy of this configuration using another numeric regime."""
        return replace(self, numeric_regime=regime)

    def with_training(self, **kwargs) -> "FixarConfig":
        """A copy with training-loop fields overridden."""
        return replace(self, training=replace(self.training, **kwargs))

    def with_qat(self, **kwargs) -> "FixarConfig":
        """A copy with QAT schedule fields overridden."""
        return replace(self, qat=replace(self.qat, **kwargs))


def paper_config(benchmark: str = "HalfCheetah") -> FixarConfig:
    """The paper's configuration: 1 M timesteps, QAT delay at mid-training.

    The paper does not state the exact quantization delay; half of the total
    training budget matches Fig. 7's switch point.
    """
    total_timesteps = 1_000_000
    return FixarConfig(
        benchmark=benchmark,
        ddpg=DDPGConfig(),
        qat=QATSchedule(num_bits=16, quantization_delay=total_timesteps // 2),
        training=TrainingConfig(
            total_timesteps=total_timesteps,
            warmup_timesteps=10_000,
            batch_size=64,
            buffer_capacity=1_000_000,
            evaluation_interval=5_000,
            evaluation_episodes=10,
        ),
        accelerator=AcceleratorConfig(),
        numeric_regime="fixar-dynamic",
    )


def smoke_test_config(
    benchmark: str = "HalfCheetah",
    total_timesteps: int = 2_000,
    batch_size: int = 32,
    hidden_sizes: Tuple[int, int] = (64, 48),
) -> FixarConfig:
    """A reduced-scale configuration for tests, examples, and CI benchmarks.

    Keeps every moving part of the paper's pipeline (QAT switch included)
    while shrinking the networks and the timestep budget so a full run takes
    seconds instead of days.
    """
    return FixarConfig(
        benchmark=benchmark,
        ddpg=DDPGConfig(hidden_sizes=hidden_sizes, actor_learning_rate=1e-3, critic_learning_rate=1e-3),
        qat=QATSchedule(num_bits=16, quantization_delay=total_timesteps // 2),
        training=TrainingConfig(
            total_timesteps=total_timesteps,
            warmup_timesteps=min(200, total_timesteps // 4),
            batch_size=batch_size,
            buffer_capacity=max(10_000, total_timesteps),
            evaluation_interval=max(1, total_timesteps // 4),
            evaluation_episodes=3,
        ),
        accelerator=AcceleratorConfig(),
        numeric_regime="fixar-dynamic",
    )
