"""Comparison with prior FPGA DRL accelerators (reproduces Table II).

The paper compares FIXAR against FA3C (ASPLOS'19, an A3C accelerator for
discrete action spaces) and the FCCM'20 PPO accelerator.  Because the three
designs train networks of very different sizes, the table normalises each
design's peak performance to FIXAR's network size (IPS × network_size /
FIXAR_network_size), which is how the published 12849.1 and 6823.2 IPS
figures are obtained from the raw 2550.0 and 15286.8 IPS numbers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

__all__ = [
    "AcceleratorEntry",
    "FA3C_ASPLOS19",
    "PPO_FCCM20",
    "fixar_entry",
    "normalize_peak_performance",
    "comparison_table",
]


@dataclass(frozen=True)
class AcceleratorEntry:
    """One row of the Table II comparison."""

    name: str
    platform: str
    clock_mhz: float
    algorithm: str
    task_environment: str
    precision: str
    dsp_count: int
    network_size_kb: float
    peak_ips: float
    energy_efficiency_ips_per_watt: Optional[float] = None

    def normalized_peak_ips(self, reference_network_kb: float) -> float:
        """Peak IPS normalised to the reference design's network size."""
        return normalize_peak_performance(self.peak_ips, self.network_size_kb, reference_network_kb)


def normalize_peak_performance(peak_ips: float, network_kb: float, reference_network_kb: float) -> float:
    """Scale peak IPS by the ratio of network sizes.

    A design processing a network ``k`` times larger than the reference is
    doing ``k`` times more work per inference, so its throughput is credited
    accordingly.
    """
    if peak_ips < 0:
        raise ValueError("peak_ips must be non-negative")
    if network_kb <= 0 or reference_network_kb <= 0:
        raise ValueError("network sizes must be positive")
    return peak_ips * network_kb / reference_network_kb


#: FA3C (Cho et al., ASPLOS 2019): A3C on a Xilinx VCU1525, Atari (discrete).
FA3C_ASPLOS19 = AcceleratorEntry(
    name="FA3C (ASPLOS'19)",
    platform="Xilinx VCU1525",
    clock_mhz=180.0,
    algorithm="Actor-Critic (A3C)",
    task_environment="Discrete",
    precision="Floating 32-bit",
    dsp_count=2348,
    network_size_kb=2592.0,
    peak_ips=2550.0,
    energy_efficiency_ips_per_watt=141.7,
)

#: Meng et al. (FCCM 2020): PPO on a Xilinx U200, continuous control.
PPO_FCCM20 = AcceleratorEntry(
    name="PPO accelerator (FCCM'20)",
    platform="Xilinx U200",
    clock_mhz=285.0,
    algorithm="Actor-Critic (PPO)",
    task_environment="Continuous",
    precision="Floating 32-bit",
    dsp_count=3744,
    network_size_kb=229.6,
    peak_ips=15286.8,
    energy_efficiency_ips_per_watt=None,
)

#: Paper-reported FIXAR row constants.
FIXAR_NETWORK_SIZE_KB = 514.4
FIXAR_PAPER_PEAK_IPS = 38779.8
FIXAR_PAPER_EFFICIENCY = 2638.0


def fixar_entry(
    peak_ips: float = FIXAR_PAPER_PEAK_IPS,
    energy_efficiency: float = FIXAR_PAPER_EFFICIENCY,
    dsp_count: int = 2302,
    clock_mhz: float = 164.0,
    network_size_kb: float = FIXAR_NETWORK_SIZE_KB,
) -> AcceleratorEntry:
    """The FIXAR row, optionally fed with values measured from the simulator."""
    return AcceleratorEntry(
        name="FIXAR",
        platform="Xilinx U50",
        clock_mhz=clock_mhz,
        algorithm="Actor-Critic (DDPG)",
        task_environment="Continuous",
        precision="Fixed 32, 16-bit",
        dsp_count=dsp_count,
        network_size_kb=network_size_kb,
        peak_ips=peak_ips,
        energy_efficiency_ips_per_watt=energy_efficiency,
    )


def comparison_table(fixar: Optional[AcceleratorEntry] = None) -> List[Dict[str, object]]:
    """Table II as a list of rows, with network-size-normalised peak IPS."""
    fixar = fixar or fixar_entry()
    entries = [FA3C_ASPLOS19, PPO_FCCM20, fixar]
    rows: List[Dict[str, object]] = []
    for entry in entries:
        rows.append(
            {
                "Design": entry.name,
                "Platform": entry.platform,
                "Clock (MHz)": entry.clock_mhz,
                "Algorithm": entry.algorithm,
                "Task Env.": entry.task_environment,
                "Precision": entry.precision,
                "DSP": entry.dsp_count,
                "Network Size (KB)": entry.network_size_kb,
                "Peak Perf. (IPS)": round(entry.peak_ips, 1),
                "Normalized Peak Perf. (IPS)": round(
                    entry.normalized_peak_ips(fixar.network_size_kb), 1
                ),
                "Energy Efficiency (IPS/W)": (
                    round(entry.energy_efficiency_ips_per_watt, 1)
                    if entry.energy_efficiency_ips_per_watt is not None
                    else None
                ),
            }
        )
    return rows
