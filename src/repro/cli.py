"""Command-line interface for the FIXAR reproduction.

Five sub-commands cover the common workflows:

* ``train``      — quantization-aware training on a benchmark (optionally
  saving a checkpoint), printing the learning curve;
* ``serve``      — policy serving through the dynamic batcher: a seeded
  synthetic load, an SLO-bounded flush plan priced on the platform model,
  and the modelled QPS/p50/p99 report (optionally restoring a checkpoint);
* ``throughput`` — the Fig. 8/9/10 throughput and efficiency report for a
  benchmark's workload;
* ``resources``  — the Table I resource report (with optional design-space
  overrides for core count and array geometry);
* ``compare``    — the Table II comparison against prior FPGA accelerators.

Installed as the ``fixar-repro`` console script; also runnable with
``python -m repro.cli``.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

from .accelerator import AcceleratorConfig, PowerModel, ResourceModel, TimingModel
from .core import (
    FixarSystem,
    comparison_table,
    fixar_entry,
    format_breakdown,
    format_curve,
    format_series,
    format_table,
    smoke_test_config,
)
from .envs import BENCHMARK_SUITE
from .platform import (
    PAPER_BATCH_SIZES,
    AcceleratorPool,
    CpuGpuPlatform,
    FixarPlatform,
    WorkloadSpec,
)
from .rl import PRECISION_POLICIES, StageTimers, save_agent

__all__ = ["build_parser", "main"]

#: ``TrainingConfig`` fields whose CLI flag is not the mechanical
#: ``--field-name`` spelling.  The ``config-cli-parity`` lint rule reads
#: this mapping statically, so renaming a flag without updating it fails CI.
CONFIG_FLAG_ALIASES = {
    "total_timesteps": "--timesteps",
    "precision": "--precision-policy",
}

#: ``TrainingConfig`` fields deliberately not exposed as CLI flags, with
#: the reason.  The ``config-cli-parity`` lint rule treats these as the
#: documented exclusion list; removing a field's entry without adding its
#: flag fails CI, and stale entries are flagged too.
CONFIG_FIELDS_WITHOUT_FLAGS = {
    "warmup_timesteps": "derived from --timesteps by smoke_test_config (capped quarter of the budget)",
    "buffer_capacity": "derived from --timesteps by smoke_test_config (never smaller than the run)",
    "evaluation_interval": "derived from --timesteps by smoke_test_config (quarter-budget curve points)",
    "evaluation_episodes": "preset-owned: 3 episodes keep CI-scale runs fast, 10 is the paper preset",
    "exploration_noise": "paper constant (sigma 0.1); the presets own it across every regime",
}

#: ``ServingConfig`` fields whose ``serve`` flag is not the mechanical
#: ``--field-name`` spelling (same ``config-cli-parity`` contract as the
#: training pair above).
SERVING_FLAG_ALIASES = {
    "num_requests": "--requests",
    "slo_seconds": "--slo-ms",
}

#: ``ServingConfig`` fields deliberately not exposed as ``serve`` flags.
SERVING_FIELDS_WITHOUT_FLAGS = {
    "timeout_seconds": "derived from --slo-ms minus the batch-cap flush's service time (timeout-or-full)",
}


def _positive_int(value: str) -> int:
    """Argument type for counts that must be >= 1 (fail at the CLI boundary).

    Values below 1 used to surface as deep ``VectorEnv``/engine errors; the
    parser is the right place to reject them with a readable message.
    """
    try:
        number = int(value)
    except ValueError:
        raise argparse.ArgumentTypeError(f"expected an integer, got {value!r}") from None
    if number < 1:
        raise argparse.ArgumentTypeError(f"expected a positive integer, got {number}")
    return number


def _non_negative_int(value: str) -> int:
    """Argument type for counts that may be 0 (e.g. a disabled pipeline)."""
    try:
        number = int(value)
    except ValueError:
        raise argparse.ArgumentTypeError(f"expected an integer, got {value!r}") from None
    if number < 0:
        raise argparse.ArgumentTypeError(f"expected a non-negative integer, got {number}")
    return number


#: Valid ``--assignment`` forms, enumerated by the rejection message.
_ASSIGNMENT_CHOICES = ("round-robin", "balanced", "Benchmark=device,... mapping")


def _assignment_spec(value: str):
    """Argument type for ``--assignment``: policy name or affinity mapping.

    Accepts ``round-robin`` / ``balanced`` (the registered
    ``DeviceAssignmentPolicy`` names) or an explicit per-benchmark device
    mapping ``Benchmark=device,...`` (e.g. ``Hopper=0,HalfCheetah=1``).
    Rejections happen at the parser boundary and enumerate the valid
    choices, consistent with the positive-int validators above.
    """
    text = value.strip()
    if text in ("round-robin", "balanced"):
        return text
    if "=" not in text:
        raise argparse.ArgumentTypeError(
            f"invalid assignment {value!r}; choose from "
            f"{', '.join(repr(choice) for choice in _ASSIGNMENT_CHOICES)}"
        )
    mapping = {}
    for raw_entry in text.split(","):
        entry = raw_entry.strip()
        name, separator, device = entry.partition("=")
        name = name.strip()
        device = device.strip()
        if not separator or not name or not device:
            raise argparse.ArgumentTypeError(
                f"invalid assignment entry {entry!r}; the mapping form is "
                "Benchmark=device,... (or choose 'round-robin'/'balanced')"
            )
        try:
            mapping[name] = int(device)
        except ValueError:
            raise argparse.ArgumentTypeError(
                f"device of assignment entry {entry!r} must be an integer "
                "device index (the mapping form is Benchmark=device,...)"
            ) from None
    return mapping


def build_parser() -> argparse.ArgumentParser:
    """The top-level argument parser with all sub-commands."""
    parser = argparse.ArgumentParser(
        prog="fixar-repro",
        description="FIXAR fixed-point deep reinforcement learning platform (reproduction)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    train = subparsers.add_parser("train", help="run quantization-aware training")
    train.add_argument("--benchmark", choices=BENCHMARK_SUITE, default="HalfCheetah")
    train.add_argument("--timesteps", type=int, default=3_000)
    train.add_argument("--batch-size", type=int, default=64)
    train.add_argument("--num-envs", type=_positive_int, default=1,
                       help="environments rolled out in lock-step with batched "
                            "actor inference (1 = the paper's scalar loop)")
    train.add_argument("--num-workers", type=_positive_int, default=1,
                       help="collection workers, each owning its own VectorEnv of "
                            "--num-envs environments (seeded seed + worker*num_envs + i) "
                            "and an actor replica refreshed every --sync-interval steps; "
                            "workers are scheduled deterministically so runs stay "
                            "reproducible (1 = the single-engine loop)")
    train.add_argument("--sync-interval", type=_positive_int, default=1,
                       help="environment steps between actor-weight broadcasts to "
                            "the collection workers (only meaningful with "
                            "--num-workers > 1)")
    train.add_argument("--pipeline-depth", type=_non_negative_int, default=0,
                       help="rounds the collector fleet may run ahead of the "
                            "learner (the pipelined training schedule's bounded "
                            "staleness window; 0 = the sequential schedule, "
                            "bit-exact with the pre-pipeline loop)")
    train.add_argument("--fleet", type=str, default=None, metavar="SPEC",
                       help="heterogeneous collector fleet spec "
                            "'Benchmark[:count[:num_envs]],...' (e.g. "
                            "'HalfCheetah:2:16,Hopper:2:8'): each entry "
                            "contributes count workers of that benchmark, "
                            "stepping num_envs environments in lock-step "
                            "(default: --num-envs), with one learner agent and "
                            "replay buffer per benchmark sharing one numerics "
                            "object / QAT schedule; overrides --benchmark and "
                            "replaces --num-workers as the fleet sizing")
    train.add_argument("--schedule",
                       choices=("sequential", "pipelined", "weighted", "adaptive"),
                       default=None,
                       help="round-scheduling policy (default: resolved from "
                            "--pipeline-depth — 0 is sequential, otherwise "
                            "pipelined); 'weighted' allocates extra collection "
                            "lock-steps per round to fleet benchmarks with "
                            "cheaper modelled host+inference chains (the "
                            "throughput-weighted schedule, priced on the "
                            "modelled platform); 'adaptive' additionally "
                            "re-prices those lock-step weights when a "
                            "precision switch changes the modelled platform "
                            "(pair with --precision-policy)")
    train.add_argument("--devices", type=_positive_int, default=1,
                       help="accelerators in the device pool serving the run "
                            "(1 = the single-FPGA path); fleet benchmark "
                            "groups are dealt over the pool's collection "
                            "devices (round-robin by default) and a wide "
                            "homogeneous batch shards across them — devices "
                            "change only the modelled pricing, never the "
                            "training numerics")
    train.add_argument("--placement", choices=("colocated", "disaggregated"),
                       default="colocated",
                       help="where the learners' update streams run: "
                            "'colocated' shares each group's collection "
                            "device, 'disaggregated' dedicates the pool's "
                            "last device to updates (needs --devices >= 2)")
    train.add_argument("--assignment", type=_assignment_spec, default=None,
                       metavar="POLICY|MAPPING",
                       help="device-assignment policy for fleet benchmark "
                            "groups on a --devices pool: 'round-robin' "
                            "(spec-order dealing, the default), 'balanced' "
                            "(greedy modelled-load balancing), or an "
                            "explicit affinity mapping 'Benchmark=device,...' "
                            "(e.g. 'Hopper=0,HalfCheetah=1'; unknown "
                            "benchmarks are rejected)")
    train.add_argument("--precision-policy", choices=sorted(PRECISION_POLICIES),
                       default=None,
                       help="precision policy replacing the built-in QAT "
                            "controller (fixar-dynamic regime only): "
                            "'global-switch' is Algorithm 1's single switch, "
                            "'per-layer' switches layers on a static "
                            "bitwidth table, 'range-driven' switches each "
                            "layer once its activation-range statistics "
                            "stabilize")
    train.add_argument("--precision-spec", type=str, default=None, metavar="SPEC",
                       help="spec string for --precision-policy "
                            "(global-switch: '[bits][@delay]'; per-layer: "
                            "'pattern=bits[@delay],...' matching layer names "
                            "like actor_fc0/critic_out by prefix; "
                            "range-driven: 'bits=16,interval=1000,"
                            "patience=2,tolerance=0.05' key=value pairs)")
    train.add_argument("--regime", default="fixar-dynamic",
                       choices=("float32", "fixed32", "fixed16", "fixar-dynamic"))
    train.add_argument("--hidden", type=int, nargs=2, default=(64, 48), metavar=("H1", "H2"))
    train.add_argument("--seed", type=int, default=0)
    train.add_argument("--checkpoint", type=str, default=None,
                       help="path to save the trained agent (.npz)")
    train.add_argument("--cosim", action="store_true",
                       help="co-simulate platform time alongside training")
    train.add_argument("--profile", action="store_true",
                       help="attach stage timers to the rollout hot path and "
                            "print the per-stage wall-clock breakdown after "
                            "training (trajectories stay bit-identical; see "
                            "benchmarks/reports/hotpath.txt for the "
                            "reference breakdown)")

    serve = subparsers.add_parser(
        "serve", help="serve a policy through the dynamic batcher (modelled)"
    )
    serve.add_argument("--benchmark", choices=BENCHMARK_SUITE, default="HalfCheetah")
    serve.add_argument("--checkpoint", type=str, default=None,
                       help="trained-agent checkpoint (.npz) to restore into "
                            "the server; omitted, a freshly initialised "
                            "--regime actor serves instead")
    serve.add_argument("--requests", type=_positive_int, default=512,
                       help="requests in the seeded synthetic trace")
    serve.add_argument("--qps", type=float, default=2000.0,
                       help="offered load: mean arrival rate of the "
                            "Poisson-like trace, in requests per modelled "
                            "second")
    serve.add_argument("--slo-ms", type=float, default=20.0,
                       help="latency SLO in milliseconds; the batcher's "
                            "flush timeout is derived as the SLO minus the "
                            "batch-cap flush's modelled service time")
    serve.add_argument("--batch-cap", type=_positive_int, default=8,
                       help="largest flush the dynamic batcher coalesces "
                            "(1 = sequential per-request serving)")
    serve.add_argument("--seed", type=int, default=0,
                       help="seed of the load generator's trace (arrivals "
                            "and state vectors)")
    serve.add_argument("--devices", type=_positive_int, default=1,
                       help="accelerators in the serving pool; flushes "
                            "shard near-equally over the collection devices")
    serve.add_argument("--placement", choices=("colocated", "disaggregated"),
                       default="colocated",
                       help="pool placement (disaggregated reserves the "
                            "last device for update streams; needs "
                            "--devices >= 2)")
    serve.add_argument("--hidden", type=int, nargs=2, default=(64, 48),
                       metavar=("H1", "H2"),
                       help="actor hidden sizes when serving a fresh actor "
                            "(checkpoints carry their own shapes)")
    serve.add_argument("--regime", default="fixar-dynamic",
                       choices=("float32", "fixed32", "fixed16", "fixar-dynamic"),
                       help="numeric regime of a freshly initialised actor "
                            "(ignored with --checkpoint)")
    serve.add_argument("--profile", action="store_true",
                       help="time the actor forward passes behind the "
                            "batcher and print the wall-clock breakdown of "
                            "the serving run (the modelled latency report "
                            "is unchanged)")

    throughput = subparsers.add_parser("throughput", help="Fig. 8/9/10 throughput report")
    throughput.add_argument("--benchmark", choices=BENCHMARK_SUITE, default="HalfCheetah")
    throughput.add_argument("--batches", type=int, nargs="+", default=list(PAPER_BATCH_SIZES))
    throughput.add_argument("--cores", type=int, default=2)
    throughput.add_argument("--half-precision", action="store_true")

    resources = subparsers.add_parser("resources", help="Table I resource report")
    resources.add_argument("--cores", type=int, default=2)
    resources.add_argument("--array", type=int, nargs=2, default=(16, 16), metavar=("ROWS", "COLS"))

    compare = subparsers.add_parser("compare", help="Table II comparison with prior works")
    compare.add_argument("--use-paper-numbers", action="store_true",
                         help="use the paper's FIXAR row instead of the modelled one")
    return parser


def _command_train_fleet(args: argparse.Namespace) -> int:
    """The heterogeneous multi-benchmark branch of the train sub-command."""
    import numpy as np

    from .envs import benchmark_dimensions
    from .nn import DynamicFixedPointNumerics, make_numerics
    from .rl import (
        DDPGAgent,
        QATController,
        parse_fleet_spec,
        resolve_precision,
        train_fleet,
    )

    from dataclasses import replace

    try:
        fleet_spec = parse_fleet_spec(args.fleet)
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2

    # Same reduced-scale hyper-parameters as the homogeneous train path, so
    # `--fleet Hopper:1` and `--benchmark Hopper` remain comparable runs.
    base = smoke_test_config(
        total_timesteps=args.timesteps,
        batch_size=args.batch_size,
        hidden_sizes=tuple(args.hidden),
    ).with_regime(args.regime)

    # One shared numerics object (and QAT schedule) across every benchmark's
    # agent — a precision switch must hit the whole fleet at once.
    numerics = make_numerics(base.numeric_regime, num_bits=base.qat.num_bits)
    rng = np.random.default_rng(args.seed)
    agents = {}
    for benchmark, _count, _width in fleet_spec:
        dims = benchmark_dimensions(benchmark)
        agents[benchmark] = DDPGAgent(
            dims["state_dim"],
            dims["action_dim"],
            base.ddpg,
            numerics=numerics,
            rng=rng,
        )
    qat_controller = None
    if isinstance(numerics, DynamicFixedPointNumerics):
        if args.precision_policy is not None:
            try:
                qat_controller = resolve_precision(
                    args.precision_policy, numerics, args.precision_spec
                )
            except ValueError as error:
                print(f"error: {error}", file=sys.stderr)
                return 2
        else:
            qat_controller = QATController(numerics, base.qat)
    elif args.precision_policy is not None:
        print(
            f"error: --precision-policy needs the fixar-dynamic regime, "
            f"got --regime {args.regime}",
            file=sys.stderr,
        )
        return 2

    try:
        config = replace(
            base.training,
            seed=args.seed,
            num_envs=args.num_envs,
            sync_interval=args.sync_interval,
            pipeline_depth=args.pipeline_depth,
            fleet=fleet_spec,
            schedule=args.schedule,
            devices=args.devices,
            placement=args.placement,
            assignment=args.assignment,
        )
    except ValueError as error:
        # Config validation errors name the offending knobs themselves
        # (e.g. the schedule/pipeline_depth conflict).
        print(f"error: {error}", file=sys.stderr)
        return 2
    platform = None
    if args.schedule in ("weighted", "adaptive") or args.devices > 1:
        # The throughput-weighted policy prices each benchmark's host +
        # inference chain on the modelled platform; without an oracle it
        # would degrade to round-robin weights.  A multi-accelerator run
        # prices on (and assigns benchmarks over) a device pool instead.
        platform = FixarPlatform(
            WorkloadSpec.from_benchmark(
                fleet_spec[0][0], hidden_sizes=tuple(args.hidden)
            )
        )
        if args.devices > 1:
            platform = AcceleratorPool(
                platform, args.devices, placement=args.placement
            )
    schedule = args.schedule or (
        f"pipelined depth {args.pipeline_depth}" if args.pipeline_depth else "sequential"
    )
    pool_text = (
        f", {args.devices}-device pool ({args.placement})"
        if args.devices > 1
        else ""
    )
    fleet_text = ",".join(
        f"{benchmark}:{count}" + ("" if width is None else f":{width}")
        for benchmark, count, width in fleet_spec
    )
    print(f"training {args.regime} on fleet {fleet_text} for {args.timesteps} timesteps "
          f"(batch {args.batch_size}, hidden {tuple(args.hidden)}, "
          f"{args.num_envs} env{'s' if args.num_envs != 1 else ''} per worker by "
          f"default, {schedule} schedule{pool_text})")

    profiler = StageTimers() if args.profile else None
    result = train_fleet(
        agents, config, qat_controller=qat_controller, label=args.regime,
        platform=platform, profiler=profiler,
    )
    if profiler is not None:
        print("wall-clock stage breakdown (fleet collection hot path):")
        print(profiler.table())
    if result.schedule == "weighted" and any(w != 1 for w in result.weights):
        allocation = ", ".join(
            f"{key}x{weight}" for (key, _c, _w), weight in zip(result.fleet, result.weights)
        )
        print(f"weighted rounds: lock-step allocation {allocation}")
    if result.assignment:
        affinity = ", ".join(
            f"{key}->dev{device}" for key, device in result.assignment.items()
        )
        print(f"device affinity: {affinity}")
    for benchmark, benchmark_result in result.per_benchmark.items():
        curve = benchmark_result.curve
        print(format_curve(curve.timesteps, curve.returns, label=f"{benchmark} reward curve"))
    if result.qat_event is not None:
        print(f"precision switch at t={result.qat_event.timestep} "
              f"(activations -> {result.qat_event.num_bits} bits, fleet-wide)")

    if args.checkpoint:
        base, extension = os.path.splitext(args.checkpoint)
        extension = extension or ".npz"
        for benchmark, agent in agents.items():
            path = save_agent(agent, f"{base}.{benchmark}{extension}")
            print(f"{benchmark} checkpoint written to {path}")
    return 0


def _command_train(args: argparse.Namespace) -> int:
    if args.cosim and args.num_envs != 1:
        print(
            "error: --cosim traces the scalar training loop and does not "
            "support --num-envs > 1 yet",
            file=sys.stderr,
        )
        return 2
    if args.cosim and args.num_workers != 1:
        print(
            "error: --cosim traces the scalar training loop and does not "
            "support --num-workers > 1",
            file=sys.stderr,
        )
        return 2
    if args.cosim and args.pipeline_depth != 0:
        print(
            "error: --cosim traces the sequential scalar training loop and "
            "does not support --pipeline-depth > 0",
            file=sys.stderr,
        )
        return 2
    if args.cosim and args.schedule not in (None, "sequential"):
        print(
            "error: --cosim traces the sequential scalar training loop and "
            f"does not support --schedule {args.schedule}",
            file=sys.stderr,
        )
        return 2
    if args.cosim and (
        args.devices != 1
        or args.placement != "colocated"
        or args.assignment is not None
    ):
        print(
            "error: --cosim traces the single-accelerator scalar training "
            "loop and does not support --devices > 1, --placement, or "
            "--assignment",
            file=sys.stderr,
        )
        return 2
    if args.cosim and args.precision_policy is not None:
        print(
            "error: --cosim traces the built-in QAT controller and does not "
            "support --precision-policy",
            file=sys.stderr,
        )
        return 2
    if args.cosim and args.profile:
        print(
            "error: --cosim replays a modelled platform trace, not the "
            "wall-clock hot path --profile instruments; drop one of the two",
            file=sys.stderr,
        )
        return 2
    if args.precision_policy is not None and args.regime != "fixar-dynamic":
        print(
            f"error: --precision-policy needs the fixar-dynamic regime, "
            f"got --regime {args.regime}",
            file=sys.stderr,
        )
        return 2
    if args.fleet is not None:
        if args.cosim:
            print(
                "error: --cosim traces the scalar training loop and does not "
                "support --fleet",
                file=sys.stderr,
            )
            return 2
        if args.num_workers != 1:
            print(
                "error: --fleet and --num-workers are alternative fleet "
                "sizings; the spec's per-benchmark counts determine the "
                "workers, so drop --num-workers",
                file=sys.stderr,
            )
            return 2
        return _command_train_fleet(args)
    config = smoke_test_config(
        benchmark=args.benchmark,
        total_timesteps=args.timesteps,
        batch_size=args.batch_size,
        hidden_sizes=tuple(args.hidden),
    ).with_regime(args.regime)
    try:
        config = config.with_training(
            seed=args.seed,
            num_envs=args.num_envs,
            num_workers=args.num_workers,
            sync_interval=args.sync_interval,
            pipeline_depth=args.pipeline_depth,
            schedule=args.schedule,
            devices=args.devices,
            placement=args.placement,
            assignment=args.assignment,
            precision=args.precision_policy,
            precision_spec=args.precision_spec,
        )
    except ValueError as error:
        # Config validation errors name the offending knobs themselves
        # (e.g. the schedule/pipeline_depth conflict).
        print(f"error: {error}", file=sys.stderr)
        return 2
    system = FixarSystem(config)
    schedule = args.schedule or (
        f"pipelined depth {args.pipeline_depth}" if args.pipeline_depth else "sequential"
    )
    pool_text = (
        f", {args.devices}-device pool ({args.placement})"
        if args.devices > 1
        else ""
    )
    print(f"training {args.regime} on {args.benchmark} for {args.timesteps} timesteps "
          f"(batch {args.batch_size}, hidden {tuple(args.hidden)}, "
          f"{args.num_workers} worker{'s' if args.num_workers != 1 else ''} x "
          f"{args.num_envs} env{'s' if args.num_envs != 1 else ''} in lock-step, "
          f"{schedule} schedule{pool_text})")

    if args.cosim:
        result = system.cosimulate()
        print("co-simulated platform trace:")
        for key, value in result.summary().items():
            print(f"  {key:24s} {value:12.3f}")
        if result.episode_returns:
            print(f"  final episode return     {result.episode_returns[-1]:12.1f}")
    else:
        profiler = StageTimers() if args.profile else None
        result = system.train(profiler=profiler)
        print(format_curve(result.curve.timesteps, result.curve.returns, label="reward curve"))
        if result.qat_event is not None:
            print(f"precision switch at t={result.qat_event.timestep} "
                  f"(activations -> {result.qat_event.num_bits} bits)")
        if profiler is not None:
            print("wall-clock stage breakdown (rollout collection hot path):")
            print(profiler.table())

    if args.checkpoint:
        path = save_agent(system.agent, args.checkpoint)
        print(f"checkpoint written to {path}")
    return 0


def _command_serve(args: argparse.Namespace) -> int:
    """Serve a (checkpointed) policy through the dynamic batcher."""
    import numpy as np

    from .envs import benchmark_dimensions
    from .nn import make_numerics
    from .rl import DDPGAgent, DDPGConfig
    from .serving import (
        PolicyServer,
        ServingConfig,
        SyntheticLoadGenerator,
        restore_serving_agent,
    )

    try:
        config = ServingConfig(
            num_requests=args.requests,
            qps=args.qps,
            slo_seconds=args.slo_ms / 1e3,
            batch_cap=args.batch_cap,
            seed=args.seed,
            devices=args.devices,
            placement=args.placement,
        )
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    if config.placement == "disaggregated" and config.devices < 2:
        print(
            "error: --placement disaggregated needs --devices >= 2 "
            "(the last device is reserved for update streams)",
            file=sys.stderr,
        )
        return 2

    dims = benchmark_dimensions(args.benchmark)
    if args.checkpoint:
        try:
            agent, _metadata = restore_serving_agent(args.checkpoint)
        except (OSError, KeyError, ValueError) as error:
            print(f"error: cannot restore {args.checkpoint}: {error}", file=sys.stderr)
            return 2
        if (agent.state_dim, agent.action_dim) != (
            dims["state_dim"],
            dims["action_dim"],
        ):
            print(
                f"error: checkpoint dimensions ({agent.state_dim}, "
                f"{agent.action_dim}) do not match benchmark "
                f"{args.benchmark} ({dims['state_dim']}, {dims['action_dim']})",
                file=sys.stderr,
            )
            return 2
        hidden_sizes = tuple(agent.config.hidden_sizes)
        source = args.checkpoint
    else:
        hidden_sizes = tuple(args.hidden)
        agent = DDPGAgent(
            dims["state_dim"],
            dims["action_dim"],
            DDPGConfig(hidden_sizes=hidden_sizes),
            numerics=make_numerics(args.regime),
            rng=np.random.default_rng(args.seed),
        )
        source = f"fresh {args.regime} actor"

    platform = FixarPlatform(
        WorkloadSpec.from_benchmark(args.benchmark, hidden_sizes=hidden_sizes)
    )
    if config.devices > 1:
        platform = AcceleratorPool(platform, config.devices, placement=config.placement)
    server = PolicyServer.from_agent(agent, platform, config)
    load = SyntheticLoadGenerator(
        state_dim=dims["state_dim"], qps=config.qps, seed=config.seed
    )
    profiler = None
    serve_wall_seconds = 0.0
    if args.profile:
        # The serving stack itself is barred from wall-clock reads (its
        # latency numbers are *modelled*, and the deterministic-oracles
        # lint keeps it that way), so instrumentation wraps the policy at
        # the CLI seam instead: every batched flush through the actor is
        # timed, the rest of the run is the batcher/bookkeeping remainder.
        from time import perf_counter

        profiler = StageTimers()
        server.policy.act_batch = profiler.wrap(
            server.policy.act_batch, "actor-forward"
        )
        serve_start = perf_counter()
        result = server.serve_load(load)
        serve_wall_seconds = perf_counter() - serve_start
    else:
        result = server.serve_load(load)
    report = result.report

    pool_text = (
        f", {config.devices}-device pool ({config.placement})"
        if config.devices > 1
        else ""
    )
    print(
        f"serving {args.benchmark} ({source}): {config.num_requests} requests "
        f"at {config.qps:g} QPS offered, cap {config.batch_cap}, "
        f"SLO {args.slo_ms:g} ms (flush timeout "
        f"{report.timeout_seconds * 1e3:.2f} ms{pool_text})"
    )
    print(f"  modelled QPS        {report.qps:12.1f}")
    print(f"  p50 / p99 latency   {report.p50_seconds * 1e3:7.3f} ms / "
          f"{report.p99_seconds * 1e3:.3f} ms")
    print(f"  max latency         {report.max_latency_seconds * 1e3:7.3f} ms")
    print(f"  mean batch size     {report.mean_batch_size:12.2f}")
    print(f"  PCIe per request    {report.pcie_bytes_per_request:12.1f} B")
    print(f"  SLO attainment      {report.slo_attainment * 100:11.1f}% "
          f"({report.slo_violations} violations)")
    if profiler is not None:
        print("wall-clock breakdown of the serving run (actor forward vs "
              "batcher remainder):")
        print(profiler.table(wall_seconds=serve_wall_seconds))
    return 0


def _command_throughput(args: argparse.Namespace) -> int:
    from .envs import make

    env = make(args.benchmark)
    platform = FixarPlatform(
        WorkloadSpec.from_environment(env),
        AcceleratorConfig().with_cores(args.cores),
        half_precision=args.half_precision,
    )
    baseline = CpuGpuPlatform()
    batches = tuple(args.batches)

    fixar_ips = {batch: platform.platform_ips(batch) for batch in batches}
    gpu_ips = {batch: baseline.ips(args.benchmark, batch) for batch in batches}
    print(f"benchmark {args.benchmark}, {args.cores} AAP cores, "
          f"{'half' if args.half_precision else 'full'} precision")
    print(format_series(fixar_ips, name="FIXAR platform IPS  "))
    print(format_series(gpu_ips, name="CPU-GPU platform IPS"))
    print(format_series({b: fixar_ips[b] / gpu_ips[b] for b in batches}, name="speedup", precision=2))
    print("accelerator-only:")
    print(format_series({b: platform.accelerator_ips(b) for b in batches}, name="  FIXAR IPS  "))
    print(format_series({b: platform.accelerator_ips_per_watt(b) for b in batches}, name="  FIXAR IPS/W"))
    for batch in batches:
        print(f"  breakdown batch {batch:4d}: " + format_breakdown(platform.timestep_breakdown(batch)))
    return 0


def _command_resources(args: argparse.Namespace) -> int:
    config = AcceleratorConfig().with_cores(args.cores).with_geometry(*args.array)
    model = ResourceModel(config)
    print(format_table(model.table(), title=f"Resource usage — {args.cores} cores, "
                                            f"{args.array[0]}x{args.array[1]} PEs"))
    print(f"fits Alveo U50: {model.fits_device()}")
    print(f"estimated board power: {PowerModel(config).average_watts():.1f} W")
    return 0


def _command_compare(args: argparse.Namespace) -> int:
    if args.use_paper_numbers:
        entry = fixar_entry()
    else:
        timing = TimingModel(AcceleratorConfig())
        workload = WorkloadSpec("HalfCheetah", 17, 6)
        peak = max(
            timing.accelerator_ips(workload.actor_shapes, workload.critic_shapes, batch)
            for batch in PAPER_BATCH_SIZES
        )
        power = PowerModel(AcceleratorConfig())
        entry = fixar_entry(
            peak_ips=peak,
            energy_efficiency=peak / power.average_watts(),
            dsp_count=ResourceModel(AcceleratorConfig()).total().dsp,
        )
    print(format_table(comparison_table(entry), title="Comparison with previous works"))
    return 0


_COMMANDS = {
    "train": _command_train,
    "serve": _command_serve,
    "throughput": _command_throughput,
    "resources": _command_resources,
    "compare": _command_compare,
}


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover - exercised via the console script
    sys.exit(main())
