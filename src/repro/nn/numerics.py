"""Numeric policies: how weights, activations, and gradients are represented.

The same network code runs under several numeric regimes in the paper's
Fig. 7 study:

* 32-bit floating point (the GPU baseline),
* 32-bit fixed point for the whole run,
* 16-bit fixed point from scratch (shown to fail),
* FIXAR's *dynamic* fixed point: 32-bit activations during the quantization
  delay, then 16-bit activations quantized with the captured range, with
  weights and gradients staying 32-bit fixed point throughout.

A :class:`Numerics` object encapsulates one such regime.  Layers call its
projection hooks so the numeric behaviour is fully decoupled from the network
topology.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from ..fixedpoint import (
    ACTIVATION_FULL_FORMAT,
    ACTIVATION_HALF_FORMAT,
    GRADIENT_FORMAT,
    WEIGHT_FORMAT,
    AffineQuantizer,
    QFormat,
    RangeTracker,
)

__all__ = [
    "Numerics",
    "FloatNumerics",
    "FixedPointNumerics",
    "DynamicFixedPointNumerics",
]


class Numerics:
    """Base numeric policy: full floating point, no projection."""

    #: Human-readable name used in reports and learning-curve legends.
    name = "float32"

    def project_weight(self, weight: np.ndarray) -> np.ndarray:
        """Representation applied to weights before they are used."""
        return weight

    def project_activation(
        self, activation: np.ndarray, layer: Optional[str] = None
    ) -> np.ndarray:
        """Representation applied to every layer's output activation.

        ``layer`` names the dense layer whose output is being projected
        (``actor_fc0``, ``critic_out``, ...); per-layer precision regimes key
        their quantizer maps on it, uniform regimes ignore it.
        """
        return activation

    def project_gradient(self, gradient: np.ndarray) -> np.ndarray:
        """Representation applied to gradients during back-propagation."""
        return gradient

    def observe_activation(
        self, activation: np.ndarray, layer: Optional[str] = None
    ) -> None:
        """Hook for monitoring activation statistics (no-op by default)."""

    @property
    def activation_bits(self) -> int:
        """Bit width of the current activation representation."""
        return 32

    @property
    def weight_bits(self) -> int:
        """Bit width of the weight representation."""
        return 32

    def describe(self) -> Dict[str, object]:
        """A serialisable description of the numeric regime."""
        return {
            "name": self.name,
            "weight_bits": self.weight_bits,
            "activation_bits": self.activation_bits,
        }


class FloatNumerics(Numerics):
    """Single-precision floating point for everything (the GPU baseline)."""

    name = "float32"

    def project_weight(self, weight: np.ndarray) -> np.ndarray:
        return weight.astype(np.float32).astype(np.float64)

    def project_activation(
        self, activation: np.ndarray, layer: Optional[str] = None
    ) -> np.ndarray:
        return activation.astype(np.float32).astype(np.float64)

    def project_gradient(self, gradient: np.ndarray) -> np.ndarray:
        return gradient.astype(np.float32).astype(np.float64)


class FixedPointNumerics(Numerics):
    """Static fixed-point representation for weights/activations/gradients.

    With the default formats this is the paper's "Fixed 32-bit" regime; pass
    16-bit formats to obtain the "Fixed 16-bit from scratch" regime that the
    paper shows failing to train.
    """

    def __init__(
        self,
        weight_format: QFormat = WEIGHT_FORMAT,
        activation_format: QFormat = ACTIVATION_FULL_FORMAT,
        gradient_format: QFormat = GRADIENT_FORMAT,
        name: Optional[str] = None,
    ):
        self.weight_format = weight_format
        self.activation_format = activation_format
        self.gradient_format = gradient_format
        self.name = name or f"fixed{activation_format.word_length}"

    def project_weight(self, weight: np.ndarray) -> np.ndarray:
        return self.weight_format.quantize(weight)

    def project_activation(
        self, activation: np.ndarray, layer: Optional[str] = None
    ) -> np.ndarray:
        return self.activation_format.quantize(activation)

    def project_gradient(self, gradient: np.ndarray) -> np.ndarray:
        return self.gradient_format.quantize(gradient)

    @property
    def activation_bits(self) -> int:
        return self.activation_format.word_length

    @property
    def weight_bits(self) -> int:
        return self.weight_format.word_length

    def describe(self) -> Dict[str, object]:
        desc = super().describe()
        desc.update(
            {
                "weight_format": str(self.weight_format),
                "activation_format": str(self.activation_format),
                "gradient_format": str(self.gradient_format),
            }
        )
        return desc


class DynamicFixedPointNumerics(FixedPointNumerics):
    """FIXAR's dynamic dual fixed-point regime (the paper's contribution).

    Starts in the 32-bit activation format while a :class:`RangeTracker`
    monitors the activation range.  Calling :meth:`switch_to_half` freezes the
    range, builds the affine quantizer of Algorithm 1, and from then on every
    activation is quantized to ``num_bits`` (16) before being snapped onto the
    half-precision fixed-point grid.  Weights and gradients stay in 32-bit
    fixed point for the entire run.
    """

    def __init__(
        self,
        weight_format: QFormat = WEIGHT_FORMAT,
        full_activation_format: QFormat = ACTIVATION_FULL_FORMAT,
        half_activation_format: QFormat = ACTIVATION_HALF_FORMAT,
        gradient_format: QFormat = GRADIENT_FORMAT,
        num_bits: int = 16,
    ):
        super().__init__(
            weight_format=weight_format,
            activation_format=full_activation_format,
            gradient_format=gradient_format,
            name="fixar-dynamic",
        )
        self.full_activation_format = full_activation_format
        self.half_activation_format = half_activation_format
        self.num_bits = int(num_bits)
        self.range_tracker = RangeTracker()
        self.quantizer: Optional[AffineQuantizer] = None
        self._half_mode = False
        # Per-layer precision state (the PrecisionPolicy seam): quantizers
        # keyed by dense-layer name override the global mode layer by layer,
        # with trackers accumulating each layer's own observed range.
        self.layer_trackers: Dict[str, RangeTracker] = {}
        self.layer_quantizers: Dict[str, AffineQuantizer] = {}
        self.layer_bits: Dict[str, int] = {}

    # ------------------------------------------------------------------ #
    # Mode control
    # ------------------------------------------------------------------ #
    @property
    def half_mode(self) -> bool:
        """Whether the quantization delay has elapsed (16-bit activations)."""
        return self._half_mode

    def switch_to_half(self) -> AffineQuantizer:
        """Freeze the observed range and switch activations to 16 bits."""
        self.quantizer = AffineQuantizer.from_tracker(self.num_bits, self.range_tracker)
        self._half_mode = True
        self.activation_format = self.half_activation_format
        return self.quantizer

    def switch_to_full(self) -> None:
        """Return to full-precision activations (used by ablation studies)."""
        self._half_mode = False
        self.activation_format = self.full_activation_format

    def adopt_quantizer(self, quantizer: AffineQuantizer) -> None:
        """Enter half mode with a quantizer frozen *elsewhere*.

        A forked collection replica owns a snapshot copy of the learner's
        numerics, so the learner's precision switch cannot reach it through
        the (shared-object) in-process path.  The coordinator instead ships
        the learner's frozen :class:`AffineQuantizer` over the worker's
        command pipe, and the replica adopts it verbatim — keeping the whole
        fleet on one quantization grid rather than freezing each replica's
        privately observed range.
        """
        self.quantizer = quantizer
        self._half_mode = True
        self.activation_format = self.half_activation_format

    def switch_layer_to_half(
        self, layer: str, num_bits: Optional[int] = None
    ) -> AffineQuantizer:
        """Freeze one layer's observed range and quantize that layer only.

        The per-layer analogue of :meth:`switch_to_half`: builds an affine
        quantizer from the *layer's own* range tracker and installs it in the
        per-layer quantizer map, leaving every other layer in its current
        mode.  Layers are identified by their dense-layer name
        (``actor_fc0``, ``critic_out``, ...).
        """
        bits = int(num_bits) if num_bits is not None else self.num_bits
        tracker = self.layer_trackers.get(layer)
        if tracker is None or not tracker.initialized:
            raise ValueError(
                f"layer {layer!r} has no observed activation range to freeze"
            )
        quantizer = AffineQuantizer.from_tracker(bits, tracker)
        self.layer_quantizers[layer] = quantizer
        self.layer_bits[layer] = bits
        return quantizer

    def adopt_plan(self, plan) -> None:
        """Adopt per-layer precision state frozen *elsewhere*.

        The plan is duck-typed: either a mapping of layer name →
        :class:`AffineQuantizer`, or a ``PrecisionPlan``-shaped object with
        ``layer_quantizers`` / ``layer_bits`` mappings and an optional
        ``global_quantizer``.  This is :meth:`adopt_quantizer` generalized —
        the broadcast seam forked collection replicas receive plans through.
        """
        layer_quantizers = getattr(plan, "layer_quantizers", plan)
        layer_bits = dict(getattr(plan, "layer_bits", None) or {})
        for name, quantizer in dict(layer_quantizers or {}).items():
            self.layer_quantizers[name] = quantizer
            self.layer_bits[name] = int(layer_bits.get(name, quantizer.num_bits))
        global_quantizer = getattr(plan, "global_quantizer", None)
        if global_quantizer is not None:
            self.adopt_quantizer(global_quantizer)

    # ------------------------------------------------------------------ #
    # Projection hooks
    # ------------------------------------------------------------------ #
    def observe_activation(
        self, activation: np.ndarray, layer: Optional[str] = None
    ) -> None:
        if self._half_mode:
            return
        self.range_tracker.update(activation)
        if layer is not None and layer not in self.layer_quantizers:
            tracker = self.layer_trackers.get(layer)
            if tracker is None:
                tracker = self.layer_trackers[layer] = RangeTracker()
            tracker.update(activation)

    def project_activation(
        self, activation: np.ndarray, layer: Optional[str] = None
    ) -> np.ndarray:
        if self._half_mode and self.quantizer is not None:
            quantized = self.quantizer.apply(activation)
            return self.half_activation_format.quantize(quantized)
        if layer is not None:
            quantizer = self.layer_quantizers.get(layer)
            if quantizer is not None:
                quantized = quantizer.apply(activation)
                return self.half_activation_format.quantize(quantized)
        return self.full_activation_format.quantize(activation)

    @property
    def activation_bits(self) -> int:
        if self._half_mode:
            return self.half_activation_format.word_length
        return self.full_activation_format.word_length

    def layer_activation_bits(self, layer: str) -> int:
        """The activation bit width currently in effect for one layer."""
        if self._half_mode:
            return self.half_activation_format.word_length
        return self.layer_bits.get(layer, self.full_activation_format.word_length)

    def precision_profile(self) -> Dict[str, object]:
        """The resolved per-layer precision state, for pricing and reports.

        Normalized shape ``{"default": bits, "layers": {name: bits}}`` — the
        same profile :meth:`FixarPlatform.with_precision_state` prices.
        """
        return {"default": self.activation_bits, "layers": dict(self.layer_bits)}

    def describe(self) -> Dict[str, object]:
        desc = super().describe()
        desc.update(
            {
                "half_mode": self._half_mode,
                "num_bits": self.num_bits,
                "range": (
                    [self.range_tracker.min_value, self.range_tracker.max_value]
                    if self.range_tracker.initialized
                    else None
                ),
                "layer_bits": dict(self.layer_bits),
            }
        )
        return desc
