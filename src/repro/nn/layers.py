"""Network layers with explicit forward and backward passes.

The FIXAR accelerator schedules forward propagation (FP), backward
propagation (BP), and weight update (WU) as separate phases over the same
matrix-vector hardware, so the software model mirrors that structure: each
layer exposes ``forward`` and ``backward`` explicitly instead of relying on
an autograd engine.  All tensors are batch-major: inputs have shape
``(batch, features)``.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

import numpy as np

from .initializers import fan_in_uniform
from .numerics import Numerics

__all__ = ["Layer", "Linear", "ReLU", "Tanh"]

Initializer = Callable[[tuple, np.random.Generator], np.ndarray]


class Layer:
    """Base class for layers.

    Layers with parameters expose them through :meth:`parameters` and their
    accumulated gradients through :meth:`gradients`; parameter-free layers
    return empty dictionaries.
    """

    def forward(self, inputs: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def parameters(self) -> Dict[str, np.ndarray]:
        return {}

    def gradients(self) -> Dict[str, np.ndarray]:
        return {}

    def zero_grad(self) -> None:
        """Reset accumulated gradients to zero."""

    @property
    def output_dim(self) -> Optional[int]:
        """Output feature dimension, if the layer changes it."""
        return None


class Linear(Layer):
    """A dense layer ``y = x @ W + b`` with explicit backward pass.

    The weight matrix is stored as ``(in_features, out_features)``, matching
    the accelerator's weight-memory layout where each matrix row is spread
    over 16 BRAM modules.
    """

    def __init__(
        self,
        in_features: int,
        out_features: int,
        *,
        rng: np.random.Generator,
        weight_init: Optional[Initializer] = None,
        bias_init: Optional[Initializer] = None,
        numerics: Optional[Numerics] = None,
        name: str = "linear",
    ):
        if in_features <= 0 or out_features <= 0:
            raise ValueError(
                f"layer dimensions must be positive, got {in_features}x{out_features}"
            )
        weight_init = weight_init or fan_in_uniform
        bias_init = bias_init or fan_in_uniform
        self.in_features = in_features
        self.out_features = out_features
        self.name = name
        self.numerics = numerics or Numerics()
        self.weight = weight_init((in_features, out_features), rng)
        self.bias = bias_init((out_features,), rng)
        self.grad_weight = np.zeros_like(self.weight)
        self.grad_bias = np.zeros_like(self.bias)
        self._inputs: Optional[np.ndarray] = None

    # ------------------------------------------------------------------ #
    def forward(self, inputs: np.ndarray) -> np.ndarray:
        inputs = np.atleast_2d(np.asarray(inputs, dtype=np.float64))
        if inputs.shape[1] != self.in_features:
            raise ValueError(
                f"{self.name}: expected {self.in_features} input features, "
                f"got {inputs.shape[1]}"
            )
        self._inputs = inputs
        weight = self.numerics.project_weight(self.weight)
        bias = self.numerics.project_weight(self.bias)
        return inputs @ weight + bias

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._inputs is None:
            raise RuntimeError(f"{self.name}: backward called before forward")
        grad_output = np.atleast_2d(np.asarray(grad_output, dtype=np.float64))
        grad_output = self.numerics.project_gradient(grad_output)
        weight = self.numerics.project_weight(self.weight)
        self.grad_weight += self.numerics.project_gradient(self._inputs.T @ grad_output)
        self.grad_bias += self.numerics.project_gradient(grad_output.sum(axis=0))
        return grad_output @ weight.T

    # ------------------------------------------------------------------ #
    def parameters(self) -> Dict[str, np.ndarray]:
        return {f"{self.name}.weight": self.weight, f"{self.name}.bias": self.bias}

    def gradients(self) -> Dict[str, np.ndarray]:
        return {f"{self.name}.weight": self.grad_weight, f"{self.name}.bias": self.grad_bias}

    def zero_grad(self) -> None:
        self.grad_weight[...] = 0.0
        self.grad_bias[...] = 0.0

    @property
    def output_dim(self) -> int:
        return self.out_features

    @property
    def parameter_count(self) -> int:
        """Number of scalar parameters (weights plus biases)."""
        return self.weight.size + self.bias.size


class ReLU(Layer):
    """Rectified linear unit."""

    def __init__(self) -> None:
        self._mask: Optional[np.ndarray] = None

    def forward(self, inputs: np.ndarray) -> np.ndarray:
        inputs = np.asarray(inputs, dtype=np.float64)
        self._mask = inputs > 0.0
        return inputs * self._mask

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._mask is None:
            raise RuntimeError("ReLU: backward called before forward")
        return np.asarray(grad_output, dtype=np.float64) * self._mask


class Tanh(Layer):
    """Hyperbolic tangent, used on the actor's output to bound actions."""

    def __init__(self) -> None:
        self._output: Optional[np.ndarray] = None

    def forward(self, inputs: np.ndarray) -> np.ndarray:
        self._output = np.tanh(np.asarray(inputs, dtype=np.float64))
        return self._output

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._output is None:
            raise RuntimeError("Tanh: backward called before forward")
        return np.asarray(grad_output, dtype=np.float64) * (1.0 - self._output ** 2)
