"""Loss functions with explicit gradients.

Only two objectives are needed for DDPG: a mean-squared error for the
critic's temporal-difference regression and the deterministic policy
gradient objective for the actor (which maximises the critic's Q-value, so
its "loss" is the negative mean Q).
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

__all__ = ["mse_loss", "policy_gradient_loss", "huber_loss"]


def mse_loss(prediction: np.ndarray, target: np.ndarray) -> Tuple[float, np.ndarray]:
    """Mean squared error and its gradient w.r.t. the prediction.

    Returns ``(loss, grad)`` where ``grad`` has the prediction's shape and is
    already normalised by the batch size.
    """
    prediction = np.asarray(prediction, dtype=np.float64)
    target = np.asarray(target, dtype=np.float64)
    if prediction.shape != target.shape:
        raise ValueError(
            f"prediction shape {prediction.shape} != target shape {target.shape}"
        )
    diff = prediction - target
    count = max(prediction.size, 1)
    loss = float(np.sum(diff ** 2) / count)
    grad = 2.0 * diff / count
    return loss, grad


def huber_loss(
    prediction: np.ndarray, target: np.ndarray, delta: float = 1.0
) -> Tuple[float, np.ndarray]:
    """Huber loss and its gradient (optional robust alternative to MSE)."""
    prediction = np.asarray(prediction, dtype=np.float64)
    target = np.asarray(target, dtype=np.float64)
    if prediction.shape != target.shape:
        raise ValueError(
            f"prediction shape {prediction.shape} != target shape {target.shape}"
        )
    diff = prediction - target
    abs_diff = np.abs(diff)
    quadratic = abs_diff <= delta
    count = max(prediction.size, 1)
    loss_terms = np.where(quadratic, 0.5 * diff ** 2, delta * (abs_diff - 0.5 * delta))
    grad = np.where(quadratic, diff, delta * np.sign(diff)) / count
    return float(np.sum(loss_terms) / count), grad


def policy_gradient_loss(q_values: np.ndarray) -> Tuple[float, np.ndarray]:
    """Deterministic policy gradient objective: ``loss = -mean(Q)``.

    Returns the loss and its gradient w.r.t. the Q-values, which is then
    back-propagated through the critic and into the actor's actions.
    """
    q_values = np.asarray(q_values, dtype=np.float64)
    count = max(q_values.size, 1)
    loss = float(-np.mean(q_values))
    grad = -np.ones_like(q_values) / count
    return loss, grad
