"""Convenience constructors for the numeric regimes studied in the paper.

Fig. 7 compares four training regimes on HalfCheetah:

* ``float32``        — 32-bit floating point (GPU baseline),
* ``fixed32``        — 32-bit fixed point throughout,
* ``fixed16``        — 16-bit fixed point from scratch (fails to train),
* ``fixar-dynamic``  — FIXAR's dynamic dual fixed point (32-bit until the
  quantization delay, then 16-bit activations).

:func:`make_numerics` builds the matching :class:`~repro.nn.numerics.Numerics`
policy by name so experiment scripts and benchmarks can sweep regimes with a
single string parameter.
"""

from __future__ import annotations

from typing import Dict, Iterable

from ..fixedpoint import QFormat
from .numerics import (
    DynamicFixedPointNumerics,
    FixedPointNumerics,
    FloatNumerics,
    Numerics,
)

__all__ = ["REGIMES", "make_numerics", "regime_names"]

#: Names of the supported numeric regimes, in the order the paper plots them.
REGIMES = ("float32", "fixed32", "fixed16", "fixar-dynamic")


def regime_names() -> Iterable[str]:
    """The regime names accepted by :func:`make_numerics`."""
    return REGIMES


def make_numerics(regime: str, *, num_bits: int = 16) -> Numerics:
    """Build the numeric policy for a named regime.

    Parameters
    ----------
    regime:
        One of :data:`REGIMES`.
    num_bits:
        Quantization bit width used by the dynamic regime (default 16, the
        paper's value).
    """
    regime = regime.lower()
    builders: Dict[str, object] = {
        "float32": FloatNumerics,
        "fixed32": lambda: FixedPointNumerics(
            weight_format=QFormat(32, 16),
            activation_format=QFormat(32, 16),
            gradient_format=QFormat(32, 16),
            name="fixed32",
        ),
        "fixed16": lambda: FixedPointNumerics(
            weight_format=QFormat(16, 8),
            activation_format=QFormat(16, 8),
            gradient_format=QFormat(16, 8),
            name="fixed16",
        ),
        "fixar-dynamic": lambda: DynamicFixedPointNumerics(num_bits=num_bits),
    }
    if regime not in builders:
        raise ValueError(
            f"unknown numeric regime {regime!r}; expected one of {sorted(builders)}"
        )
    return builders[regime]()
