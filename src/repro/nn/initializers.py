"""Weight initializers used by the DDPG actor and critic networks.

DDPG (Lillicrap et al., 2015) initialises hidden layers with the fan-in
uniform rule ``U(-1/sqrt(fan_in), 1/sqrt(fan_in))`` and the final layer with
a small uniform range so the initial policy outputs and Q-value estimates are
near zero.  The paper's networks follow the same recipe.
"""

from __future__ import annotations

import numpy as np

__all__ = ["fan_in_uniform", "uniform", "zeros"]


def fan_in_uniform(shape: tuple, rng: np.random.Generator) -> np.ndarray:
    """Fan-in uniform initialisation ``U(-1/sqrt(fan_in), 1/sqrt(fan_in))``.

    ``shape`` is ``(fan_in, fan_out)`` for a dense weight matrix or
    ``(fan_out,)`` for a bias, in which case the bound defaults to the bias
    vector length (matching the common DDPG implementation).
    """
    fan_in = shape[0]
    bound = 1.0 / np.sqrt(fan_in) if fan_in > 0 else 0.0
    return rng.uniform(-bound, bound, size=shape)


def uniform(low: float, high: float):
    """A uniform initializer factory with a fixed range."""

    def init(shape: tuple, rng: np.random.Generator) -> np.ndarray:
        return rng.uniform(low, high, size=shape)

    return init


def zeros(shape: tuple, rng: np.random.Generator) -> np.ndarray:
    """All-zero initialisation (used for biases of output layers)."""
    del rng
    return np.zeros(shape, dtype=np.float64)
