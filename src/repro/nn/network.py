"""Multi-layer perceptron container and the paper's actor / critic builders.

Both FIXAR networks are small MLPs:

* actor:  state → 400 → 300 → action, ReLU hidden activations, tanh output;
* critic: (state ‖ action) → 400 → 300 → 1, ReLU hidden activations, linear
  output.

The :class:`MLP` applies the numeric policy's activation projection after
every layer, which is where the quantization-aware training hook lives.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .initializers import fan_in_uniform, uniform
from .layers import Layer, Linear, ReLU, Tanh
from .numerics import Numerics

__all__ = ["MLP", "build_actor", "build_critic", "DEFAULT_HIDDEN_SIZES"]

#: Hidden layer widths used throughout the paper.
DEFAULT_HIDDEN_SIZES: Tuple[int, int] = (400, 300)


class MLP:
    """A sequential network with explicit forward / backward passes.

    Parameters
    ----------
    layers:
        The layer sequence (alternating ``Linear`` and activation layers).
    numerics:
        Numeric policy applied to every layer's output activation and shared
        with the dense layers for weight / gradient projection.
    """

    def __init__(self, layers: Sequence[Layer], numerics: Optional[Numerics] = None):
        if not layers:
            raise ValueError("an MLP needs at least one layer")
        self.layers: List[Layer] = list(layers)
        self.numerics = numerics or Numerics()
        for layer in self.layers:
            if isinstance(layer, Linear):
                layer.numerics = self.numerics

    # ------------------------------------------------------------------ #
    # Propagation
    # ------------------------------------------------------------------ #
    def forward(self, inputs: np.ndarray) -> np.ndarray:
        """Forward propagation with per-layer activation projection.

        Each projection is keyed by the most recent dense layer's name, so a
        per-layer precision policy quantizes a Linear's output *and* the
        activation function applied to it under one layer name.
        """
        activation = np.atleast_2d(np.asarray(inputs, dtype=np.float64))
        current: Optional[str] = None
        for layer in self.layers:
            if isinstance(layer, Linear):
                current = layer.name
            activation = layer.forward(activation)
            self.numerics.observe_activation(activation, layer=current)
            activation = self.numerics.project_activation(activation, layer=current)
        return activation

    def __call__(self, inputs: np.ndarray) -> np.ndarray:
        return self.forward(inputs)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        """Backward propagation; returns the gradient w.r.t. the inputs."""
        gradient = np.atleast_2d(np.asarray(grad_output, dtype=np.float64))
        for layer in reversed(self.layers):
            gradient = layer.backward(gradient)
            gradient = self.numerics.project_gradient(gradient)
        return gradient

    # ------------------------------------------------------------------ #
    # Parameter management
    # ------------------------------------------------------------------ #
    def parameters(self) -> Dict[str, np.ndarray]:
        params: Dict[str, np.ndarray] = {}
        for index, layer in enumerate(self.layers):
            for name, value in layer.parameters().items():
                params[f"{index}.{name}"] = value
        return params

    def gradients(self) -> Dict[str, np.ndarray]:
        grads: Dict[str, np.ndarray] = {}
        for index, layer in enumerate(self.layers):
            for name, value in layer.gradients().items():
                grads[f"{index}.{name}"] = value
        return grads

    def zero_grad(self) -> None:
        for layer in self.layers:
            layer.zero_grad()

    def set_parameters(self, params: Dict[str, np.ndarray]) -> None:
        """Overwrite parameters in place from a dictionary of the same shape."""
        current = self.parameters()
        for name, value in params.items():
            if name not in current:
                raise KeyError(f"unknown parameter {name!r}")
            if current[name].shape != value.shape:
                raise ValueError(
                    f"shape mismatch for {name!r}: "
                    f"{current[name].shape} vs {value.shape}"
                )
            current[name][...] = value

    def copy_from(self, other: "MLP") -> None:
        """Hard-copy another network's parameters (used for target networks)."""
        self.set_parameters(other.parameters())

    def soft_update_from(self, other: "MLP", tau: float) -> None:
        """Polyak averaging ``theta ← tau * theta_other + (1 - tau) * theta``."""
        if not 0.0 <= tau <= 1.0:
            raise ValueError(f"tau must lie in [0, 1], got {tau}")
        params = self.parameters()
        source = other.parameters()
        for name, value in params.items():
            value[...] = tau * source[name] + (1.0 - tau) * value

    # ------------------------------------------------------------------ #
    # Model accounting (used by the accelerator memory model)
    # ------------------------------------------------------------------ #
    @property
    def parameter_count(self) -> int:
        """Total number of scalar parameters."""
        return sum(v.size for v in self.parameters().values())

    @property
    def layer_shapes(self) -> List[Tuple[int, int]]:
        """The (in, out) shape of every dense layer, in order."""
        return [
            (layer.in_features, layer.out_features)
            for layer in self.layers
            if isinstance(layer, Linear)
        ]

    def model_size_bytes(self, bits_per_weight: int = 32) -> int:
        """Storage footprint of all parameters at the given bit width."""
        return self.parameter_count * bits_per_weight // 8


def build_actor(
    state_dim: int,
    action_dim: int,
    hidden_sizes: Sequence[int] = DEFAULT_HIDDEN_SIZES,
    *,
    rng: Optional[np.random.Generator] = None,
    numerics: Optional[Numerics] = None,
) -> MLP:
    """The paper's actor network: state → 400 → 300 → action with tanh output."""
    rng = rng or np.random.default_rng()
    sizes = [state_dim, *hidden_sizes]
    layers: List[Layer] = []
    for index, (fan_in, fan_out) in enumerate(zip(sizes[:-1], sizes[1:])):
        layers.append(Linear(fan_in, fan_out, rng=rng, name=f"actor_fc{index}"))
        layers.append(ReLU())
    layers.append(
        Linear(
            sizes[-1],
            action_dim,
            rng=rng,
            weight_init=uniform(-3e-3, 3e-3),
            bias_init=uniform(-3e-3, 3e-3),
            name="actor_out",
        )
    )
    layers.append(Tanh())
    return MLP(layers, numerics=numerics)


def build_critic(
    state_dim: int,
    action_dim: int,
    hidden_sizes: Sequence[int] = DEFAULT_HIDDEN_SIZES,
    *,
    rng: Optional[np.random.Generator] = None,
    numerics: Optional[Numerics] = None,
) -> MLP:
    """The paper's critic network: (state ‖ action) → 400 → 300 → 1."""
    rng = rng or np.random.default_rng()
    sizes = [state_dim + action_dim, *hidden_sizes]
    layers: List[Layer] = []
    for index, (fan_in, fan_out) in enumerate(zip(sizes[:-1], sizes[1:])):
        layers.append(Linear(fan_in, fan_out, rng=rng, name=f"critic_fc{index}"))
        layers.append(ReLU())
    layers.append(
        Linear(
            sizes[-1],
            1,
            rng=rng,
            weight_init=uniform(-3e-3, 3e-3),
            bias_init=uniform(-3e-3, 3e-3),
            name="critic_out",
        )
    )
    return MLP(layers, numerics=numerics)
