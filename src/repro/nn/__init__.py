"""Minimal neural-network substrate used by the FIXAR reproduction.

Provides dense layers with explicit forward/backward passes, the paper's
actor and critic network builders, MSE / policy-gradient losses, Adam / SGD
optimizers, and pluggable numeric policies (floating point, static fixed
point, and FIXAR's dynamic dual fixed point).
"""

from .initializers import fan_in_uniform, uniform, zeros
from .layers import Layer, Linear, ReLU, Tanh
from .losses import huber_loss, mse_loss, policy_gradient_loss
from .network import DEFAULT_HIDDEN_SIZES, MLP, build_actor, build_critic
from .numerics import (
    DynamicFixedPointNumerics,
    FixedPointNumerics,
    FloatNumerics,
    Numerics,
)
from .optim import SGD, Adam, Optimizer
from .quantized import REGIMES, make_numerics, regime_names

__all__ = [
    "Layer",
    "Linear",
    "ReLU",
    "Tanh",
    "MLP",
    "build_actor",
    "build_critic",
    "DEFAULT_HIDDEN_SIZES",
    "mse_loss",
    "huber_loss",
    "policy_gradient_loss",
    "Adam",
    "SGD",
    "Optimizer",
    "Numerics",
    "FloatNumerics",
    "FixedPointNumerics",
    "DynamicFixedPointNumerics",
    "make_numerics",
    "regime_names",
    "REGIMES",
    "fan_in_uniform",
    "uniform",
    "zeros",
]
