"""Optimizers with an optional post-update projection hook.

The accelerator keeps the whole model on chip and performs weight updates in
a dedicated Adam module, so the software model exposes the same two
optimizers the paper mentions (Adam with learning rate 1e-4, plus plain SGD
for ablations).  The ``project`` hook is how fixed-point weight storage is
modelled: after every update the parameters are snapped back onto the 32-bit
fixed-point grid.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

import numpy as np

__all__ = ["Optimizer", "Adam", "SGD"]

Projection = Callable[[np.ndarray], np.ndarray]


class Optimizer:
    """Base optimizer over a named parameter dictionary."""

    def __init__(
        self,
        parameters: Dict[str, np.ndarray],
        learning_rate: float,
        project: Optional[Projection] = None,
    ):
        if learning_rate <= 0.0:
            raise ValueError(f"learning_rate must be positive, got {learning_rate}")
        self.parameters = parameters
        self.learning_rate = learning_rate
        self.project = project
        self.step_count = 0

    def step(self, gradients: Dict[str, np.ndarray]) -> None:
        """Apply one update from the given gradients (in place)."""
        raise NotImplementedError

    def _apply_projection(self) -> None:
        if self.project is None:
            return
        for value in self.parameters.values():
            value[...] = self.project(value)


class SGD(Optimizer):
    """Plain stochastic gradient descent with optional momentum."""

    def __init__(
        self,
        parameters: Dict[str, np.ndarray],
        learning_rate: float = 1e-4,
        momentum: float = 0.0,
        project: Optional[Projection] = None,
    ):
        super().__init__(parameters, learning_rate, project)
        if not 0.0 <= momentum < 1.0:
            raise ValueError(f"momentum must lie in [0, 1), got {momentum}")
        self.momentum = momentum
        self._velocity = {name: np.zeros_like(v) for name, v in parameters.items()}

    def step(self, gradients: Dict[str, np.ndarray]) -> None:
        self.step_count += 1
        for name, param in self.parameters.items():
            grad = gradients[name]
            if self.momentum > 0.0:
                velocity = self._velocity[name]
                velocity[...] = self.momentum * velocity + grad
                grad = velocity
            param -= self.learning_rate * grad
        self._apply_projection()


class Adam(Optimizer):
    """Adam optimizer (Kingma & Ba), the paper's weight-update rule.

    Default hyper-parameters follow the paper: learning rate 1e-4, standard
    beta/epsilon values.
    """

    def __init__(
        self,
        parameters: Dict[str, np.ndarray],
        learning_rate: float = 1e-4,
        beta1: float = 0.9,
        beta2: float = 0.999,
        epsilon: float = 1e-8,
        project: Optional[Projection] = None,
    ):
        super().__init__(parameters, learning_rate, project)
        if not 0.0 <= beta1 < 1.0 or not 0.0 <= beta2 < 1.0:
            raise ValueError(f"betas must lie in [0, 1), got {beta1}, {beta2}")
        if epsilon <= 0.0:
            raise ValueError(f"epsilon must be positive, got {epsilon}")
        self.beta1 = beta1
        self.beta2 = beta2
        self.epsilon = epsilon
        self._moment1 = {name: np.zeros_like(v) for name, v in parameters.items()}
        self._moment2 = {name: np.zeros_like(v) for name, v in parameters.items()}

    def step(self, gradients: Dict[str, np.ndarray]) -> None:
        self.step_count += 1
        bias_correction1 = 1.0 - self.beta1 ** self.step_count
        bias_correction2 = 1.0 - self.beta2 ** self.step_count
        for name, param in self.parameters.items():
            grad = gradients[name]
            m = self._moment1[name]
            v = self._moment2[name]
            m[...] = self.beta1 * m + (1.0 - self.beta1) * grad
            v[...] = self.beta2 * v + (1.0 - self.beta2) * grad ** 2
            m_hat = m / bias_correction1
            v_hat = v / bias_correction2
            param -= self.learning_rate * m_hat / (np.sqrt(v_hat) + self.epsilon)
        self._apply_projection()

    def state(self) -> Dict[str, Dict[str, np.ndarray]]:
        """Optimizer state (first/second moments), e.g. for checkpointing."""
        return {"moment1": self._moment1, "moment2": self._moment2}
