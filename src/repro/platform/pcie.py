"""PCIe / runtime transfer model (the "Xilinx run-time" component of Fig. 9).

Every timestep the host pushes the current state and a replay batch of B
transitions to the FPGA over PCIe and reads the selected action back.  The
paper observes that this runtime component is dominated by a fixed overhead
(buffer allocation and driver calls in the Xilinx run-time), growing only
marginally when the batch size doubles.  The model therefore has a large
constant term, a small per-buffer term, and a bandwidth term that only
matters for very large batches.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

__all__ = ["PcieConfig", "PcieModel"]


@dataclass(frozen=True)
class PcieConfig:
    """Runtime / PCIe timing parameters."""

    #: Fixed runtime overhead per timestep (buffer allocation, driver calls).
    base_overhead_seconds: float = 1.5e-3
    #: Additional overhead per transferred buffer (input batch, state, action).
    per_buffer_seconds: float = 1.0e-4
    #: Effective host-to-card bandwidth in bytes per second (PCIe Gen3 x16
    #: achieves ~12 GB/s raw; small DMA transfers see far less).
    bandwidth_bytes_per_second: float = 3.0e9
    #: Marginal per-transition runtime cost (pinning, descriptor setup).
    per_transition_seconds: float = 1.5e-6

    def __post_init__(self) -> None:
        if self.base_overhead_seconds < 0 or self.per_buffer_seconds < 0:
            raise ValueError("overheads must be non-negative")
        if self.bandwidth_bytes_per_second <= 0:
            raise ValueError("bandwidth must be positive")
        if self.per_transition_seconds < 0:
            raise ValueError("per_transition_seconds must be non-negative")


class PcieModel:
    """Estimates the host↔FPGA runtime time of one timestep."""

    #: Buffers moved per timestep: input batch, current state, returned action.
    BUFFERS_PER_TIMESTEP = 3

    def __init__(self, config: Optional[PcieConfig] = None):
        self.config = config or PcieConfig()

    def batch_bytes(
        self,
        batch_size: int,
        state_dim: int,
        action_dim: int,
        bytes_per_value: float = 4,
        num_envs: int = 1,
    ) -> float:
        """Payload size of a replay batch of transitions.

        A transition carries state, action, reward, next state, and done
        flag; the current states for inference (one per lock-stepped
        environment) add ``num_envs`` more state vectors.
        ``bytes_per_value`` may be fractional: a mixed per-layer precision
        plan prices transfers at the layer-width-weighted average bytes per
        value.
        """
        if batch_size <= 0 or state_dim <= 0 or action_dim <= 0:
            raise ValueError("batch_size, state_dim, and action_dim must be positive")
        if num_envs <= 0:
            raise ValueError(f"num_envs must be positive, got {num_envs}")
        if bytes_per_value <= 0:
            raise ValueError(f"bytes_per_value must be positive, got {bytes_per_value}")
        per_transition = (2 * state_dim + action_dim + 2) * bytes_per_value
        return batch_size * per_transition + num_envs * state_dim * bytes_per_value

    def inference_bytes(
        self, num_states: int, state_dim: int, action_dim: int, bytes_per_value: float = 4
    ) -> float:
        """Payload of one batched inference round trip: N states, N actions."""
        if num_states <= 0 or state_dim <= 0 or action_dim <= 0:
            raise ValueError("num_states, state_dim, and action_dim must be positive")
        if bytes_per_value <= 0:
            raise ValueError(f"bytes_per_value must be positive, got {bytes_per_value}")
        return num_states * (state_dim + action_dim) * bytes_per_value

    def inference_seconds(
        self, num_states: int, state_dim: int, action_dim: int, bytes_per_value: float = 4
    ) -> float:
        """Runtime time of one batched inference round trip.

        The batch of N states travels in one host→card buffer and the N
        actions return in one card→host buffer, so the fixed runtime
        overhead is paid once — the whole point of batching the rollout
        versus N serial single-state round trips.
        """
        payload = self.inference_bytes(num_states, state_dim, action_dim, bytes_per_value)
        return (
            self.config.base_overhead_seconds
            + 2 * self.config.per_buffer_seconds
            + self.transfer_seconds(payload)
        )

    def transfer_seconds(self, payload_bytes: int) -> float:
        """Pure DMA transfer time for a payload."""
        if payload_bytes < 0:
            raise ValueError("payload_bytes must be non-negative")
        return payload_bytes / self.config.bandwidth_bytes_per_second

    # ------------------------------------------------------------------ #
    # Learner update transfers (pipelined training schedule)
    # ------------------------------------------------------------------ #
    @property
    def invocation_overhead_seconds(self) -> float:
        """Fixed cost of one runtime invocation (driver calls + 2 buffers).

        One invocation moves a host→card payload and reads a card→host
        result back; the per-buffer term is therefore paid twice.

        A streamed update queue pays this once per *submission*, not once
        per update — and a heterogeneous fleet's learners submit one stream
        per benchmark (the batch layout changes with the layer dimensions),
        so the pipelined fleet pricing charges this overhead once per
        benchmark group
        (:meth:`~repro.platform.FixarPlatform.fleet_pipelined_round_seconds`).
        """
        return self.config.base_overhead_seconds + 2 * self.config.per_buffer_seconds

    def update_bytes(
        self, batch_size: int, state_dim: int, action_dim: int, bytes_per_value: float = 4
    ) -> float:
        """Payload of one learner update: a replay batch, no inference states."""
        if batch_size <= 0 or state_dim <= 0 or action_dim <= 0:
            raise ValueError("batch_size, state_dim, and action_dim must be positive")
        if bytes_per_value <= 0:
            raise ValueError(f"bytes_per_value must be positive, got {bytes_per_value}")
        per_transition = (2 * state_dim + action_dim + 2) * bytes_per_value
        return batch_size * per_transition

    def update_marginal_seconds(
        self, batch_size: int, state_dim: int, action_dim: int, bytes_per_value: float = 4
    ) -> float:
        """Marginal runtime cost of one update *inside* a streamed invocation.

        Descriptor setup / pinning per transition plus the DMA transfer of
        the batch — everything except the fixed invocation overhead, which a
        streamed update queue pays once per submission rather than once per
        update.
        """
        payload = self.update_bytes(batch_size, state_dim, action_dim, bytes_per_value)
        return self.config.per_transition_seconds * batch_size + self.transfer_seconds(payload)

    def update_seconds(
        self, batch_size: int, state_dim: int, action_dim: int, bytes_per_value: float = 4
    ) -> float:
        """Runtime time of one *blocking* learner update invocation.

        The sequential training schedule interleaves every update between
        collection inferences on the same command queue, so each update is
        its own runtime invocation and pays the full fixed overhead — the
        same overhead structure the paper measures per timestep (Fig. 9).
        """
        return self.invocation_overhead_seconds + self.update_marginal_seconds(
            batch_size, state_dim, action_dim, bytes_per_value
        )

    def timestep_seconds(
        self,
        batch_size: int,
        state_dim: int,
        action_dim: int,
        num_envs: int = 1,
        bytes_per_value: float = 4,
    ) -> float:
        """Total runtime time of one timestep (Fig. 9's "runtime" component).

        With ``num_envs > 1`` the inference states and returned actions are
        batched into the same three buffers, so only the payload grows — not
        the per-timestep driver overhead.  ``bytes_per_value`` scales *every*
        payload term, including the extra returned actions (previously
        hardcoded at 4 bytes, which silently mispriced half-precision
        transfer studies).
        """
        payload = self.batch_bytes(
            batch_size,
            state_dim,
            action_dim,
            bytes_per_value=bytes_per_value,
            num_envs=num_envs,
        )
        # Extra returned actions of the additional lock-stepped envs.
        payload += max(0, num_envs - 1) * action_dim * bytes_per_value
        return (
            self.config.base_overhead_seconds
            + self.BUFFERS_PER_TIMESTEP * self.config.per_buffer_seconds
            + self.config.per_transition_seconds * batch_size
            + self.transfer_seconds(payload)
        )
