"""Analytical CPU-GPU baseline (the paper's comparison platform).

The paper compares FIXAR against a conventional platform: the same Xeon host
plus an Nvidia Titan RTX running the DDPG networks in 32-bit floating point.
Two behaviours of that baseline drive Figs. 8 and 10:

* a DDPG timestep on the GPU is dominated by fixed per-timestep overhead
  (many small kernel launches, Python framework time), so the GPU's
  effective IPS grows roughly linearly with the batch size as its hardware
  utilization improves;
* the GPU draws far more power (56.7 W average in the paper's measurement)
  than the FPGA card, so its energy efficiency is an order of magnitude
  lower even at its best batch size.

The model is calibrated so the default parameters reproduce the paper's
measured averages (≈2.7× platform speedup, ≈5.5× accelerator speedup, and
15.4× energy-efficiency advantage for FIXAR).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence

from .host import HostModel
from .metrics import ips_per_watt

__all__ = ["GpuConfig", "GpuAcceleratorModel", "CpuGpuPlatform"]


@dataclass(frozen=True)
class GpuConfig:
    """Timing and power parameters of the GPU baseline."""

    #: Fixed GPU time per training timestep (kernel launches, sync, copies).
    fixed_overhead_seconds: float = 20.0e-3
    #: Marginal GPU time per batch transition once launches are amortised.
    per_sample_seconds: float = 2.0e-6
    #: Framework (Python / PyTorch host-side) time per timestep.
    framework_seconds: float = 1.0e-3
    #: Average board power while running the DDPG workloads (paper: 56.7 W).
    average_watts: float = 56.7
    #: Peak hardware utilization reached at very large batch sizes.
    peak_utilization: float = 0.95

    def __post_init__(self) -> None:
        if self.fixed_overhead_seconds <= 0 or self.per_sample_seconds < 0:
            raise ValueError("GPU timing parameters must be positive")
        if self.framework_seconds < 0:
            raise ValueError("framework_seconds must be non-negative")
        if self.average_watts <= 0:
            raise ValueError("average_watts must be positive")
        if not 0 < self.peak_utilization <= 1:
            raise ValueError("peak_utilization must lie in (0, 1]")


class GpuAcceleratorModel:
    """GPU-only timing (the Fig. 10 comparison, no host or framework time)."""

    def __init__(self, config: Optional[GpuConfig] = None):
        self.config = config or GpuConfig()

    def timestep_seconds(self, batch_size: int) -> float:
        """GPU time to process one training timestep with a batch of B."""
        if batch_size <= 0:
            raise ValueError(f"batch_size must be positive, got {batch_size}")
        return (
            self.config.fixed_overhead_seconds
            + self.config.per_sample_seconds * batch_size
        )

    def ips(self, batch_size: int) -> float:
        """GPU accelerator-only IPS (batch transitions per second)."""
        return batch_size / self.timestep_seconds(batch_size)

    def utilization(self, batch_size: int) -> float:
        """Hardware utilization, growing linearly with batch size (paper obs.)."""
        if batch_size <= 0:
            raise ValueError(f"batch_size must be positive, got {batch_size}")
        amortised = self.config.per_sample_seconds * batch_size
        fraction = amortised / self.timestep_seconds(batch_size)
        return min(self.config.peak_utilization, fraction)

    def average_watts(self) -> float:
        """Average board power while training."""
        return self.config.average_watts

    def ips_per_watt(self, batch_size: int) -> float:
        """GPU energy efficiency at a batch size."""
        return ips_per_watt(self.ips(batch_size), self.average_watts())


class CpuGpuPlatform:
    """End-to-end CPU-GPU platform timing (the Fig. 8 baseline)."""

    def __init__(
        self,
        gpu: Optional[GpuAcceleratorModel] = None,
        host: Optional[HostModel] = None,
    ):
        self.gpu = gpu or GpuAcceleratorModel()
        self.host = host or HostModel()

    def timestep_breakdown(self, benchmark: str, batch_size: int) -> Dict[str, float]:
        """Per-component time of one platform timestep in seconds."""
        return {
            "cpu_environment": self.host.timestep_seconds(benchmark, batch_size),
            "framework": self.gpu.config.framework_seconds,
            "gpu": self.gpu.timestep_seconds(batch_size),
        }

    def timestep_seconds(self, benchmark: str, batch_size: int) -> float:
        """Total end-to-end time of one platform timestep."""
        return sum(self.timestep_breakdown(benchmark, batch_size).values())

    def ips(self, benchmark: str, batch_size: int) -> float:
        """Platform-level training throughput in IPS."""
        return batch_size / self.timestep_seconds(benchmark, batch_size)

    def sweep_ips(self, benchmark: str, batch_sizes: Sequence[int]) -> Dict[int, float]:
        """IPS for a list of batch sizes (one Fig. 8 series)."""
        return {batch: self.ips(benchmark, batch) for batch in batch_sizes}
