"""System-level platform models: FIXAR (CPU + FPGA) and the CPU-GPU baseline.

Composes the host-CPU, PCIe/runtime, accelerator, and GPU timing models into
end-to-end timestep latencies, throughput (IPS), and energy efficiency, which
is what the paper's Figs. 8–10 report.
"""

from .cosim import CoSimulationResult, PlatformCoSimulation
from .energy import CampaignEstimate, estimate_training_campaign
from .fixar_platform import (
    PAPER_BATCH_SIZES,
    BatchInferenceReport,
    CollectionInferenceReport,
    FixarPlatform,
    FleetGroupInference,
    FleetInferenceReport,
    WorkloadSpec,
)
from .gpu_baseline import CpuGpuPlatform, GpuAcceleratorModel, GpuConfig
from .host import HostConfig, HostModel
from .pool import (
    PLACEMENTS,
    AcceleratorPool,
    PoolInferenceReport,
    ShardedInferenceReport,
)
from .metrics import (
    average_ips,
    geometric_mean,
    ips,
    ips_per_watt,
    normalize_to_dsp,
    speedup,
)
from .pcie import PcieConfig, PcieModel

__all__ = [
    "FixarPlatform",
    "BatchInferenceReport",
    "CollectionInferenceReport",
    "FleetGroupInference",
    "FleetInferenceReport",
    "AcceleratorPool",
    "PoolInferenceReport",
    "ShardedInferenceReport",
    "PLACEMENTS",
    "WorkloadSpec",
    "PAPER_BATCH_SIZES",
    "PlatformCoSimulation",
    "CoSimulationResult",
    "CampaignEstimate",
    "estimate_training_campaign",
    "CpuGpuPlatform",
    "GpuAcceleratorModel",
    "GpuConfig",
    "HostModel",
    "HostConfig",
    "PcieModel",
    "PcieConfig",
    "ips",
    "ips_per_watt",
    "speedup",
    "geometric_mean",
    "normalize_to_dsp",
    "average_ips",
]
