"""End-to-end FIXAR platform model (host CPU + PCIe runtime + FPGA).

One platform timestep follows the paper's Fig. 3 sequence:

1. the host CPU advances the environment with the previous action, stores
   the transition, and samples a replay batch of B transitions;
2. the batch and the current state are transferred to the FPGA through the
   Xilinx run-time over PCIe;
3. the FPGA trains the critic and actor networks on the batch and runs the
   actor's inference for the current state;
4. the selected action returns to the host.

The model composes the host, PCIe, and accelerator timing models to produce
the Fig. 8 throughput numbers, the Fig. 9 execution-time breakdown, and the
Fig. 10 accelerator-only comparison.

The vectorized rollout subsystem adds a batched-inference hook: every
timing query accepts ``num_envs``, pricing one batch-of-N actor inference
and one PCIe round trip per lock-step instead of N serial single-state
round trips, and :meth:`FixarPlatform.infer_batch` reports the latency,
payload, and energy of that batched inference on its own (the quantity the
rollout engine accumulates).

The pipelined training schedule extends the fleet accounting
(:meth:`FixarPlatform.infer_collection` / ``collection_steps_per_second``)
to full training rounds: :meth:`FixarPlatform.sequential_round_seconds`
prices today's alternating schedule (collection *then* updates, each update
a blocking runtime invocation) while
:meth:`FixarPlatform.pipelined_round_seconds` prices the decoupled learner —
the update stream overlaps collection, so the round costs
``max(collection, update)`` instead of their sum, with the fixed runtime
overhead amortized over the round's streamed updates.

Heterogeneous fleets add the last dimension: collector workers that own
*different benchmarks* present back-to-back batched inferences with
**different layer dimensions** to the same single accelerator — the
adaptive-parallelism scenario FIXAR's AAP core exists for.  The
``fleet_*`` methods price those rounds: a fleet is a sequence of
``(workload-or-benchmark, worker_count)`` entries, each priced under its
own :class:`WorkloadSpec` (via :meth:`FixarPlatform.with_workload` /
:meth:`FixarPlatform.for_benchmark`), with the accelerator serving every
group's inferences serially and each benchmark's training passes
(``train_pass_seconds`` differs per layer dimensions) folded into the
pipelined update stream.
"""

from __future__ import annotations

import operator
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..accelerator import AcceleratorConfig, PowerModel, TimingModel
from ..envs.registry import benchmark_dimensions
from ..nn.network import DEFAULT_HIDDEN_SIZES
from .host import HostModel
from .metrics import ips_per_watt
from .pcie import PcieModel

__all__ = [
    "WorkloadSpec",
    "FixarPlatform",
    "BatchInferenceReport",
    "CollectionInferenceReport",
    "FleetGroupInference",
    "FleetInferenceReport",
    "PAPER_BATCH_SIZES",
]

#: Batch sizes swept in the paper's evaluation.
PAPER_BATCH_SIZES = (64, 128, 256, 512)


def _normalize_precision_state(state: Optional[Dict]) -> Optional[Dict]:
    """Canonical ``{"default": bits, "layers": {name: bits}}`` form (or None)."""
    if state is None:
        return None
    default = int(state.get("default", 32))
    layers = {str(name): int(bits) for name, bits in dict(state.get("layers") or {}).items()}
    if default <= 0 or any(bits <= 0 for bits in layers.values()):
        raise ValueError(f"precision_state bitwidths must be positive, got {state!r}")
    return {"default": default, "layers": layers}


@dataclass(frozen=True)
class WorkloadSpec:
    """The DDPG workload a benchmark presents to the accelerator."""

    benchmark: str
    state_dim: int
    action_dim: int
    hidden_sizes: Sequence[int] = DEFAULT_HIDDEN_SIZES

    @property
    def actor_shapes(self):
        """Dense-layer shapes (input, output) of the actor network."""
        sizes = [self.state_dim, *self.hidden_sizes, self.action_dim]
        return list(zip(sizes[:-1], sizes[1:]))

    @property
    def critic_shapes(self):
        """Dense-layer shapes (input, output) of the critic network."""
        sizes = [self.state_dim + self.action_dim, *self.hidden_sizes, 1]
        return list(zip(sizes[:-1], sizes[1:]))

    @classmethod
    def from_environment(cls, env) -> "WorkloadSpec":
        """Build the spec from an environment (scalar or vector) instance."""
        return cls(benchmark=env.name, state_dim=env.state_dim, action_dim=env.action_dim)

    @classmethod
    def from_benchmark(
        cls, name: str, hidden_sizes: Sequence[int] = DEFAULT_HIDDEN_SIZES
    ) -> "WorkloadSpec":
        """Build the spec for a registered benchmark by name.

        Dimensions come from the registry's cached
        :func:`~repro.envs.registry.benchmark_dimensions`, so no environment
        is instantiated — heterogeneous fleet pricing resolves one spec per
        benchmark without paying N env builds.
        """
        dims = benchmark_dimensions(name)
        return cls(
            benchmark=name,
            state_dim=dims["state_dim"],
            action_dim=dims["action_dim"],
            hidden_sizes=tuple(hidden_sizes),
        )


@dataclass(frozen=True)
class BatchInferenceReport:
    """Cost of serving one batch-of-N actor inference to the host.

    Produced by :meth:`FixarPlatform.infer_batch`; the rollout engine
    accumulates ``total_seconds`` per lock-step to co-simulate a vectorized
    rollout's platform time.
    """

    #: Number of states inferred in the batch.
    num_states: int
    #: FPGA time of the batched forward pass.
    fpga_seconds: float
    #: Xilinx runtime / PCIe time of the single batched round trip.
    runtime_seconds: float
    #: Bytes crossing PCIe (N states up, N actions down).
    pcie_bytes: int
    #: FPGA board energy spent on the batched pass.
    energy_joules: float

    @property
    def total_seconds(self) -> float:
        """End-to-end latency of the batched inference."""
        return self.fpga_seconds + self.runtime_seconds

    @property
    def states_per_second(self) -> float:
        """Inference throughput of the batch."""
        return self.num_states / self.total_seconds


@dataclass(frozen=True)
class CollectionInferenceReport:
    """Aggregated inference cost of one multi-worker collection round.

    ``num_workers`` collection workers each present one batch-of-``num_envs``
    actor inference per lock-step; the single accelerator serves those
    batches back to back, so a full fleet round costs ``num_workers``
    sequential :meth:`FixarPlatform.infer_batch` passes.  This mirrors the
    accounting the :class:`~repro.rl.workers.AsyncCollector` aggregates from
    its per-worker engines (each engine prices its own lock-step with
    ``infer_batch(num_envs)``).
    """

    #: Workers in the fleet.
    num_workers: int
    #: Cost of one worker's batched inference.
    per_worker: BatchInferenceReport

    @property
    def num_states(self) -> int:
        """States inferred per fleet round."""
        return self.num_workers * self.per_worker.num_states

    @property
    def total_seconds(self) -> float:
        """End-to-end latency of serving the whole fleet's round."""
        return self.num_workers * self.per_worker.total_seconds

    @property
    def pcie_bytes(self) -> int:
        """Bytes crossing PCIe per fleet round (one round trip per worker)."""
        return self.num_workers * self.per_worker.pcie_bytes

    @property
    def energy_joules(self) -> float:
        """FPGA board energy per fleet round."""
        return self.num_workers * self.per_worker.energy_joules

    @property
    def states_per_second(self) -> float:
        """Inference throughput across the fleet."""
        return self.num_states / self.total_seconds


@dataclass(frozen=True)
class FleetGroupInference:
    """One benchmark group's slice of a fleet inference round.

    ``report`` prices a single lock-step of the group (``num_workers``
    batched inferences); ``weight`` is the group's lock-steps per scheduled
    round, so a throughput-weighted round's report describes the round the
    scheduler actually runs instead of the round-robin one.  The weighted
    accessors scale the lock-step costs accordingly (``weight == 1``
    reproduces the unweighted accounting exactly).
    """

    #: Benchmark display name.
    benchmark: str
    #: Cost of one of this group's lock-steps.
    report: CollectionInferenceReport
    #: Lock-steps this group runs per scheduled round.
    weight: int = 1

    @property
    def num_states(self) -> int:
        """States this group infers per scheduled round."""
        return self.weight * self.report.num_states

    @property
    def total_seconds(self) -> float:
        """Accelerator-serial latency of this group's round slice."""
        return self.weight * self.report.total_seconds

    @property
    def fpga_seconds(self) -> float:
        """Pure FPGA time of this group's round slice."""
        return self.weight * (
            self.report.num_workers * self.report.per_worker.fpga_seconds
        )

    @property
    def pcie_bytes(self) -> int:
        """Bytes this group moves over PCIe per scheduled round."""
        return self.weight * self.report.pcie_bytes

    @property
    def energy_joules(self) -> float:
        """FPGA board energy of this group's round slice."""
        return self.weight * self.report.energy_joules


@dataclass(frozen=True)
class FleetInferenceReport:
    """Aggregated inference cost of one *heterogeneous* fleet round.

    Produced by :meth:`FixarPlatform.infer_fleet`: each benchmark group's
    workers present their batched inferences under their own layer
    dimensions, and the single accelerator serves every group back to back
    — so the totals are sums of per-group :class:`FleetGroupInference`
    costs (each a :class:`CollectionInferenceReport` scaled by the group's
    round weight), not one report scaled by a worker count.
    """

    #: Per-benchmark group costs, in fleet order.
    groups: Tuple[FleetGroupInference, ...]

    @property
    def num_workers(self) -> int:
        """Workers across the whole fleet (independent of round weights)."""
        return sum(group.report.num_workers for group in self.groups)

    @property
    def num_states(self) -> int:
        """States inferred per fleet round."""
        return sum(group.num_states for group in self.groups)

    @property
    def total_seconds(self) -> float:
        """End-to-end latency of serving every group's round serially."""
        return sum(group.total_seconds for group in self.groups)

    @property
    def fpga_seconds(self) -> float:
        """Pure FPGA time of the fleet's inferences (update-stream term)."""
        return sum(group.fpga_seconds for group in self.groups)

    @property
    def pcie_bytes(self) -> int:
        """Bytes crossing PCIe per fleet round."""
        return sum(group.pcie_bytes for group in self.groups)

    @property
    def energy_joules(self) -> float:
        """FPGA board energy per fleet round."""
        return sum(group.energy_joules for group in self.groups)

    @property
    def states_per_second(self) -> float:
        """Inference throughput across the heterogeneous fleet."""
        return self.num_states / self.total_seconds


class FixarPlatform:
    """Timing model of the full CPU-FPGA platform."""

    def __init__(
        self,
        workload: WorkloadSpec,
        accelerator_config: Optional[AcceleratorConfig] = None,
        host: Optional[HostModel] = None,
        pcie: Optional[PcieModel] = None,
        half_precision: bool = False,
        precision_state: Optional[Dict] = None,
    ):
        self.workload = workload
        self.accelerator_config = accelerator_config or AcceleratorConfig()
        self.timing = TimingModel(self.accelerator_config)
        self.power = PowerModel(self.accelerator_config)
        self.host = host or HostModel()
        self.pcie = pcie or PcieModel()
        self.half_precision = half_precision
        #: Mixed per-layer precision plan (``{"default": bits, "layers":
        #: {layer: bits}}``) — ``None`` means the uniform legacy modes
        #: selected by ``half_precision``.  Set through
        #: :meth:`with_precision_state`.
        self.precision_state = _normalize_precision_state(precision_state)

    # ------------------------------------------------------------------ #
    # Mixed per-layer precision (precision-policy pricing seam)
    # ------------------------------------------------------------------ #
    def with_precision_state(self, state: Optional[Dict]) -> "FixarPlatform":
        """A sibling platform priced under a precision policy's state.

        ``state`` is the normalized ``precision_state()`` of a
        :class:`~repro.rl.precision.PrecisionPolicy` (or
        :class:`~repro.rl.qat.QATController`): ``{"default": bits,
        "layers": {layer: bits}}``.  ``None`` returns this platform
        unchanged (nothing to re-price).  A *uniform* state collapses onto
        the legacy modes — all-32 prices exactly like
        ``half_precision=False`` and all-16 exactly like
        ``half_precision=True`` — while a mixed state prices each layer's
        MVM passes at its own width and the PCIe payload at the
        layer-width-weighted average bytes per value.
        """
        state = _normalize_precision_state(state)
        if state is None:
            return self
        widths = {state["default"], *state["layers"].values()}
        if len(widths) == 1:
            half = next(iter(widths)) <= 16
            if half == self.half_precision and self.precision_state is None:
                return self
            return FixarPlatform(
                self.workload,
                self.accelerator_config,
                host=self.host,
                pcie=self.pcie,
                half_precision=half,
            )
        return FixarPlatform(
            self.workload,
            self.accelerator_config,
            host=self.host,
            pcie=self.pcie,
            half_precision=False,
            precision_state=state,
        )

    def _layer_half_flags(self):
        """Per-layer half flags ``(actor, critic)`` under the current plan.

        Layer names follow the repository's canonical MLP naming —
        ``actor_fc0..actor_fc{n-2}``/``actor_out`` and the ``critic_``
        equivalents — resolved against this workload's layer shapes; a
        layer absent from the plan inherits the plan's default width.
        With no plan both networks collapse to the uniform
        ``half_precision`` bool (identical pricing to the legacy path).
        """
        if self.precision_state is None:
            return self.half_precision, self.half_precision
        default = self.precision_state["default"]
        layers = self.precision_state["layers"]

        def flags(prefix: str, shapes) -> List[bool]:
            names = [f"{prefix}_fc{i}" for i in range(len(shapes) - 1)]
            names.append(f"{prefix}_out")
            return [layers.get(name, default) <= 16 for name in names]

        return (
            flags("actor", self.workload.actor_shapes),
            flags("critic", self.workload.critic_shapes),
        )

    # ------------------------------------------------------------------ #
    # Per-component times (Fig. 9a)
    # ------------------------------------------------------------------ #
    def fpga_seconds(self, batch_size: int, num_envs: int = 1) -> float:
        """FPGA accelerator time of one timestep."""
        actor_half, critic_half = self._layer_half_flags()
        return self.timing.timestep_seconds(
            self.workload.actor_shapes,
            self.workload.critic_shapes,
            batch_size,
            half_precision=self.half_precision,
            num_envs=num_envs,
            actor_half_precision=actor_half,
            critic_half_precision=critic_half,
        )

    @property
    def transfer_bytes_per_value(self) -> float:
        """Width of one transferred value.

        Uniform modes keep the legacy widths (4 bytes full precision, 2
        bytes after the half-precision switch).  Under a mixed per-layer
        plan the host payload carries values produced by layers of
        different widths, so transfers are priced at the
        out-features-weighted average bytes per value across both
        networks' layers — a 2.x-byte effective width between the two
        uniform extremes.
        """
        if self.precision_state is None:
            return 2 if self.half_precision else 4
        actor_half, critic_half = self._layer_half_flags()
        total_features = 0
        total_bytes = 0.0
        for flags, shapes in (
            (actor_half, self.workload.actor_shapes),
            (critic_half, self.workload.critic_shapes),
        ):
            for (_input_dim, output_dim), half in zip(shapes, flags):
                total_features += output_dim
                total_bytes += output_dim * (2 if half else 4)
        return total_bytes / total_features

    def runtime_seconds(
        self, batch_size: int, num_envs: int = 1, bytes_per_value: Optional[int] = None
    ) -> float:
        """Xilinx run-time / PCIe time of one timestep.

        ``bytes_per_value`` scales the transferred payload; by default it
        follows the platform's precision mode (4 bytes full precision, 2
        bytes after the half-precision switch), so half-precision transfer
        studies are priced consistently with the datapath.
        """
        return self.pcie.timestep_seconds(
            batch_size,
            self.workload.state_dim,
            self.workload.action_dim,
            num_envs=num_envs,
            bytes_per_value=(
                self.transfer_bytes_per_value if bytes_per_value is None else bytes_per_value
            ),
        )

    def cpu_seconds(self, batch_size: int, num_envs: int = 1) -> float:
        """Host CPU (environment + replay) time of one timestep."""
        return self.host.timestep_seconds(self.workload.benchmark, batch_size, num_envs=num_envs)

    def timestep_breakdown(self, batch_size: int, num_envs: int = 1) -> Dict[str, float]:
        """Execution-time breakdown of a single timestep (Fig. 9a)."""
        return {
            "cpu_environment": self.cpu_seconds(batch_size, num_envs),
            "runtime": self.runtime_seconds(batch_size, num_envs),
            "fpga": self.fpga_seconds(batch_size, num_envs),
        }

    def timestep_ratio(self, batch_size: int, num_envs: int = 1) -> Dict[str, float]:
        """Execution-time *ratio* of each component (Fig. 9b)."""
        breakdown = self.timestep_breakdown(batch_size, num_envs)
        total = sum(breakdown.values())
        return {name: value / total for name, value in breakdown.items()}

    def timestep_seconds(self, batch_size: int, num_envs: int = 1) -> float:
        """End-to-end time of one platform timestep."""
        return sum(self.timestep_breakdown(batch_size, num_envs).values())

    # ------------------------------------------------------------------ #
    # Batched rollout inference (vectorized execution subsystem)
    # ------------------------------------------------------------------ #
    def infer_batch(self, num_states: int) -> BatchInferenceReport:
        """Price one batch-of-N actor inference served to the host.

        The N states ride a single PCIe round trip and a single forward
        pass whose weight loads are amortised over the batch, so both the
        latency and the payload grow sub-linearly in N — the accounting the
        vectorized rollout engine relies on instead of N serial
        single-state inferences.
        """
        if num_states <= 0:
            raise ValueError(f"num_states must be positive, got {num_states}")
        actor_half, _critic_half = self._layer_half_flags()
        fpga = self.timing.inference_seconds(
            self.workload.actor_shapes, num_states, half_precision=actor_half
        )
        runtime = self.pcie.inference_seconds(
            num_states,
            self.workload.state_dim,
            self.workload.action_dim,
            bytes_per_value=self.transfer_bytes_per_value,
        )
        payload = self.pcie.inference_bytes(
            num_states,
            self.workload.state_dim,
            self.workload.action_dim,
            bytes_per_value=self.transfer_bytes_per_value,
        )
        energy = self.power.average_watts() * fpga
        return BatchInferenceReport(
            num_states=num_states,
            fpga_seconds=fpga,
            runtime_seconds=runtime,
            pcie_bytes=payload,
            energy_joules=energy,
        )

    def serving_round_seconds(self, num_requests: int) -> float:
        """Modelled time to serve one dynamic-batcher flush of N requests.

        A flush is exactly one :meth:`infer_batch` pass — the N coalesced
        states ride a single PCIe round trip and one amortised forward
        pass — so the serving oracle is that report's end-to-end latency.
        Part of the ``*_round_seconds`` surface the ``oracle-surface-
        parity`` lint rule pins onto :class:`~repro.platform.
        AcceleratorPool`, whose version shards the flush over its
        collection devices.
        """
        return self.infer_batch(num_requests).total_seconds

    def infer_collection(
        self, num_envs: int, num_workers: int = 1
    ) -> CollectionInferenceReport:
        """Price one collection round of a ``num_workers``-worker fleet.

        Each worker's lock-step batch of ``num_envs`` states is one
        :meth:`infer_batch` pass; the accelerator serves the fleet's batches
        sequentially, so the round costs ``num_workers`` such passes — the
        quantity the async collection coordinator aggregates.
        """
        if num_workers <= 0:
            raise ValueError(f"num_workers must be positive, got {num_workers}")
        return CollectionInferenceReport(
            num_workers=num_workers, per_worker=self.infer_batch(num_envs)
        )

    def collection_round_seconds(self, num_envs: int, num_workers: int = 1) -> float:
        """Modelled time of one fleet collection round (``num_workers * num_envs`` steps).

        Each worker alternates its host phase (stepping ``num_envs``
        environments on its own Xeon core) with its accelerator phase (one
        batched inference), so no worker can cycle faster than its serial
        ``host + inference`` chain.  The fleet pipelines across workers —
        while one batch is in flight the others run their host phases — but
        the single accelerator serves the ``num_workers`` batches back to
        back, so the steady-state round is whichever bound saturates first:
        ``max(host + inference, num_workers * inference)``.
        """
        if num_workers <= 0:
            raise ValueError(f"num_workers must be positive, got {num_workers}")
        host = self.host.collection_step_seconds(self.workload.benchmark, num_envs)
        inference = self.infer_batch(num_envs).total_seconds
        return max(host + inference, num_workers * inference)

    def collection_steps_per_second(self, num_envs: int, num_workers: int = 1) -> float:
        """Modelled collection throughput of a ``num_workers``-worker fleet."""
        if num_workers <= 0:
            raise ValueError(f"num_workers must be positive, got {num_workers}")
        return (
            num_workers
            * num_envs
            / self.collection_round_seconds(num_envs, num_workers)
        )

    def env_steps_per_second(self, batch_size: int, num_envs: int = 1) -> float:
        """Environment steps collected per second with N lock-stepped envs."""
        return num_envs / self.timestep_seconds(batch_size, num_envs)

    # ------------------------------------------------------------------ #
    # Pipelined training schedule (overlapped collection + updates)
    # ------------------------------------------------------------------ #
    def train_pass_seconds(self, batch_size: int) -> float:
        """FPGA time of one agent update (training passes only, no rollout
        inference — the collection side prices inference separately through
        :meth:`infer_batch`)."""
        actor_half, critic_half = self._layer_half_flags()
        breakdown = self.timing.timestep_breakdown(
            self.workload.actor_shapes,
            self.workload.critic_shapes,
            batch_size,
            half_precision=self.half_precision,
            num_envs=1,
            actor_half_precision=actor_half,
            critic_half_precision=critic_half,
        )
        cycles = breakdown.total_cycles - breakdown.phases["actor_inference"]
        return cycles / self.timing.config.clock_hz

    def update_step_seconds(self, batch_size: int) -> float:
        """Modelled time of one *blocking* learner update.

        The sequential schedule interleaves each update between collection
        inferences on the same command queue, so every update is its own
        runtime invocation: host replay assembly, a full PCIe invocation for
        the batch, and the FPGA training passes, strictly in sequence.
        """
        return (
            self.host.update_phase_seconds(batch_size)
            + self.pcie.update_seconds(
                batch_size,
                self.workload.state_dim,
                self.workload.action_dim,
                bytes_per_value=self.transfer_bytes_per_value,
            )
            + self.train_pass_seconds(batch_size)
        )

    def update_round_seconds(
        self, batch_size: int, updates: int, pipelined: bool = False
    ) -> float:
        """Modelled time of the learner's update phase for one round.

        ``pipelined=False`` prices the sequential schedule: ``updates``
        blocking invocations back to back.  ``pipelined=True`` prices the
        decoupled learner, which owns an uninterrupted update stream per
        round: the fixed runtime overhead is paid once per submission, and
        each update's replay assembly and DMA transfer are double-buffered
        behind the previous update's FPGA training passes, so the marginal
        cost per update is whichever of the two is longer.
        """
        if updates < 0:
            raise ValueError(f"updates must be non-negative, got {updates}")
        if updates == 0:
            return 0.0
        if not pipelined:
            return updates * self.update_step_seconds(batch_size)
        per_update = max(
            self.train_pass_seconds(batch_size),
            self.host.update_phase_seconds(batch_size)
            + self.pcie.update_marginal_seconds(
                batch_size,
                self.workload.state_dim,
                self.workload.action_dim,
                bytes_per_value=self.transfer_bytes_per_value,
            ),
        )
        return self.pcie.invocation_overhead_seconds + updates * per_update

    def _updates_per_round(self, num_envs: int, num_workers: int, updates_per_round):
        """Default update quota of one round: one per collected env step."""
        if updates_per_round is None:
            return num_envs * num_workers
        return updates_per_round

    def sequential_round_seconds(
        self,
        num_envs: int,
        num_workers: int = 1,
        batch_size: int = 64,
        updates_per_round: Optional[int] = None,
    ) -> float:
        """Modelled time of one round of today's sequential train() schedule:
        the fleet collects ``num_workers * num_envs`` steps, *then* the
        learner runs its updates — collection and updates strictly
        alternate, so the round costs their sum.
        """
        updates = self._updates_per_round(num_envs, num_workers, updates_per_round)
        return self.collection_round_seconds(
            num_envs, num_workers
        ) + self.update_round_seconds(batch_size, updates, pipelined=False)

    def pipelined_round_seconds(
        self,
        num_envs: int,
        num_workers: int = 1,
        batch_size: int = 64,
        updates_per_round: Optional[int] = None,
    ) -> float:
        """Modelled time of one *pipelined* training round.

        While the fleet collects round ``k+1``, the learner streams round
        ``k``'s updates, so the steady-state round is bounded by whichever
        phase is longer — ``max(collection, update)`` instead of their sum.
        The single accelerator still serves both phases: the fleet's
        ``num_workers`` batched rollout inferences interleave with the
        update stream's training passes, so their FPGA time is added to the
        update phase before taking the max.
        """
        updates = self._updates_per_round(num_envs, num_workers, updates_per_round)
        collection = self.collection_round_seconds(num_envs, num_workers)
        update = self.update_round_seconds(batch_size, updates, pipelined=True)
        inference_fpga = num_workers * self.infer_batch(num_envs).fpga_seconds
        return max(collection, update + inference_fpga)

    def training_steps_per_second(
        self,
        num_envs: int,
        num_workers: int = 1,
        batch_size: int = 64,
        updates_per_round: Optional[int] = None,
        pipelined: bool = False,
    ) -> float:
        """Modelled end-to-end training throughput (environment steps/sec)."""
        round_seconds = (
            self.pipelined_round_seconds(num_envs, num_workers, batch_size, updates_per_round)
            if pipelined
            else self.sequential_round_seconds(
                num_envs, num_workers, batch_size, updates_per_round
            )
        )
        return num_workers * num_envs / round_seconds

    def pipelined_speedup(
        self,
        num_envs: int,
        num_workers: int = 1,
        batch_size: int = 64,
        updates_per_round: Optional[int] = None,
    ) -> float:
        """Steps/sec of the pipelined schedule over the sequential one."""
        return self.training_steps_per_second(
            num_envs, num_workers, batch_size, updates_per_round, pipelined=True
        ) / self.training_steps_per_second(
            num_envs, num_workers, batch_size, updates_per_round, pipelined=False
        )

    # ------------------------------------------------------------------ #
    # Heterogeneous fleets (mixed layer dimensions on one accelerator)
    # ------------------------------------------------------------------ #
    def with_workload(self, workload: WorkloadSpec) -> "FixarPlatform":
        """A sibling platform pricing another workload on the same hardware.

        The accelerator configuration, host and PCIe models (including any
        host calibration), and the precision mode — uniform *and* any mixed
        per-layer plan — are shared; only the layer dimensions change,
        which is exactly what happens when the single accelerator turns
        from one benchmark's batch to another's.
        """
        return FixarPlatform(
            workload,
            self.accelerator_config,
            host=self.host,
            pcie=self.pcie,
            half_precision=self.half_precision,
            precision_state=self.precision_state,
        )

    def for_benchmark(
        self, benchmark: str, hidden_sizes: Optional[Sequence[int]] = None
    ) -> "FixarPlatform":
        """A sibling platform for a registered benchmark's workload.

        ``hidden_sizes`` defaults to this platform's own hidden layer
        sizes, so a fleet of agents built with one network architecture is
        priced consistently across benchmarks.
        """
        if hidden_sizes is None:
            hidden_sizes = self.workload.hidden_sizes
        return self.with_workload(
            WorkloadSpec.from_benchmark(benchmark, hidden_sizes=tuple(hidden_sizes))
        )

    def _resolve_fleet(
        self,
        fleet: Sequence[Sequence],
        num_envs: Optional[int] = None,
        weights: Optional[Sequence[int]] = None,
    ) -> List[Tuple["FixarPlatform", int, int, int]]:
        """Per-group sibling platforms for a fleet's pricing entries.

        Each entry is ``(workload, count)`` or ``(workload, count, width)``
        — a registered benchmark name or an explicit :class:`WorkloadSpec`,
        a positive worker count, and an optional per-group lock-step width
        (``None`` or omitted falls back to the ``num_envs`` argument, the
        uniform-width fleet).  ``weights`` optionally gives each group's
        lock-steps per round (the throughput-weighted schedule); the default
        is one each.  Returns ``(platform, count, width, weight)`` tuples.
        """
        fleet = [tuple(entry) for entry in fleet]
        if not fleet:
            raise ValueError("fleet must contain at least one (workload, count) entry")
        if weights is None:
            weights = [1] * len(fleet)
        else:
            weights = list(weights)
            if len(weights) != len(fleet):
                raise ValueError(
                    f"weights must match the fleet's {len(fleet)} entries, "
                    f"got {len(weights)}"
                )
        resolved: List[Tuple[FixarPlatform, int, int, int]] = []
        for entry, weight in zip(fleet, weights):
            if len(entry) == 2:
                workload, count = entry
                width = None
            elif len(entry) == 3:
                workload, count, width = entry
            else:
                raise ValueError(
                    f"fleet entries must be (workload, count[, width]), got {entry!r}"
                )
            if count <= 0:
                raise ValueError(f"fleet worker counts must be positive, got {count}")
            if width is None:
                width = num_envs
            if width is None or width <= 0:
                raise ValueError(
                    f"fleet lock-step widths must be positive, got {width}"
                )
            try:
                # operator.index rejects non-integral weights: the scheduler
                # already refuses 2.9 lock-steps per round, and the pricing
                # side must agree with it instead of silently accepting a
                # fractional round.
                weight = operator.index(weight)
            except TypeError:
                raise ValueError(
                    f"fleet round weights must be integers, got {weight!r}"
                ) from None
            if weight <= 0:
                raise ValueError(f"fleet round weights must be positive, got {weight}")
            if isinstance(workload, WorkloadSpec):
                platform = self.with_workload(workload)
            else:
                platform = self.for_benchmark(str(workload))
            resolved.append((platform, count, width, weight))
        return resolved

    def infer_fleet(
        self,
        fleet: Sequence[Sequence],
        num_envs: int,
        weights: Optional[Sequence[int]] = None,
    ) -> FleetInferenceReport:
        """Price one collection round of a heterogeneous fleet.

        Each entry ``(workload, count)`` — or ``(workload, count, width)``
        for a mixed-width fleet — contributes ``count`` workers whose
        batch-of-``width`` inferences are priced under *that* workload's
        layer dimensions (``width`` defaults to ``num_envs``); the single
        accelerator serves all groups back to back, so the fleet round is
        the serial concatenation of the per-group :meth:`infer_collection`
        rounds.  ``weights`` gives each group's lock-steps per round (the
        throughput-weighted schedule) and is stamped on each
        :class:`FleetGroupInference`, so the report describes the round the
        scheduler actually runs.
        """
        groups = tuple(
            FleetGroupInference(
                benchmark=platform.workload.benchmark,
                report=platform.infer_collection(width, count),
                weight=weight,
            )
            for platform, count, width, weight in self._resolve_fleet(
                fleet, num_envs, weights
            )
        )
        return FleetInferenceReport(groups=groups)

    def fleet_collection_round_seconds(
        self,
        fleet: Sequence[Sequence],
        num_envs: int,
        weights: Optional[Sequence[int]] = None,
    ) -> float:
        """Modelled time of one heterogeneous-fleet collection round.

        The homogeneous bound structure of :meth:`collection_round_seconds`
        generalizes per benchmark: every worker still alternates its own
        host phase with its own batched inference, so no worker cycles
        faster than its serial ``host_b + inference_b`` chain (the slowest
        *benchmark* bounds the fleet — each worker runs on its own Xeon
        core), while the single accelerator serves all groups' batches back
        to back, paying each group's inference latency under its own layer
        dimensions and lock-step width.  The steady-state round is whichever
        bound saturates first.

        ``weights`` prices a *throughput-weighted* round: group ``g`` runs
        ``weights[g]`` lock-steps per round, so its workers' serial chains
        stretch by that factor and the accelerator serves that many more of
        its batches — the cost oracle of
        :class:`repro.rl.scheduler.ThroughputWeightedPolicy`, which fills
        the slack under the slowest benchmark's chain with extra cheap
        lock-steps.
        """
        return self._collection_round_from(self._resolve_fleet(fleet, num_envs, weights))

    @staticmethod
    def _collection_round_from(resolved) -> float:
        """Collection-round time of an already-resolved fleet (no re-resolve)."""
        chains = []
        accelerator = 0.0
        for platform, count, width, weight in resolved:
            inference = platform.infer_batch(width).total_seconds
            host = platform.host.collection_step_seconds(
                platform.workload.benchmark, width
            )
            chains.append(weight * (host + inference))
            accelerator += count * weight * inference
        return max(max(chains), accelerator)

    @staticmethod
    def _round_steps_from(resolved) -> int:
        """Environment steps of one round of an already-resolved fleet."""
        return sum(count * weight * width for _p, count, width, weight in resolved)

    def fleet_collection_steps_per_second(
        self,
        fleet: Sequence[Sequence],
        num_envs: int,
        weights: Optional[Sequence[int]] = None,
    ) -> float:
        """Modelled collection throughput of a heterogeneous fleet."""
        resolved = self._resolve_fleet(fleet, num_envs, weights)
        return self._round_steps_from(resolved) / self._collection_round_from(resolved)

    def fleet_sequential_round_seconds(
        self,
        fleet: Sequence[Sequence],
        num_envs: int,
        batch_size: int = 64,
        weights: Optional[Sequence[int]] = None,
    ) -> float:
        """Modelled time of one *sequential* heterogeneous training round.

        The fleet collects, then each benchmark's learner runs its updates
        (one per environment step its workers collected) as blocking
        runtime invocations priced under that benchmark's layer dimensions
        — collection and the per-benchmark update phases strictly
        alternate, so the round costs their sum.
        """
        resolved = self._resolve_fleet(fleet, num_envs, weights)
        update_total = sum(
            platform.update_round_seconds(
                batch_size, count * weight * width, pipelined=False
            )
            for platform, count, width, weight in resolved
        )
        return self._collection_round_from(resolved) + update_total

    def fleet_pipelined_round_seconds(
        self,
        fleet: Sequence[Sequence],
        num_envs: int,
        batch_size: int = 64,
        weights: Optional[Sequence[int]] = None,
    ) -> float:
        """Modelled time of one *pipelined* heterogeneous training round.

        The learners' update streams overlap the fleet's collection, so the
        round is ``max(collection, update)``.  The update side runs one
        streamed submission per benchmark back to back — each pays its own
        invocation overhead once and its per-update marginal cost under its
        own layer dimensions (``train_pass_seconds`` differs per benchmark)
        — and the fleet's inference FPGA time (every group priced under its
        own workload, width, and round weight) is added to the update
        stream because the single accelerator serves both sides.
        """
        resolved = self._resolve_fleet(fleet, num_envs, weights)
        collection = self._collection_round_from(resolved)
        update_total = sum(
            platform.update_round_seconds(
                batch_size, count * weight * width, pipelined=True
            )
            for platform, count, width, weight in resolved
        )
        inference_fpga = sum(
            count * weight * platform.infer_batch(width).fpga_seconds
            for platform, count, width, weight in resolved
        )
        return max(collection, update_total + inference_fpga)

    def fleet_training_steps_per_second(
        self,
        fleet: Sequence[Sequence],
        num_envs: int,
        batch_size: int = 64,
        pipelined: bool = False,
        weights: Optional[Sequence[int]] = None,
    ) -> float:
        """Modelled end-to-end training throughput of a heterogeneous fleet."""
        round_seconds = (
            self.fleet_pipelined_round_seconds(fleet, num_envs, batch_size, weights)
            if pipelined
            else self.fleet_sequential_round_seconds(
                fleet, num_envs, batch_size, weights
            )
        )
        # The round call resolved (and validated) the fleet; resolve once
        # more only for the step sum — sibling platforms are lightweight,
        # but avoid a third/fourth resolution inside nested round calls.
        round_steps = self._round_steps_from(
            self._resolve_fleet(fleet, num_envs, weights)
        )
        return round_steps / round_seconds

    def fleet_pipelined_speedup(
        self,
        fleet: Sequence[Sequence],
        num_envs: int,
        batch_size: int = 64,
        weights: Optional[Sequence[int]] = None,
    ) -> float:
        """Steps/sec of the pipelined fleet schedule over the sequential one."""
        return self.fleet_training_steps_per_second(
            fleet, num_envs, batch_size, pipelined=True, weights=weights
        ) / self.fleet_training_steps_per_second(
            fleet, num_envs, batch_size, pipelined=False, weights=weights
        )

    # ------------------------------------------------------------------ #
    # Throughput and efficiency (Figs. 8 and 10)
    # ------------------------------------------------------------------ #
    def platform_ips(self, batch_size: int) -> float:
        """System-level training throughput (Fig. 8)."""
        return batch_size / self.timestep_seconds(batch_size)

    def accelerator_ips(self, batch_size: int) -> float:
        """Accelerator-only throughput (Fig. 10a)."""
        return batch_size / self.fpga_seconds(batch_size)

    def accelerator_utilization(self, batch_size: int) -> float:
        """PE-array utilization of the accelerator for this workload."""
        actor_half, critic_half = self._layer_half_flags()
        return self.timing.hardware_utilization(
            self.workload.actor_shapes,
            self.workload.critic_shapes,
            batch_size,
            half_precision=self.half_precision,
            actor_half_precision=actor_half,
            critic_half_precision=critic_half,
        )

    def accelerator_watts(self, batch_size: int) -> float:
        """Average FPGA board power while running this workload."""
        return self.power.average_watts(self.accelerator_utilization(batch_size))

    def accelerator_ips_per_watt(self, batch_size: int) -> float:
        """Accelerator energy efficiency (Fig. 10b)."""
        return ips_per_watt(self.accelerator_ips(batch_size), self.accelerator_watts(batch_size))

    def sweep_platform_ips(self, batch_sizes: Sequence[int] = PAPER_BATCH_SIZES) -> Dict[int, float]:
        """Platform IPS over a batch-size sweep (one Fig. 8 series)."""
        return {batch: self.platform_ips(batch) for batch in batch_sizes}

    def sweep_accelerator_ips(self, batch_sizes: Sequence[int] = PAPER_BATCH_SIZES) -> Dict[int, float]:
        """Accelerator IPS over a batch-size sweep (one Fig. 10a series)."""
        return {batch: self.accelerator_ips(batch) for batch in batch_sizes}
