"""Throughput and efficiency metrics used across the evaluation.

The paper's primary metric is IPS — the number of inferences processed per
second — defined as the ratio of the number of collected samples (the replay
batch processed each timestep) to the end-to-end time of the timestep.
Energy efficiency is IPS per watt.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

__all__ = [
    "ips",
    "ips_per_watt",
    "speedup",
    "geometric_mean",
    "normalize_to_dsp",
]


def ips(samples: float, seconds: float) -> float:
    """Inferences per second: samples processed divided by elapsed time."""
    if seconds <= 0:
        raise ValueError(f"seconds must be positive, got {seconds}")
    if samples < 0:
        raise ValueError(f"samples must be non-negative, got {samples}")
    return samples / seconds


def ips_per_watt(throughput_ips: float, watts: float) -> float:
    """Energy efficiency: throughput divided by average power."""
    if watts <= 0:
        raise ValueError(f"watts must be positive, got {watts}")
    if throughput_ips < 0:
        raise ValueError(f"throughput_ips must be non-negative, got {throughput_ips}")
    return throughput_ips / watts


def speedup(candidate: float, baseline: float) -> float:
    """How many times faster the candidate is than the baseline."""
    if baseline <= 0:
        raise ValueError(f"baseline must be positive, got {baseline}")
    if candidate < 0:
        raise ValueError(f"candidate must be non-negative, got {candidate}")
    return candidate / baseline


def geometric_mean(values: Iterable[float]) -> float:
    """Geometric mean of positive values (standard for speedup summaries)."""
    arr = np.asarray(list(values), dtype=np.float64)
    if arr.size == 0:
        raise ValueError("geometric_mean needs at least one value")
    if np.any(arr <= 0):
        raise ValueError("geometric_mean requires strictly positive values")
    return float(np.exp(np.mean(np.log(arr))))


def normalize_to_dsp(peak_ips: float, dsp_count: int, reference_dsp_count: int) -> float:
    """DSP-normalized peak performance (used in the paper's Table II).

    Scales a design's peak IPS to what it would deliver with the reference
    design's DSP budget, enabling an apples-to-apples comparison between
    accelerators of different sizes.
    """
    if dsp_count <= 0 or reference_dsp_count <= 0:
        raise ValueError("DSP counts must be positive")
    if peak_ips < 0:
        raise ValueError("peak_ips must be non-negative")
    return peak_ips * reference_dsp_count / dsp_count


def average_ips(per_batch_ips: Sequence[float]) -> float:
    """Arithmetic mean IPS over a batch-size sweep (the headline metric)."""
    arr = np.asarray(list(per_batch_ips), dtype=np.float64)
    if arr.size == 0:
        raise ValueError("average_ips needs at least one value")
    return float(arr.mean())
