"""Trace-driven co-simulation of the FIXAR platform.

The analytical models in :mod:`repro.platform` answer "how long would one
timestep take"; the co-simulation runs an *actual* reduced-scale training
loop (real environment steps, real DDPG updates under the fixed-point
numerics) and charges every timestep with the modelled host / PCIe / FPGA
time for its batch size and the precision mode in force at that moment.
The result is an end-to-end trace: simulated wall-clock per component,
platform IPS as the paper defines it (processed batch transitions divided by
end-to-end time), the effect of the QAT precision switch on the trace, and
the same trace priced on the CPU-GPU baseline for comparison.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from ..rl.ddpg import DDPGAgent
from ..rl.noise import GaussianNoise
from ..rl.qat import QATController
from ..rl.replay_buffer import ReplayBuffer
from ..rl.training import TrainingConfig
from .fixar_platform import FixarPlatform
from .gpu_baseline import CpuGpuPlatform

__all__ = ["CoSimulationResult", "PlatformCoSimulation"]


@dataclass
class CoSimulationResult:
    """Outcome of one co-simulated training run."""

    timesteps: int = 0
    training_updates: int = 0
    transitions_processed: int = 0
    simulated_seconds: float = 0.0
    component_seconds: Dict[str, float] = field(default_factory=dict)
    baseline_seconds: float = 0.0
    precision_switch_timestep: Optional[int] = None
    episode_returns: List[float] = field(default_factory=list)
    wall_clock_seconds: float = 0.0

    @property
    def platform_ips(self) -> float:
        """Simulated platform throughput (batch transitions per second)."""
        if self.simulated_seconds <= 0:
            return 0.0
        return self.transitions_processed / self.simulated_seconds

    @property
    def baseline_ips(self) -> float:
        """The same trace priced on the CPU-GPU baseline."""
        if self.baseline_seconds <= 0:
            return 0.0
        return self.transitions_processed / self.baseline_seconds

    @property
    def speedup_vs_baseline(self) -> float:
        if self.simulated_seconds <= 0:
            return 0.0
        return self.baseline_seconds / self.simulated_seconds

    def summary(self) -> Dict[str, float]:
        summary = {
            "timesteps": float(self.timesteps),
            "training_updates": float(self.training_updates),
            "simulated_seconds": self.simulated_seconds,
            "platform_ips": self.platform_ips,
            "baseline_ips": self.baseline_ips,
            "speedup_vs_baseline": self.speedup_vs_baseline,
            "wall_clock_seconds": self.wall_clock_seconds,
        }
        for component, seconds in self.component_seconds.items():
            summary[f"{component}_seconds"] = seconds
        return summary


class PlatformCoSimulation:
    """Runs real training while accumulating modelled platform time."""

    def __init__(
        self,
        env,
        agent: DDPGAgent,
        platform: FixarPlatform,
        training: TrainingConfig,
        qat_controller: Optional[QATController] = None,
        baseline: Optional[CpuGpuPlatform] = None,
    ):
        self.env = env
        self.agent = agent
        self.platform = platform
        self.training = training
        self.qat_controller = qat_controller
        self.baseline = baseline or CpuGpuPlatform()

    def run(self) -> CoSimulationResult:
        """Execute the training trace and price every timestep."""
        config = self.training
        rng = np.random.default_rng(config.seed)
        noise = GaussianNoise(self.agent.action_dim, config.exploration_noise, seed=config.seed)
        buffer = ReplayBuffer(
            config.buffer_capacity, self.agent.state_dim, self.agent.action_dim, seed=config.seed
        )
        result = CoSimulationResult()
        result.component_seconds = {"cpu_environment": 0.0, "runtime": 0.0, "fpga": 0.0}

        # repro-lint: allow[deterministic-oracles]: co-simulation reports real wall clock *alongside* modelled time, never inside a price
        wall_start = time.perf_counter()
        observation = self.env.reset()
        episode_return = 0.0

        for timestep in range(config.total_timesteps):
            if self.qat_controller is not None and not self.qat_controller.switched:
                event = self.qat_controller.on_timestep(timestep)
                if event is not None:
                    result.precision_switch_timestep = event.timestep
                    # From this point the accelerator runs its dual 16-bit
                    # datapath, which the timing model prices accordingly.
                    self.platform.half_precision = True

            # ----- Functional step (host environment + agent) -------------- #
            if timestep < config.warmup_timesteps:
                action = rng.uniform(-1.0, 1.0, size=self.agent.action_dim)
            else:
                action = self.agent.act(observation, noise.sample())
            next_observation, reward, done, _ = self.env.step(action)
            buffer.add(observation, action, reward, next_observation, done)
            episode_return += reward
            observation = next_observation
            if done:
                result.episode_returns.append(episode_return)
                episode_return = 0.0
                observation = self.env.reset()
                noise.reset()

            trained = False
            if len(buffer) >= config.batch_size and timestep >= config.warmup_timesteps:
                self.agent.update(buffer.sample(config.batch_size))
                result.training_updates += 1
                trained = True

            # ----- Modelled platform time for this timestep ---------------- #
            breakdown = self.platform.timestep_breakdown(config.batch_size)
            if not trained:
                # Before the replay buffer warms up only the environment and
                # the (single-state) inference transfer run; charge the host
                # time and a minimal runtime transfer, but no training batch.
                breakdown = {
                    "cpu_environment": breakdown["cpu_environment"],
                    "runtime": self.platform.pcie.config.base_overhead_seconds,
                    "fpga": self.platform.timing.forward_cycles(
                        self.platform.workload.actor_shapes, 1, self.platform.half_precision
                    ) / self.platform.accelerator_config.clock_hz,
                }
            for component, seconds in breakdown.items():
                result.component_seconds[component] += seconds
            result.simulated_seconds += sum(breakdown.values())
            result.baseline_seconds += self.baseline.timestep_seconds(
                self.platform.workload.benchmark, config.batch_size
            )
            if trained:
                result.transitions_processed += config.batch_size
            result.timesteps += 1

        # repro-lint: allow[deterministic-oracles]: closes the wall-clock measurement opened above; not a modelled price
        result.wall_clock_seconds = time.perf_counter() - wall_start
        return result
