"""Training-campaign energy model.

The paper reports instantaneous energy efficiency (IPS/W); this module
extends that to whole training campaigns: how much energy and wall-clock
time the FIXAR platform and the CPU-GPU baseline need to run a full
schedule (e.g. the paper's one million timesteps), given a batch size.  It
composes the existing timing and power models, so the same calibration
underlies both views.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from .fixar_platform import FixarPlatform
from .gpu_baseline import CpuGpuPlatform

__all__ = ["CampaignEstimate", "estimate_training_campaign"]

#: Average host-CPU package power while running the environment, watts.
_HOST_CPU_WATTS = 35.0


@dataclass(frozen=True)
class CampaignEstimate:
    """Time and energy to run one training campaign on one platform."""

    platform: str
    timesteps: int
    batch_size: int
    seconds: float
    accelerator_energy_joules: float
    host_energy_joules: float

    @property
    def hours(self) -> float:
        return self.seconds / 3600.0

    @property
    def total_energy_joules(self) -> float:
        return self.accelerator_energy_joules + self.host_energy_joules

    @property
    def total_energy_watt_hours(self) -> float:
        return self.total_energy_joules / 3600.0

    def as_dict(self) -> Dict[str, float]:
        return {
            "platform": self.platform,
            "timesteps": self.timesteps,
            "batch_size": self.batch_size,
            "hours": round(self.hours, 2),
            "accelerator_energy_Wh": round(self.accelerator_energy_joules / 3600.0, 1),
            "host_energy_Wh": round(self.host_energy_joules / 3600.0, 1),
            "total_energy_Wh": round(self.total_energy_watt_hours, 1),
        }


def estimate_training_campaign(
    platform: FixarPlatform,
    baseline: CpuGpuPlatform,
    timesteps: int = 1_000_000,
    batch_size: int = 64,
    host_watts: float = _HOST_CPU_WATTS,
) -> Dict[str, CampaignEstimate]:
    """Estimate a full training campaign on FIXAR and on the CPU-GPU baseline.

    Returns ``{"fixar": ..., "cpu_gpu": ...}``.  Accelerator energy charges
    the accelerator only for its own active time; host energy charges the CPU
    for the whole campaign duration (it orchestrates every timestep).
    """
    if timesteps <= 0 or batch_size <= 0:
        raise ValueError("timesteps and batch_size must be positive")
    if host_watts <= 0:
        raise ValueError("host_watts must be positive")

    fixar_step = platform.timestep_seconds(batch_size)
    fixar_seconds = fixar_step * timesteps
    fpga_active_seconds = platform.fpga_seconds(batch_size) * timesteps
    fixar_watts = platform.accelerator_watts(batch_size)
    fixar = CampaignEstimate(
        platform="FIXAR (CPU + FPGA)",
        timesteps=timesteps,
        batch_size=batch_size,
        seconds=fixar_seconds,
        accelerator_energy_joules=fpga_active_seconds * fixar_watts,
        host_energy_joules=fixar_seconds * host_watts,
    )

    benchmark = platform.workload.benchmark
    gpu_step = baseline.timestep_seconds(benchmark, batch_size)
    gpu_seconds = gpu_step * timesteps
    gpu_active_seconds = baseline.gpu.timestep_seconds(batch_size) * timesteps
    cpu_gpu = CampaignEstimate(
        platform="CPU + GPU",
        timesteps=timesteps,
        batch_size=batch_size,
        seconds=gpu_seconds,
        accelerator_energy_joules=gpu_active_seconds * baseline.gpu.average_watts(),
        host_energy_joules=gpu_seconds * host_watts,
    )
    return {"fixar": fixar, "cpu_gpu": cpu_gpu}
