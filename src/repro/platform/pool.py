"""Multi-accelerator device pools: N FIXAR accelerators behind one seam.

Every pricing path so far serialized the whole fleet onto a *single*
accelerator — the main blocker on scaling the adaptive-parallelism story
past one FPGA.  An :class:`AcceleratorPool` holds ``num_devices`` identical
:class:`~repro.platform.FixarPlatform` devices behind the same duck-typed
oracle surface the single platform exposes (``infer_batch`` plus the
``fleet_*`` pricing pair), so the rollout engine and the round scheduler
never learn about devices — only the pricing joints do.

Three placement/assignment dimensions are modelled:

* **Per-benchmark device affinity** — each fleet group's workers present
  their batched inferences to one device of the pool (round-robin over the
  collection devices by default, or an explicit ``{benchmark: device}``
  mapping).  Devices serve their assigned groups' batches serially but run
  in *parallel* with each other, so the accelerator-serial bound of a
  collection round becomes a per-device maximum instead of one global sum.
* **Sharded batches** — :meth:`AcceleratorPool.infer_batch` splits one wide
  batch across the collection devices (near-equal shards, conserving the
  state count) and returns a :class:`ShardedInferenceReport` whose latency
  is the slowest shard: the homogeneous wide-group path of ``train()``
  shards transparently through the engine's existing ``infer_batch`` joint.
* **Placement** — ``"colocated"`` runs each group's update stream on the
  device its collection is assigned to (streams on different devices
  overlap; each stream still contends with its own device's rollout
  inferences).  ``"disaggregated"`` reserves the pool's last device for the
  update streams: collection spreads over the remaining devices and the
  update side pays no rollout-inference contention, at the price of one
  fewer collection device.

Determinism pin (the extended oracle chain): a 1-device colocated pool
accumulates its per-device sums in exactly the order the single platform's
``fleet_*`` methods do, so every pool price — and a training run that uses
the pool as its platform hook — is **bit-exact** with the single-platform
path.
"""

from __future__ import annotations

import operator
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

from .fixar_platform import (
    BatchInferenceReport,
    FixarPlatform,
    FleetGroupInference,
    FleetInferenceReport,
)

__all__ = [
    "PLACEMENTS",
    "AcceleratorPool",
    "PoolInferenceReport",
    "ShardedInferenceReport",
]

#: Update-stream placements the pool models.
PLACEMENTS = ("colocated", "disaggregated")


@dataclass(frozen=True)
class ShardedInferenceReport:
    """Cost of one batch inference sharded across a pool's devices.

    Each shard is a ``(device index, per-shard report)`` pair; the devices
    run their shards concurrently, so the pool-level latency is the slowest
    shard while payload and energy are resource totals across shards.  With
    a single shard every accessor reduces to the underlying
    :class:`~repro.platform.BatchInferenceReport` exactly — the 1-device
    bit-exactness pin of the engine's ``infer_batch`` joint.
    """

    #: Per-device shards, ordered by device index: (device, report).
    shards: Tuple[Tuple[int, BatchInferenceReport], ...]

    @property
    def num_states(self) -> int:
        """States inferred across all shards (conserved by construction)."""
        return sum(report.num_states for _device, report in self.shards)

    @property
    def fpga_seconds(self) -> float:
        """FPGA time of the sharded pass (slowest device bounds it)."""
        return max(report.fpga_seconds for _device, report in self.shards)

    @property
    def runtime_seconds(self) -> float:
        """Runtime/PCIe time of the sharded pass (slowest device)."""
        return max(report.runtime_seconds for _device, report in self.shards)

    @property
    def total_seconds(self) -> float:
        """End-to-end latency of the sharded inference (slowest shard)."""
        return max(report.total_seconds for _device, report in self.shards)

    @property
    def pcie_bytes(self) -> int:
        """Bytes crossing PCIe across all devices."""
        return sum(report.pcie_bytes for _device, report in self.shards)

    @property
    def energy_joules(self) -> float:
        """FPGA board energy across all devices."""
        return sum(report.energy_joules for _device, report in self.shards)

    @property
    def states_per_second(self) -> float:
        """Inference throughput of the sharded batch."""
        return self.num_states / self.total_seconds


@dataclass(frozen=True)
class PoolInferenceReport:
    """Per-device breakdown of one fleet inference round on a pool.

    Each entry pairs a collection device with the
    :class:`~repro.platform.FleetInferenceReport` of the groups assigned to
    it; devices serve their groups serially but run in parallel, so the
    pool round is the slowest device's round while payload and energy are
    totals.  A 1-device pool's single entry is exactly the single-platform
    fleet report.
    """

    #: Update-stream placement the pool was priced under.
    placement: str
    #: Per-device fleet reports: (device index, report), devices with
    #: assigned groups only.
    per_device: Tuple[Tuple[int, FleetInferenceReport], ...]

    @property
    def num_workers(self) -> int:
        """Workers across the whole pool."""
        return sum(report.num_workers for _device, report in self.per_device)

    @property
    def num_states(self) -> int:
        """States inferred per pool round."""
        return sum(report.num_states for _device, report in self.per_device)

    @property
    def round_seconds(self) -> float:
        """Latency of the pool round (slowest device's serial round)."""
        return max(report.total_seconds for _device, report in self.per_device)

    @property
    def total_seconds(self) -> float:
        """Alias of :attr:`round_seconds` (single-platform report parity)."""
        return self.round_seconds

    @property
    def pcie_bytes(self) -> int:
        """Bytes crossing PCIe per pool round, across devices."""
        return sum(report.pcie_bytes for _device, report in self.per_device)

    @property
    def energy_joules(self) -> float:
        """FPGA board energy per pool round, across devices."""
        return sum(report.energy_joules for _device, report in self.per_device)

    @property
    def states_per_second(self) -> float:
        """Inference throughput across the pool."""
        return self.num_states / self.round_seconds


class AcceleratorPool:
    """``num_devices`` identical FIXAR accelerators priced as one pool.

    ``template`` supplies the hardware models (accelerator configuration,
    host, PCIe, precision mode); the pool's devices are sibling platforms
    sharing those models, exactly like :meth:`FixarPlatform.with_workload`
    siblings.  ``assignment`` optionally binds a default per-benchmark
    device affinity (lowercase benchmark keys to collection-device
    indices); per-call ``assignment=`` arguments override it.
    """

    def __init__(
        self,
        template: FixarPlatform,
        num_devices: int = 1,
        placement: str = "colocated",
        assignment: Optional[Mapping[str, int]] = None,
    ):
        try:
            num_devices = operator.index(num_devices)
        except TypeError:
            raise ValueError(
                f"num_devices must be an integer, got {num_devices!r}"
            ) from None
        if num_devices < 1:
            raise ValueError(f"num_devices must be >= 1, got {num_devices}")
        if placement not in PLACEMENTS:
            raise ValueError(
                f"placement must be one of {PLACEMENTS}, got {placement!r}"
            )
        if placement == "disaggregated" and num_devices < 2:
            raise ValueError(
                "disaggregated placement dedicates one device to the update "
                "streams, so the pool needs at least 2 devices"
            )
        self.template = template
        self.num_devices = num_devices
        self.placement = placement
        # Device 0 *is* the template; the rest are siblings sharing its
        # hardware models — identical timing, so any device prices any
        # workload the same way (assignment matters for contention, not
        # per-batch latency).
        self.devices: Tuple[FixarPlatform, ...] = (template,) + tuple(
            template.with_workload(template.workload)
            for _ in range(num_devices - 1)
        )
        self.assignment = self._normalize_assignment(assignment)

    # ------------------------------------------------------------------ #
    # Topology
    # ------------------------------------------------------------------ #
    @property
    def collection_devices(self) -> Tuple[int, ...]:
        """Indices of the devices that serve rollout inferences."""
        if self.placement == "disaggregated":
            return tuple(range(self.num_devices - 1))
        return tuple(range(self.num_devices))

    @property
    def update_device(self) -> Optional[int]:
        """The dedicated update device, or ``None`` when colocated."""
        if self.placement == "disaggregated":
            return self.num_devices - 1
        return None

    def device(self, index: int) -> FixarPlatform:
        """The pool's ``index``-th device platform."""
        index = operator.index(index)
        if not 0 <= index < self.num_devices:
            raise ValueError(
                f"device index {index} out of range for a "
                f"{self.num_devices}-device pool"
            )
        return self.devices[index]

    def with_assignment(
        self, assignment: Optional[Mapping[str, int]]
    ) -> "AcceleratorPool":
        """A pool over the *same* devices with another default affinity."""
        sibling = AcceleratorPool.__new__(AcceleratorPool)
        sibling.template = self.template
        sibling.num_devices = self.num_devices
        sibling.placement = self.placement
        sibling.devices = self.devices
        sibling.assignment = sibling._normalize_assignment(assignment)
        return sibling

    def with_precision_state(self, state) -> "AcceleratorPool":
        """A pool of the same shape priced under a precision policy's state.

        Rebuilds every device from
        :meth:`FixarPlatform.with_precision_state` siblings of the
        template, preserving the pool's size, placement, and bound
        assignment — the pool-level half of the precision re-pricing seam
        (``None`` or an identical-pricing state returns this pool
        unchanged, mirroring the platform).
        """
        template = self.template.with_precision_state(state)
        if template is self.template:
            return self
        return AcceleratorPool(
            template,
            num_devices=self.num_devices,
            placement=self.placement,
            assignment=self.assignment,
        )

    def describe(self) -> str:
        return f"pool(devices={self.num_devices}, placement={self.placement})"

    # ------------------------------------------------------------------ #
    # Assignment resolution
    # ------------------------------------------------------------------ #
    def _normalize_assignment(
        self, assignment: Optional[Mapping[str, int]]
    ) -> Optional[Dict[str, int]]:
        if assignment is None:
            return None
        collection = self.collection_devices
        normalized: Dict[str, int] = {}
        for key, index in dict(assignment).items():
            try:
                index = operator.index(index)
            except TypeError:
                raise ValueError(
                    f"device assignments must be integer device indices, "
                    f"got {key!r}: {index!r}"
                ) from None
            if index not in collection:
                raise ValueError(
                    f"benchmark {key!r} assigned to device {index}, but the "
                    f"{self.describe()} collection devices are {collection}"
                )
            normalized[str(key).lower()] = index
        return normalized

    def resolve_assignment(
        self,
        keys: Sequence[str],
        assignment: Optional[Mapping[str, int]] = None,
    ) -> List[int]:
        """Collection-device index per fleet entry.

        Entries named by the effective affinity mapping (the per-call
        ``assignment`` or the pool's bound default) take their pinned
        device; the rest round-robin over the collection devices in entry
        order.  Mapping keys that match no fleet entry raise — the same
        unknown-key contract as the scheduler's explicit lock-step weights.
        """
        mapping = (
            self._normalize_assignment(assignment)
            if assignment is not None
            else self.assignment
        )
        collection = self.collection_devices
        keys = [str(key).lower() for key in keys]
        if mapping:
            unknown = sorted(key for key in mapping if key not in set(keys))
            if unknown:
                raise ValueError(
                    f"device assignment names benchmarks that match no fleet "
                    f"entry: {unknown}; fleet keys are {sorted(set(keys))}"
                )
        devices = []
        cursor = 0
        for key in keys:
            if mapping is not None and key in mapping:
                devices.append(mapping[key])
            else:
                devices.append(collection[cursor % len(collection)])
                cursor += 1
        return devices

    # ------------------------------------------------------------------ #
    # Sharded batch inference (the engine's ``infer_batch`` joint)
    # ------------------------------------------------------------------ #
    def shard_widths(self, num_states: int) -> List[Tuple[int, int]]:
        """``(device, shard size)`` split of one batch over the pool.

        Near-equal shards in collection-device order; the first
        ``num_states % len(collection_devices)`` shards take the extra
        state, devices whose shard would be empty are skipped, and the
        shard sizes always sum to ``num_states`` (step-count conservation).
        """
        if num_states <= 0:
            raise ValueError(f"num_states must be positive, got {num_states}")
        collection = self.collection_devices
        base, extra = divmod(num_states, len(collection))
        shards = []
        for rank, device in enumerate(collection):
            width = base + (1 if rank < extra else 0)
            if width > 0:
                shards.append((device, width))
        return shards

    def infer_batch(self, num_states: int) -> ShardedInferenceReport:
        """Price one batch-of-N inference sharded over the collection devices.

        Drop-in for :meth:`FixarPlatform.infer_batch` at the rollout
        engine's pricing joint: the shards run concurrently, so
        ``total_seconds`` is the slowest shard's latency.  A 1-device pool
        reproduces the single platform's report values exactly.
        """
        return ShardedInferenceReport(
            shards=tuple(
                (device, self.devices[device].infer_batch(width))
                for device, width in self.shard_widths(num_states)
            )
        )

    def serving_round_seconds(self, num_requests: int) -> float:
        """Modelled time to serve one dynamic-batcher flush on the pool.

        The flush shards near-equally over the collection devices
        (:meth:`shard_widths`, state-count conserving) and completes with
        the slowest shard — :meth:`infer_batch`'s sharded latency.  A
        1-device pool prices exactly like the single platform's serving
        oracle.
        """
        return self.infer_batch(num_requests).total_seconds

    # ------------------------------------------------------------------ #
    # Homogeneous collection / training oracles (single-platform surface)
    #
    # ``FixarPlatform`` and the pool are duck-typed interchangeably at the
    # pricing joints, so the pool mirrors the platform's whole public
    # ``infer_*`` / ``fleet_*`` / ``*_round_seconds`` surface — pinned
    # statically by the ``oracle-surface-parity`` lint rule.  A homogeneous
    # ``num_workers``-worker run deals its workers round-robin over the
    # collection devices (the same dealing order ``resolve_assignment``
    # uses for fleet groups), so a 1-device colocated pool reproduces every
    # single-platform price exactly.
    # ------------------------------------------------------------------ #
    def _deal_workers(self, num_workers: int) -> List[Tuple[int, int]]:
        """``(device, worker count)`` round-robin deal over collection devices.

        Worker ``w`` lands on collection device ``w % len(collection)``;
        devices that would receive no workers are skipped, and the counts
        always sum to ``num_workers``.
        """
        if num_workers <= 0:
            raise ValueError(f"num_workers must be positive, got {num_workers}")
        collection = self.collection_devices
        dealt = []
        for rank, device in enumerate(collection):
            count = (num_workers + len(collection) - 1 - rank) // len(collection)
            if count > 0:
                dealt.append((device, count))
        return dealt

    def infer_collection(
        self, num_envs: int, num_workers: int = 1
    ) -> PoolInferenceReport:
        """Price one homogeneous collection round dealt over the pool.

        Drop-in for :meth:`FixarPlatform.infer_collection`: each collection
        device serves its dealt workers' batches back to back
        (:class:`~repro.platform.CollectionInferenceReport` per device) and
        the devices run in parallel, so the pool round is the slowest
        device's serial round.  A 1-device pool's totals equal the single
        platform's report exactly.
        """
        benchmark = self.template.workload.benchmark
        per_device = tuple(
            (
                device,
                FleetInferenceReport(
                    groups=(
                        FleetGroupInference(
                            benchmark=benchmark,
                            report=self.devices[device].infer_collection(
                                num_envs, count
                            ),
                            weight=1,
                        ),
                    )
                ),
            )
            for device, count in self._deal_workers(num_workers)
        )
        return PoolInferenceReport(placement=self.placement, per_device=per_device)

    def collection_round_seconds(self, num_envs: int, num_workers: int = 1) -> float:
        """Modelled time of one homogeneous collection round on the pool.

        Per dealt device, the single-platform bound
        ``max(host + inference, count * inference)`` applies to that
        device's worker share; the pool round is the slowest device.
        """
        return max(
            self.devices[device].collection_round_seconds(num_envs, count)
            for device, count in self._deal_workers(num_workers)
        )

    def update_round_seconds(
        self, batch_size: int, updates: int, pipelined: bool = False
    ) -> float:
        """Modelled time of the learner's update phase on the pool.

        A homogeneous run has one learner, hence one update stream: it runs
        on the dedicated update device when disaggregated, on device 0
        (its collection device under the round-robin deal) when colocated.
        The devices are identical siblings, so the stream prices exactly as
        on the single platform; what placement changes is the *contention*
        term in :meth:`pipelined_round_seconds`.
        """
        device = self.update_device if self.update_device is not None else 0
        return self.devices[device].update_round_seconds(
            batch_size, updates, pipelined=pipelined
        )

    def sequential_round_seconds(
        self,
        num_envs: int,
        num_workers: int = 1,
        batch_size: int = 64,
        updates_per_round: Optional[int] = None,
    ) -> float:
        """Modelled time of one sequential training round on the pool
        (collection and the blocking update phase strictly alternate)."""
        updates = self.template._updates_per_round(
            num_envs, num_workers, updates_per_round
        )
        return self.collection_round_seconds(
            num_envs, num_workers
        ) + self.update_round_seconds(batch_size, updates, pipelined=False)

    def pipelined_round_seconds(
        self,
        num_envs: int,
        num_workers: int = 1,
        batch_size: int = 64,
        updates_per_round: Optional[int] = None,
    ) -> float:
        """Modelled time of one pipelined training round on the pool.

        ``max(collection, update stream)`` — colocated, the stream shares
        device 0 with that device's dealt rollout inferences (their FPGA
        time joins the stream, exactly the single platform's contention
        term scaled to device 0's worker share); disaggregated, the update
        device serves no rollout inferences, so the stream runs bare.
        """
        updates = self.template._updates_per_round(
            num_envs, num_workers, updates_per_round
        )
        collection = self.collection_round_seconds(num_envs, num_workers)
        update = self.update_round_seconds(batch_size, updates, pipelined=True)
        if self.placement == "disaggregated":
            return max(collection, update)
        dealt = dict(self._deal_workers(num_workers))
        contention = dealt.get(0, 0) * self.devices[0].infer_batch(
            num_envs
        ).fpga_seconds
        return max(collection, update + contention)

    # ------------------------------------------------------------------ #
    # Fleet pricing oracles (device-aware ``fleet_*`` surface)
    # ------------------------------------------------------------------ #
    def _resolve(
        self,
        fleet: Sequence[Sequence],
        num_envs: Optional[int],
        weights: Optional[Sequence[int]],
        assignment: Optional[Mapping[str, int]],
    ) -> List[Tuple[FixarPlatform, int, int, int, int]]:
        """``(platform, count, width, weight, device)`` per fleet entry."""
        resolved = self.template._resolve_fleet(fleet, num_envs, weights)
        devices = self.resolve_assignment(
            [platform.workload.benchmark for platform, *_rest in resolved],
            assignment,
        )
        return [entry + (device,) for entry, device in zip(resolved, devices)]

    def _collection_round(self, resolved) -> float:
        """Collection-round time of an already-resolved, device-assigned fleet.

        The per-worker ``host + inference`` chains are device-independent
        (each worker runs on its own host core); the accelerator-serial
        bound becomes per-device — every collection device serves only its
        assigned groups' batches, and the devices run in parallel.
        """
        chains = []
        accelerator = {index: 0.0 for index in self.collection_devices}
        for platform, count, width, weight, device in resolved:
            inference = platform.infer_batch(width).total_seconds
            host = platform.host.collection_step_seconds(
                platform.workload.benchmark, width
            )
            chains.append(weight * (host + inference))
            accelerator[device] += count * weight * inference
        return max(max(chains), max(accelerator.values()))

    @staticmethod
    def _round_steps(resolved) -> int:
        """Environment steps of one round of a resolved fleet."""
        return sum(
            count * weight * width
            for _platform, count, width, weight, _device in resolved
        )

    def fleet_collection_round_seconds(
        self,
        fleet: Sequence[Sequence],
        num_envs: int,
        weights: Optional[Sequence[int]] = None,
        assignment: Optional[Mapping[str, int]] = None,
    ) -> float:
        """Modelled time of one fleet collection round on the pool."""
        return self._collection_round(
            self._resolve(fleet, num_envs, weights, assignment)
        )

    def fleet_collection_steps_per_second(
        self,
        fleet: Sequence[Sequence],
        num_envs: int,
        weights: Optional[Sequence[int]] = None,
        assignment: Optional[Mapping[str, int]] = None,
    ) -> float:
        """Modelled collection throughput of a fleet on the pool."""
        resolved = self._resolve(fleet, num_envs, weights, assignment)
        return self._round_steps(resolved) / self._collection_round(resolved)

    def _update_streams(
        self, resolved, batch_size: int, pipelined: bool
    ) -> Dict[int, float]:
        """Per-device update-phase seconds of a resolved fleet.

        Colocated: each group's learner streams to the group's collection
        device, so streams on different devices run in parallel.
        Disaggregated: every stream runs on the dedicated update device,
        back to back (keyed under that single device).
        """
        if self.placement == "disaggregated":
            total = sum(
                platform.update_round_seconds(
                    batch_size, count * weight * width, pipelined=pipelined
                )
                for platform, count, width, weight, _device in resolved
            )
            return {self.update_device: total}
        streams = {index: 0.0 for index in self.collection_devices}
        for platform, count, width, weight, device in resolved:
            streams[device] += platform.update_round_seconds(
                batch_size, count * weight * width, pipelined=pipelined
            )
        return streams

    def fleet_sequential_round_seconds(
        self,
        fleet: Sequence[Sequence],
        num_envs: int,
        batch_size: int = 64,
        weights: Optional[Sequence[int]] = None,
        assignment: Optional[Mapping[str, int]] = None,
    ) -> float:
        """Modelled time of one *sequential* training round on the pool.

        Collection and updates strictly alternate, but update phases on
        different devices run concurrently — the update term is the
        slowest device's blocking-update total (disaggregated pools run
        every update on the dedicated device, so the term is the full sum,
        unchanged from the single platform).
        """
        resolved = self._resolve(fleet, num_envs, weights, assignment)
        update = max(self._update_streams(resolved, batch_size, False).values())
        return self._collection_round(resolved) + update

    def fleet_pipelined_round_seconds(
        self,
        fleet: Sequence[Sequence],
        num_envs: int,
        batch_size: int = 64,
        weights: Optional[Sequence[int]] = None,
        assignment: Optional[Mapping[str, int]] = None,
    ) -> float:
        """Modelled time of one *pipelined* training round on the pool.

        The update streams overlap collection.  Colocated, each device's
        stream contends with that device's rollout inferences (its
        assigned groups' FPGA inference time joins its stream), and the
        round is ``max(collection, slowest device stream)``.
        Disaggregated, the dedicated update device serves no rollout
        inferences, so the update term is the bare stream total.
        """
        resolved = self._resolve(fleet, num_envs, weights, assignment)
        collection = self._collection_round(resolved)
        streams = self._update_streams(resolved, batch_size, True)
        if self.placement == "disaggregated":
            return max(collection, streams[self.update_device])
        inference_fpga = {index: 0.0 for index in self.collection_devices}
        for platform, count, width, weight, device in resolved:
            inference_fpga[device] += (
                count * weight * platform.infer_batch(width).fpga_seconds
            )
        return max(
            collection,
            max(
                streams[index] + inference_fpga[index]
                for index in self.collection_devices
            ),
        )

    def fleet_training_steps_per_second(
        self,
        fleet: Sequence[Sequence],
        num_envs: int,
        batch_size: int = 64,
        pipelined: bool = False,
        weights: Optional[Sequence[int]] = None,
        assignment: Optional[Mapping[str, int]] = None,
    ) -> float:
        """Modelled end-to-end training throughput of a fleet on the pool."""
        round_seconds = (
            self.fleet_pipelined_round_seconds(
                fleet, num_envs, batch_size, weights, assignment
            )
            if pipelined
            else self.fleet_sequential_round_seconds(
                fleet, num_envs, batch_size, weights, assignment
            )
        )
        return (
            self._round_steps(self._resolve(fleet, num_envs, weights, assignment))
            / round_seconds
        )

    def fleet_pipelined_speedup(
        self,
        fleet: Sequence[Sequence],
        num_envs: int,
        batch_size: int = 64,
        weights: Optional[Sequence[int]] = None,
        assignment: Optional[Mapping[str, int]] = None,
    ) -> float:
        """Steps/sec of the pipelined pool schedule over the sequential one."""
        return self.fleet_training_steps_per_second(
            fleet, num_envs, batch_size, pipelined=True,
            weights=weights, assignment=assignment,
        ) / self.fleet_training_steps_per_second(
            fleet, num_envs, batch_size, pipelined=False,
            weights=weights, assignment=assignment,
        )

    def infer_fleet(
        self,
        fleet: Sequence[Sequence],
        num_envs: int,
        weights: Optional[Sequence[int]] = None,
        assignment: Optional[Mapping[str, int]] = None,
    ) -> PoolInferenceReport:
        """Per-device fleet inference report of one pool round."""
        resolved = self._resolve(fleet, num_envs, weights, assignment)
        per_device = []
        for index in self.collection_devices:
            groups = tuple(
                FleetGroupInference(
                    benchmark=platform.workload.benchmark,
                    report=platform.infer_collection(width, count),
                    weight=weight,
                )
                for platform, count, width, weight, device in resolved
                if device == index
            )
            if groups:
                per_device.append((index, FleetInferenceReport(groups=groups)))
        return PoolInferenceReport(
            placement=self.placement, per_device=tuple(per_device)
        )
