"""Host-CPU timing model.

The host CPU (an Intel Xeon 6226R in the paper) runs the Python environment,
stores transitions, and samples the replay batch.  Fig. 9a shows this CPU
time is roughly constant at ~2 ms per timestep regardless of the batch size.
The model exposes that constant (with a small per-benchmark variation and an
optional per-sample replay-sampling cost) and can also be calibrated from a
measured environment by timing real steps.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, Optional

__all__ = ["HostConfig", "HostModel"]

#: Per-benchmark environment step time in seconds (calibrated to the paper's
#: "roughly constant around 2 ms" observation; heavier physics → slightly more).
_DEFAULT_ENV_STEP_SECONDS: Dict[str, float] = {
    "halfcheetah": 2.1e-3,
    "hopper": 1.9e-3,
    "swimmer": 1.8e-3,
}


@dataclass(frozen=True)
class HostConfig:
    """Host-side timing parameters."""

    #: Fallback environment step time for unknown benchmarks.
    default_env_step_seconds: float = 2.0e-3
    #: Time to store one transition and bookkeep the episode.
    transition_store_seconds: float = 2.0e-5
    #: Per-sample cost of assembling the replay batch to send to the FPGA.
    replay_sample_seconds_per_transition: float = 4.0e-7
    #: Marginal cost of each additional lock-stepped environment, as a
    #: fraction of a scalar step.  Vectorized stepping batches the physics
    #: and the replay insertion across environments, so each extra
    #: environment costs far less than a full step (the VectorEnv
    #: micro-benchmark measures ~0.2× on the synthetic benchmarks).
    vector_step_fraction: float = 0.25

    def __post_init__(self) -> None:
        if self.default_env_step_seconds <= 0:
            raise ValueError("default_env_step_seconds must be positive")
        if self.transition_store_seconds < 0 or self.replay_sample_seconds_per_transition < 0:
            raise ValueError("host timing components must be non-negative")
        if not 0.0 <= self.vector_step_fraction <= 1.0:
            raise ValueError(
                f"vector_step_fraction must lie in [0, 1], got {self.vector_step_fraction}"
            )


class HostModel:
    """Estimates the CPU time of one platform timestep."""

    def __init__(self, config: Optional[HostConfig] = None):
        self.config = config or HostConfig()
        self._calibrated: Dict[str, float] = {}

    def env_step_seconds(self, benchmark: str) -> float:
        """Environment simulation time for one step of the benchmark."""
        key = benchmark.lower()
        if key in self._calibrated:
            return self._calibrated[key]
        return _DEFAULT_ENV_STEP_SECONDS.get(key, self.config.default_env_step_seconds)

    def timestep_seconds(self, benchmark: str, batch_size: int, num_envs: int = 1) -> float:
        """Total host-CPU time of one timestep (env step + replay handling).

        With ``num_envs > 1`` the environments advance in one vectorized
        lock-step: the first environment pays the full scalar cost and each
        additional one only the configured marginal fraction (batched
        physics, bulk transition store).
        """
        if batch_size <= 0:
            raise ValueError(f"batch_size must be positive, got {batch_size}")
        return (
            self.collection_step_seconds(benchmark, num_envs)
            + self.config.replay_sample_seconds_per_transition * batch_size
        )

    def collection_step_seconds(self, benchmark: str, num_envs: int = 1) -> float:
        """Host-CPU time of one *collection* lock-step (no replay assembly).

        A collection worker only steps its environments and stores the
        transitions; the replay batch for the accelerator is assembled by the
        learner, not the worker, so the per-sample replay term of
        :meth:`timestep_seconds` does not apply.

        This is the per-benchmark host term of the fleet pricing: in a
        heterogeneous fleet every worker runs its own benchmark's host phase
        on its own Xeon core, so the fleet's host bound is the *slowest
        benchmark's* ``host + inference`` chain
        (:meth:`~repro.platform.FixarPlatform.fleet_collection_round_seconds`
        queries this method once per benchmark).
        """
        if num_envs <= 0:
            raise ValueError(f"num_envs must be positive, got {num_envs}")
        scale = 1.0 + self.config.vector_step_fraction * (num_envs - 1)
        return (
            self.env_step_seconds(benchmark) * scale
            + self.config.transition_store_seconds * scale
        )

    # ------------------------------------------------------------------ #
    # Learner update phase (pipelined training schedule)
    # ------------------------------------------------------------------ #
    def update_phase_seconds(self, batch_size: int, updates: int = 1) -> float:
        """Host-CPU time of the learner's update phase: replay assembly.

        The learner's only host-side work per update is assembling the
        replay batch it sends to the accelerator — the collection-side terms
        (environment stepping, transition stores) belong to the workers.
        Under the pipelined schedule this runs on the learner's own Xeon
        core, overlapping the workers' collection phases;
        :meth:`FixarPlatform.pipelined_round_seconds` folds it into the
        streamed update phase it prices against collection.
        """
        if batch_size <= 0:
            raise ValueError(f"batch_size must be positive, got {batch_size}")
        if updates < 0:
            raise ValueError(f"updates must be non-negative, got {updates}")
        return updates * self.config.replay_sample_seconds_per_transition * batch_size

    # ------------------------------------------------------------------ #
    # Calibration against a real environment object
    # ------------------------------------------------------------------ #
    def calibrate(self, env, steps: int = 200) -> float:
        """Measure a real environment's average step time and remember it.

        ``env`` is any object following the :class:`repro.envs.Environment`
        API.  Returns the measured per-step time in seconds.
        """
        if steps <= 0:
            raise ValueError(f"steps must be positive, got {steps}")
        observation = env.reset()
        del observation
        rng_action = env.action_space
        # repro-lint: allow[deterministic-oracles]: calibrate() *measures* a real env to feed the model; the oracles consume the stored constant
        start = time.perf_counter()
        done_resets = 0
        for _ in range(steps):
            result = env.step(rng_action.clip(rng_action.low * 0.0))
            if result.done:
                env.reset()
                done_resets += 1
        # repro-lint: allow[deterministic-oracles]: closes the calibration measurement; only the averaged constant enters pricing
        elapsed = time.perf_counter() - start
        per_step = elapsed / steps
        self._calibrated[env.name.lower()] = per_step
        return per_step
