"""FIXAR reproduction: fixed-point deep reinforcement learning platform.

A pure-Python reproduction of "FIXAR: A Fixed-Point Deep Reinforcement
Learning Platform with Quantization-Aware Training and Adaptive Parallelism"
(DAC 2021).  The package provides:

* ``repro.fixedpoint`` — Q-format fixed-point tensors, the PE's decomposed
  multiplier, and the affine activation quantizer;
* ``repro.nn`` — a minimal dense-layer library with explicit forward /
  backward passes and pluggable numeric regimes;
* ``repro.rl`` — DDPG, replay, exploration noise, quantization-aware
  training (Algorithm 1), and the training/evaluation loops;
* ``repro.envs`` — synthetic continuous-control benchmarks standing in for
  MuJoCo's HalfCheetah, Hopper, and Swimmer;
* ``repro.accelerator`` — a cycle-approximate functional simulator of the
  FPGA accelerator (AAP cores, configurable PEs, on-chip memories, timing,
  resources, power);
* ``repro.platform`` — end-to-end CPU-FPGA platform and CPU-GPU baseline
  models;
* ``repro.core`` — configuration, the assembled :class:`FixarSystem`, the
  Table II comparison, and report formatting.
"""

from . import accelerator, core, envs, fixedpoint, nn, platform, rl
from .core import FixarConfig, FixarSystem, paper_config, smoke_test_config

__version__ = "1.0.0"

__all__ = [
    "accelerator",
    "core",
    "envs",
    "fixedpoint",
    "nn",
    "platform",
    "rl",
    "FixarConfig",
    "FixarSystem",
    "paper_config",
    "smoke_test_config",
    "__version__",
]
