"""Activation quantization for quantization-aware training (Algorithm 1).

The paper's QAT algorithm trains with 32-bit fixed-point activations for the
first ``d`` timesteps while monitoring the running minimum and maximum of the
activations.  After the quantization delay it switches to 16-bit activations
quantized with an affine mapping derived from the captured range::

    delta = (|Amin| + |Amax|) / 2**n
    z     = floor(-Amin / delta)
    Qn(A) = floor(A / delta) + z

This module provides the range tracker and the affine quantizer, plus a
"fake-quantize" path (quantize then dequantize) used when the surrounding
computation stays in real-valued numpy arrays.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["RangeTracker", "AffineQuantizer", "QuantizationError"]


class QuantizationError(ValueError):
    """Raised when a quantizer cannot be constructed from the observed range."""


@dataclass
class RangeTracker:
    """Tracks the running minimum and maximum of observed activations.

    The tracker is updated on every forward pass during the quantization-delay
    phase; the captured range is frozen when the quantizer is built.
    """

    min_value: float = field(default=float("inf"))
    max_value: float = field(default=float("-inf"))
    count: int = 0

    def update(self, values: np.ndarray | float) -> None:
        """Fold a batch of activations into the running range."""
        arr = np.asarray(values, dtype=np.float64)
        if arr.size == 0:
            return
        self.min_value = min(self.min_value, float(arr.min()))
        self.max_value = max(self.max_value, float(arr.max()))
        self.count += int(arr.size)

    @property
    def initialized(self) -> bool:
        """Whether at least one value has been observed."""
        return self.count > 0

    def reset(self) -> None:
        self.min_value = float("inf")
        self.max_value = float("-inf")
        self.count = 0

    def merge(self, other: "RangeTracker") -> None:
        """Fold another tracker's observations into this one."""
        if not other.initialized:
            return
        self.min_value = min(self.min_value, other.min_value)
        self.max_value = max(self.max_value, other.max_value)
        self.count += other.count


class AffineQuantizer:
    """The paper's ``Qn(A, Amin, Amax)`` affine quantizer.

    Parameters
    ----------
    num_bits:
        Quantization bit width ``n`` (16 in the paper).
    min_value, max_value:
        Activation range captured during the quantization-delay phase.
    """

    def __init__(self, num_bits: int, min_value: float, max_value: float):
        if num_bits < 2:
            raise QuantizationError(f"num_bits must be >= 2, got {num_bits}")
        if not np.isfinite(min_value) or not np.isfinite(max_value):
            raise QuantizationError(
                f"activation range is not finite: [{min_value}, {max_value}]"
            )
        if max_value < min_value:
            raise QuantizationError(
                f"max_value ({max_value}) is smaller than min_value ({min_value})"
            )
        self.num_bits = int(num_bits)
        self.min_value = float(min_value)
        self.max_value = float(max_value)
        delta = (abs(self.min_value) + abs(self.max_value)) / float(2 ** self.num_bits)
        if delta == 0.0:
            # A constant all-zero activation range degenerates; use one LSB of
            # unity so the quantizer is still well defined.
            delta = 1.0 / float(2 ** self.num_bits)
        self.delta = delta
        self.zero_point = int(np.floor(-self.min_value / self.delta))

    @classmethod
    def from_tracker(cls, num_bits: int, tracker: RangeTracker) -> "AffineQuantizer":
        """Build a quantizer from a frozen range tracker."""
        if not tracker.initialized:
            raise QuantizationError(
                "range tracker has not observed any activations; cannot quantize"
            )
        return cls(num_bits, tracker.min_value, tracker.max_value)

    # ------------------------------------------------------------------ #
    # Core mapping
    # ------------------------------------------------------------------ #
    @property
    def code_min(self) -> int:
        """Smallest integer code produced for values within the range."""
        return 0

    @property
    def code_max(self) -> int:
        """Largest integer code produced for values within the range."""
        return (1 << self.num_bits) - 1

    def quantize(self, values: np.ndarray | float) -> np.ndarray:
        """Map real activations to integer codes ``floor(A/delta) + z``."""
        arr = np.asarray(values, dtype=np.float64)
        codes = np.floor(arr / self.delta) + self.zero_point
        return np.clip(codes, self.code_min, self.code_max).astype(np.int64)

    def dequantize(self, codes: np.ndarray | int) -> np.ndarray:
        """Map integer codes back to real activations."""
        codes = np.asarray(codes, dtype=np.float64)
        return (codes - self.zero_point) * self.delta

    def apply(self, values: np.ndarray | float) -> np.ndarray:
        """Fake-quantize: quantize then dequantize (simulated precision loss)."""
        return self.dequantize(self.quantize(values))

    def quantization_error(self, values: np.ndarray | float) -> float:
        """Maximum absolute error introduced by quantizing ``values``."""
        arr = np.asarray(values, dtype=np.float64)
        return float(np.max(np.abs(arr - self.apply(arr)))) if arr.size else 0.0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"AffineQuantizer(n={self.num_bits}, range=[{self.min_value:.4g}, "
            f"{self.max_value:.4g}], delta={self.delta:.4g}, z={self.zero_point})"
        )
