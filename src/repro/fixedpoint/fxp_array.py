"""Fixed-point tensors backed by integer numpy arrays.

``FxpArray`` is the software model of the data the FIXAR accelerator moves
through its datapath: every element is an integer raw code interpreted under
a :class:`~repro.fixedpoint.qformat.QFormat`.  All arithmetic is carried out
on the integer codes (with explicit re-quantization), so results match what
fixed-point hardware would produce, including rounding and saturation.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from .qformat import QFormat

__all__ = ["FxpArray"]


class FxpArray:
    """A numpy-backed fixed-point tensor.

    The raw integer codes are stored as ``int64``; the logical word length is
    enforced through saturation whenever a new array is produced.
    """

    __slots__ = ("raw", "fmt")

    def __init__(self, raw: np.ndarray, fmt: QFormat, *, validate: bool = True):
        raw = np.asarray(raw, dtype=np.int64)
        if validate:
            raw = fmt.clip_raw(raw)
        self.raw = raw
        self.fmt = fmt

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    @classmethod
    def from_float(cls, values: np.ndarray | float | Iterable, fmt: QFormat) -> "FxpArray":
        """Quantize real values into a fixed-point array."""
        return cls(fmt.to_raw(values), fmt, validate=False)

    @classmethod
    def zeros(cls, shape, fmt: QFormat) -> "FxpArray":
        """An all-zero fixed-point array of the given shape."""
        return cls(np.zeros(shape, dtype=np.int64), fmt, validate=False)

    @classmethod
    def from_raw(cls, raw: np.ndarray, fmt: QFormat) -> "FxpArray":
        """Wrap existing raw codes (saturating them into range)."""
        return cls(raw, fmt, validate=True)

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def shape(self):
        return self.raw.shape

    @property
    def ndim(self) -> int:
        return self.raw.ndim

    @property
    def size(self) -> int:
        return int(self.raw.size)

    @property
    def nbytes(self) -> int:
        """Storage footprint at the logical word length (not int64)."""
        return self.size * self.fmt.word_length // 8

    def to_float(self) -> np.ndarray:
        """Real-valued view of the array."""
        return self.fmt.from_raw(self.raw)

    def copy(self) -> "FxpArray":
        return FxpArray(self.raw.copy(), self.fmt, validate=False)

    def __len__(self) -> int:
        return len(self.raw)

    def __getitem__(self, idx) -> "FxpArray":
        return FxpArray(self.raw[idx], self.fmt, validate=False)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"FxpArray(shape={self.shape}, fmt={self.fmt})"

    # ------------------------------------------------------------------ #
    # Format conversion
    # ------------------------------------------------------------------ #
    def requantize(self, fmt: QFormat) -> "FxpArray":
        """Convert to another format, shifting the binary point.

        The conversion rounds to nearest when precision is lost and saturates
        when the new format's range is narrower, exactly as the accelerator's
        down-scaling path does when activations drop from 32 to 16 bits.
        """
        if fmt == self.fmt:
            return self.copy()
        shift = fmt.frac_bits - self.fmt.frac_bits
        if shift >= 0:
            raw = self.raw << shift
        else:
            # Round-to-nearest on a right shift: add half an LSB before shifting.
            offset = 1 << (-shift - 1)
            raw = (self.raw + offset) >> (-shift)
        return FxpArray(raw, fmt, validate=True)

    # ------------------------------------------------------------------ #
    # Arithmetic
    # ------------------------------------------------------------------ #
    def _coerce(self, other: "FxpArray | float | np.ndarray") -> "FxpArray":
        if isinstance(other, FxpArray):
            return other.requantize(self.fmt)
        return FxpArray.from_float(other, self.fmt)

    def __add__(self, other: "FxpArray | float | np.ndarray") -> "FxpArray":
        other = self._coerce(other)
        return FxpArray(self.raw + other.raw, self.fmt, validate=True)

    def __sub__(self, other: "FxpArray | float | np.ndarray") -> "FxpArray":
        other = self._coerce(other)
        return FxpArray(self.raw - other.raw, self.fmt, validate=True)

    def __neg__(self) -> "FxpArray":
        return FxpArray(-self.raw, self.fmt, validate=True)

    def __mul__(self, other: "FxpArray | float | np.ndarray") -> "FxpArray":
        """Element-wise fixed-point multiply, result in ``self.fmt``.

        The full-precision product has ``self.frac + other.frac`` fraction
        bits; it is rounded back to ``self.fmt`` like the accelerator's MAC
        output stage.
        """
        other = other if isinstance(other, FxpArray) else FxpArray.from_float(other, self.fmt)
        product = self.raw * other.raw
        shift = other.fmt.frac_bits
        if shift > 0:
            product = (product + (1 << (shift - 1))) >> shift
        return FxpArray(product, self.fmt, validate=True)

    def matmul(self, other: "FxpArray", out_fmt: QFormat | None = None) -> "FxpArray":
        """Fixed-point matrix multiplication.

        Products are accumulated at full precision (int64) and the final sums
        are re-quantized to ``out_fmt`` (default: ``self.fmt``).  This mirrors
        the AAP core, whose accumulators are wider than the PE outputs.
        """
        out_fmt = out_fmt or self.fmt
        acc = self.raw @ other.raw  # frac bits: self.frac + other.frac
        shift = self.fmt.frac_bits + other.fmt.frac_bits - out_fmt.frac_bits
        if shift > 0:
            acc = (acc + (1 << (shift - 1))) >> shift
        elif shift < 0:
            acc = acc << (-shift)
        return FxpArray(acc, out_fmt, validate=True)

    def __matmul__(self, other: "FxpArray") -> "FxpArray":
        return self.matmul(other)

    # ------------------------------------------------------------------ #
    # Comparisons / reductions (on real values)
    # ------------------------------------------------------------------ #
    def min(self) -> float:
        return float(self.to_float().min())

    def max(self) -> float:
        return float(self.to_float().max())

    def abs_max(self) -> float:
        return float(np.abs(self.to_float()).max())

    def allclose(self, other: "FxpArray | np.ndarray", atol: float | None = None) -> bool:
        """Whether the real values agree within one LSB (by default)."""
        atol = self.fmt.resolution if atol is None else atol
        other_vals = other.to_float() if isinstance(other, FxpArray) else np.asarray(other)
        return bool(np.allclose(self.to_float(), other_vals, atol=atol))
