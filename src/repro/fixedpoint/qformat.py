"""Fixed-point number format descriptions.

FIXAR represents every number the accelerator touches as a signed fixed-point
value: an integer *raw* value interpreted with an implicit binary point.  A
format is fully described by its total word length and the number of
fractional bits.  The paper uses a 32-bit format for weights and gradients
for the whole training run, a 32-bit format for activations before the
quantization delay, and a 16-bit format for activations afterwards.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "QFormat",
    "WEIGHT_FORMAT",
    "ACTIVATION_FULL_FORMAT",
    "ACTIVATION_HALF_FORMAT",
    "GRADIENT_FORMAT",
]


@dataclass(frozen=True)
class QFormat:
    """A signed two's-complement fixed-point format.

    Parameters
    ----------
    word_length:
        Total number of bits, including the sign bit.
    frac_bits:
        Number of bits to the right of the binary point.  May be zero (pure
        integer) and must be smaller than ``word_length``.
    """

    word_length: int
    frac_bits: int

    def __post_init__(self) -> None:
        if self.word_length < 2:
            raise ValueError(
                f"word_length must be at least 2 bits, got {self.word_length}"
            )
        if self.word_length > 63:
            raise ValueError(
                "word_length larger than 63 bits cannot be represented with "
                f"int64 raw values, got {self.word_length}"
            )
        if self.frac_bits < 0:
            raise ValueError(f"frac_bits must be non-negative, got {self.frac_bits}")
        if self.frac_bits >= self.word_length:
            raise ValueError(
                "frac_bits must leave at least the sign bit: "
                f"word_length={self.word_length}, frac_bits={self.frac_bits}"
            )

    # ------------------------------------------------------------------ #
    # Derived properties
    # ------------------------------------------------------------------ #
    @property
    def int_bits(self) -> int:
        """Number of integer bits (excluding the sign bit)."""
        return self.word_length - self.frac_bits - 1

    @property
    def resolution(self) -> float:
        """Smallest representable increment (value of one LSB)."""
        return 2.0 ** (-self.frac_bits)

    @property
    def scale(self) -> float:
        """Number of raw codes per unit value (``2 ** frac_bits``)."""
        return float(2 ** self.frac_bits)

    @property
    def raw_min(self) -> int:
        """Most negative raw code."""
        return -(1 << (self.word_length - 1))

    @property
    def raw_max(self) -> int:
        """Most positive raw code."""
        return (1 << (self.word_length - 1)) - 1

    @property
    def min_value(self) -> float:
        """Most negative representable real value."""
        return self.raw_min * self.resolution

    @property
    def max_value(self) -> float:
        """Most positive representable real value."""
        return self.raw_max * self.resolution

    # ------------------------------------------------------------------ #
    # Conversions
    # ------------------------------------------------------------------ #
    def to_raw(self, values: np.ndarray | float, saturate: bool = True) -> np.ndarray:
        """Convert real values to raw integer codes (round-to-nearest).

        Values outside the representable range are saturated when
        ``saturate`` is true (the accelerator's behaviour), otherwise a
        ``ValueError`` is raised.
        """
        arr = np.asarray(values, dtype=np.float64)
        raw = np.rint(arr * self.scale)
        if saturate:
            raw = np.clip(raw, self.raw_min, self.raw_max)
        else:
            if np.any(raw < self.raw_min) or np.any(raw > self.raw_max):
                raise ValueError(
                    f"value out of range for {self}: "
                    f"[{self.min_value}, {self.max_value}]"
                )
        return raw.astype(np.int64)

    def from_raw(self, raw: np.ndarray | int) -> np.ndarray:
        """Convert raw integer codes back to real values."""
        return np.asarray(raw, dtype=np.float64) * self.resolution

    def quantize(self, values: np.ndarray | float) -> np.ndarray:
        """Round real values onto this format's representable grid."""
        return self.from_raw(self.to_raw(values))

    def clip_raw(self, raw: np.ndarray) -> np.ndarray:
        """Saturate raw codes into this format's representable range."""
        return np.clip(raw, self.raw_min, self.raw_max).astype(np.int64)

    def representable(self, values: np.ndarray | float) -> np.ndarray:
        """Boolean mask of values that fit this format without saturation."""
        arr = np.asarray(values, dtype=np.float64)
        return (arr >= self.min_value) & (arr <= self.max_value)

    def half(self) -> "QFormat":
        """The format with half the word length and half the fraction bits.

        This mirrors the paper's precision reduction: a 32-bit activation
        format becomes a 16-bit format after the quantization delay.
        """
        word = self.word_length // 2
        frac = min(self.frac_bits // 2, word - 1)
        return QFormat(word_length=word, frac_bits=frac)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"Q{self.int_bits}.{self.frac_bits} ({self.word_length}b)"


#: 32-bit fixed-point format used for weights for the entire training run.
WEIGHT_FORMAT = QFormat(word_length=32, frac_bits=16)

#: 32-bit fixed-point activation format used before the quantization delay.
ACTIVATION_FULL_FORMAT = QFormat(word_length=32, frac_bits=16)

#: 16-bit fixed-point activation format used after the quantization delay.
ACTIVATION_HALF_FORMAT = QFormat(word_length=16, frac_bits=8)

#: 32-bit fixed-point format used for gradients for the entire training run.
GRADIENT_FORMAT = QFormat(word_length=32, frac_bits=16)
