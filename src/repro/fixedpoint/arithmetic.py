"""Bit-level fixed-point arithmetic primitives used by the processing element.

The FIXAR processing element (paper Fig. 5) supports two datapath modes:

* **Full precision** — a 32-bit activation multiplied by a 32-bit weight.
  The PE implements this with *two* 32x16 multipliers: the activation is
  split into its upper and lower 16-bit halves, each half is multiplied by
  the weight, and the upper product is left-shifted by 16 before the two
  partial products are added.
* **Half precision** — after quantization the 32-bit activation word carries
  two independent 16-bit activations; the same two multipliers then produce
  two independent products per cycle, doubling throughput.

The functions here model that decomposition exactly on integer raw codes so
the rest of the simulator (and the tests) can check the configurable datapath
is numerically identical to a plain wide multiply.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

__all__ = [
    "split_halves",
    "combine_halves",
    "multiply_decomposed",
    "dual_multiply",
    "mac_full_precision",
    "mac_half_precision",
    "pack_dual_activations",
    "unpack_dual_activations",
]

_HALF_BITS = 16
_HALF_MASK = (1 << _HALF_BITS) - 1


def split_halves(value: np.ndarray | int) -> Tuple[np.ndarray, np.ndarray]:
    """Split a 32-bit raw activation into (upper, lower) 16-bit halves.

    The lower half is treated as *unsigned* (it is just the low 16 bits of the
    two's-complement word); the upper half keeps the sign.  Recombining with
    :func:`combine_halves` gives back the original value.
    """
    arr = np.asarray(value, dtype=np.int64)
    lower = arr & _HALF_MASK
    upper = arr >> _HALF_BITS
    return upper, lower


def combine_halves(upper: np.ndarray | int, lower: np.ndarray | int) -> np.ndarray:
    """Reassemble a 32-bit value from its (upper, lower) halves."""
    upper = np.asarray(upper, dtype=np.int64)
    lower = np.asarray(lower, dtype=np.int64)
    return (upper << _HALF_BITS) + lower


def multiply_decomposed(activation: np.ndarray | int, weight: np.ndarray | int) -> np.ndarray:
    """Full-precision multiply via the PE's two 32x16 multipliers.

    ``activation`` is a 32-bit raw code and ``weight`` a 32-bit raw code; the
    result equals ``activation * weight`` computed directly, demonstrating the
    shift-and-add recombination in Fig. 5.
    """
    upper, lower = split_halves(activation)
    weight = np.asarray(weight, dtype=np.int64)
    partial_low = lower * weight          # 32x16 multiplier #1
    partial_high = upper * weight         # 32x16 multiplier #2
    return (partial_high << _HALF_BITS) + partial_low


def dual_multiply(
    activation_a: np.ndarray | int,
    activation_b: np.ndarray | int,
    weight: np.ndarray | int,
) -> Tuple[np.ndarray, np.ndarray]:
    """Half-precision mode: two independent 16-bit activations per cycle.

    Each activation is a 16-bit raw code; both are multiplied by the same
    weight using the PE's two multipliers and returned separately.
    """
    weight = np.asarray(weight, dtype=np.int64)
    prod_a = np.asarray(activation_a, dtype=np.int64) * weight
    prod_b = np.asarray(activation_b, dtype=np.int64) * weight
    return prod_a, prod_b


def mac_full_precision(
    accumulator: np.ndarray | int,
    activation: np.ndarray | int,
    weight: np.ndarray | int,
) -> np.ndarray:
    """One full-precision multiply-accumulate step on raw codes."""
    return np.asarray(accumulator, dtype=np.int64) + multiply_decomposed(activation, weight)


def mac_half_precision(
    accumulator_a: np.ndarray | int,
    accumulator_b: np.ndarray | int,
    activation_a: np.ndarray | int,
    activation_b: np.ndarray | int,
    weight: np.ndarray | int,
) -> Tuple[np.ndarray, np.ndarray]:
    """One half-precision MAC step producing two accumulations per cycle."""
    prod_a, prod_b = dual_multiply(activation_a, activation_b, weight)
    acc_a = np.asarray(accumulator_a, dtype=np.int64) + prod_a
    acc_b = np.asarray(accumulator_b, dtype=np.int64) + prod_b
    return acc_a, acc_b


def pack_dual_activations(activation_a: np.ndarray, activation_b: np.ndarray) -> np.ndarray:
    """Pack two 16-bit raw activations into one 32-bit memory word.

    After quantization the activation memory layout does not change: each
    32-bit word simply carries two 16-bit activations.
    """
    a = np.asarray(activation_a, dtype=np.int64) & _HALF_MASK
    b = np.asarray(activation_b, dtype=np.int64) & _HALF_MASK
    return (a << _HALF_BITS) | b


def unpack_dual_activations(word: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Unpack a 32-bit word into two signed 16-bit raw activations."""
    word = np.asarray(word, dtype=np.int64)
    a = (word >> _HALF_BITS) & _HALF_MASK
    b = word & _HALF_MASK
    return _sign_extend_16(a), _sign_extend_16(b)


def _sign_extend_16(value: np.ndarray) -> np.ndarray:
    """Sign-extend a 16-bit two's-complement field held in an int64."""
    value = np.asarray(value, dtype=np.int64)
    sign_bit = 1 << (_HALF_BITS - 1)
    return (value ^ sign_bit) - sign_bit
