"""Fixed-point numeric substrate for the FIXAR reproduction.

This package models the data formats and arithmetic the FIXAR accelerator
uses: Q-format descriptions, integer-backed fixed-point tensors, the
processing element's decomposed multiplier, and the affine activation
quantizer used by quantization-aware training.
"""

from .qformat import (
    ACTIVATION_FULL_FORMAT,
    ACTIVATION_HALF_FORMAT,
    GRADIENT_FORMAT,
    WEIGHT_FORMAT,
    QFormat,
)
from .fxp_array import FxpArray
from .quantizer import AffineQuantizer, QuantizationError, RangeTracker
from .arithmetic import (
    combine_halves,
    dual_multiply,
    mac_full_precision,
    mac_half_precision,
    multiply_decomposed,
    pack_dual_activations,
    split_halves,
    unpack_dual_activations,
)

__all__ = [
    "QFormat",
    "FxpArray",
    "AffineQuantizer",
    "RangeTracker",
    "QuantizationError",
    "WEIGHT_FORMAT",
    "ACTIVATION_FULL_FORMAT",
    "ACTIVATION_HALF_FORMAT",
    "GRADIENT_FORMAT",
    "split_halves",
    "combine_halves",
    "multiply_decomposed",
    "dual_multiply",
    "mac_full_precision",
    "mac_half_precision",
    "pack_dual_activations",
    "unpack_dual_activations",
]
