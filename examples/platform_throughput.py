#!/usr/bin/env python3
"""System-level throughput study: Figs. 8–10 and Table II for all benchmarks.

Sweeps the paper's batch sizes (64–512) over the three MuJoCo-style
benchmarks and prints, for each: the FIXAR platform IPS vs the CPU-GPU
platform (Fig. 8), the single-timestep execution-time breakdown and ratio
(Fig. 9), the accelerator-only throughput and energy efficiency against the
GPU (Fig. 10), and finally the Table II comparison against prior FPGA DRL
accelerators.

Run:
    python examples/platform_throughput.py
"""

from __future__ import annotations

from repro.core import comparison_table, fixar_entry, format_breakdown, format_series, format_table
from repro.envs import BENCHMARK_SUITE, make
from repro.platform import (
    PAPER_BATCH_SIZES,
    CpuGpuPlatform,
    FixarPlatform,
    WorkloadSpec,
)


def study_benchmark(benchmark: str) -> FixarPlatform:
    env = make(benchmark)
    platform = FixarPlatform(WorkloadSpec.from_environment(env))
    baseline = CpuGpuPlatform()

    print(f"--- {benchmark} (state={env.state_dim}, action={env.action_dim}) ---")

    fixar_ips = platform.sweep_platform_ips(PAPER_BATCH_SIZES)
    gpu_ips = baseline.sweep_ips(benchmark, PAPER_BATCH_SIZES)
    speedups = {batch: fixar_ips[batch] / gpu_ips[batch] for batch in PAPER_BATCH_SIZES}
    print("Fig. 8 — platform training throughput (IPS):")
    print("  " + format_series(fixar_ips, name="FIXAR  "))
    print("  " + format_series(gpu_ips, name="CPU-GPU"))
    print("  " + format_series(speedups, name="speedup", precision=2))

    print("Fig. 9a — execution time of one timestep (ms):")
    for batch in PAPER_BATCH_SIZES:
        print(f"  batch {batch:4d}: " + format_breakdown(platform.timestep_breakdown(batch)))
    print("Fig. 9b — execution time ratio:")
    for batch in PAPER_BATCH_SIZES:
        ratios = platform.timestep_ratio(batch)
        rendered = ", ".join(f"{key}={100 * value:.1f}%" for key, value in ratios.items())
        print(f"  batch {batch:4d}: {rendered}")

    print("Fig. 10 — accelerator-only throughput and energy efficiency:")
    accelerator_ips = platform.sweep_accelerator_ips(PAPER_BATCH_SIZES)
    gpu_only = {batch: baseline.gpu.ips(batch) for batch in PAPER_BATCH_SIZES}
    print("  " + format_series(accelerator_ips, name="FIXAR accelerator IPS"))
    print("  " + format_series(gpu_only, name="GPU IPS              "))
    efficiency = {batch: platform.accelerator_ips_per_watt(batch) for batch in PAPER_BATCH_SIZES}
    gpu_efficiency = {batch: baseline.gpu.ips_per_watt(batch) for batch in PAPER_BATCH_SIZES}
    print("  " + format_series(efficiency, name="FIXAR IPS/W          "))
    print("  " + format_series(gpu_efficiency, name="GPU IPS/W            "))
    print()
    return platform


def main() -> None:
    print("=== FIXAR platform throughput study ===\n")
    platforms = {benchmark: study_benchmark(benchmark) for benchmark in BENCHMARK_SUITE}

    # Table II with the modelled FIXAR peak performance (HalfCheetah workload).
    halfcheetah = platforms["HalfCheetah"]
    peak = max(halfcheetah.sweep_accelerator_ips(PAPER_BATCH_SIZES).values())
    efficiency = halfcheetah.accelerator_ips_per_watt(512)
    entry = fixar_entry(peak_ips=peak, energy_efficiency=efficiency)
    print(format_table(comparison_table(entry), title="Table II — comparison with previous works"))


if __name__ == "__main__":
    main()
