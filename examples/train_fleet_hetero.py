#!/usr/bin/env python3
"""Domain scenario: one training run across a heterogeneous benchmark fleet.

FIXAR's adaptive parallelism exists because one accelerator must serve
workloads whose layer dimensions differ — and the paper evaluates across
HalfCheetah, Hopper, and Swimmer.  This example exercises exactly that
scenario in software: a **fleet spec** (default ``HalfCheetah:1,Hopper:1``)
maps collection workers to different registered benchmarks in a single run.
Each benchmark gets its own learner agent and replay buffer sized for its
``(state_dim, action_dim)``, while all agents share one numerics object and
one Algorithm 1 QAT schedule, so the precision switch lands fleet-wide at
the same timestep.

Worker ids are global across the fleet (spec order), and environments are
seeded by the worker's cumulative environment offset (``seed + env_offset +
i`` — exactly ``seed + worker_id * num_envs + i`` at uniform widths), so a
homogeneous spec such as ``Hopper:2`` reproduces ``--num-workers 2`` bit
for bit while a three-field spec like ``HalfCheetah:2:16,Hopper:2:8`` gives
each benchmark its own lock-step width.  ``--schedule weighted`` switches
the round scheduler to throughput-weighted rounds: the benchmark with the
cheaper modelled host+inference chain collects extra lock-steps per round.

The run also prices the fleet on the modelled platform: the single
accelerator serves back-to-back batched inferences with *different* layer
dimensions (``FixarPlatform.infer_fleet``), and the mixed-fleet training
round is compared against the equivalent homogeneous fleets.

Run:
    python examples/train_fleet_hetero.py [--fleet HalfCheetah:1,Hopper:1] \
        [--timesteps 2000] [--num-envs 4] [--pipeline-depth 1]
"""

from __future__ import annotations

import argparse

import numpy as np

from repro.core import format_curve
from repro.envs import benchmark_dimensions
from repro.nn import DynamicFixedPointNumerics
from repro.platform import FixarPlatform, WorkloadSpec
from repro.rl import (
    DDPGAgent,
    DDPGConfig,
    QATController,
    QATSchedule,
    TrainingConfig,
    parse_fleet_spec,
    train_fleet,
)

HIDDEN_SIZES = (64, 48)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--fleet", type=str, default="HalfCheetah:1,Hopper:1",
                        help="fleet spec 'Benchmark[:count[:num_envs]],...' "
                             "resolved against the benchmark registry "
                             "(case-insensitive); the third field is the "
                             "benchmark's lock-step width (default --num-envs)")
    parser.add_argument("--timesteps", type=int, default=2_000)
    parser.add_argument("--num-envs", type=int, default=4,
                        help="default environments per worker, rolled out in "
                             "lock-step (spec entries may override per benchmark)")
    parser.add_argument("--pipeline-depth", type=int, default=0,
                        help="rounds the fleet may run ahead of the learners")
    parser.add_argument("--schedule", choices=("sequential", "pipelined", "weighted"),
                        default=None,
                        help="round-scheduling policy (default: from "
                             "--pipeline-depth); 'weighted' gives cheaper "
                             "benchmarks extra lock-steps per round")
    parser.add_argument("--seed", type=int, default=1)
    args = parser.parse_args()

    fleet_spec = parse_fleet_spec(args.fleet, default_width=args.num_envs)
    total_workers = sum(count for _, count, _width in fleet_spec)
    print("=== Heterogeneous collector fleet ===")
    print(f"fleet: {', '.join(f'{b}:{c}:{w}' for b, c, w in fleet_spec)} "
          f"({total_workers} workers; widths are the per-benchmark num_envs)")

    # One shared numerics object: the QAT switch must hit every benchmark's
    # networks (and their collection replicas) at the same timestep.
    numerics = DynamicFixedPointNumerics(num_bits=16)
    rng = np.random.default_rng(args.seed)
    agents = {}
    for benchmark, _count, _width in fleet_spec:
        dims = benchmark_dimensions(benchmark)
        agents[benchmark] = DDPGAgent(
            dims["state_dim"],
            dims["action_dim"],
            DDPGConfig(hidden_sizes=HIDDEN_SIZES,
                       actor_learning_rate=1e-3, critic_learning_rate=1e-3),
            numerics=numerics,
            rng=rng,
        )
        print(f"  {benchmark:12s} state_dim {dims['state_dim']:3d}  "
              f"action_dim {dims['action_dim']:2d}")

    controller = QATController(
        numerics, QATSchedule(num_bits=16, quantization_delay=args.timesteps // 2)
    )
    config = TrainingConfig(
        total_timesteps=args.timesteps,
        warmup_timesteps=min(400, args.timesteps // 5),
        batch_size=64,
        buffer_capacity=max(args.timesteps, 10_000),
        evaluation_interval=max(250, args.timesteps // 8),
        evaluation_episodes=3,
        exploration_noise=0.15,
        seed=args.seed,
        num_envs=args.num_envs,
        pipeline_depth=args.pipeline_depth,
        fleet=fleet_spec,
        schedule=args.schedule,
    )

    # The weighted schedule needs a cost oracle; hand train_fleet the
    # modelled platform so the policy can price each benchmark's chain.
    oracle = None
    if args.schedule == "weighted":
        oracle = FixarPlatform(
            WorkloadSpec.from_benchmark(fleet_spec[0][0], hidden_sizes=HIDDEN_SIZES)
        )

    result = train_fleet(
        agents, config, qat_controller=controller, label="fleet-qat",
        platform=oracle,
    )
    if result.schedule == "weighted":
        print(f"weighted lock-step allocation: "
              + ", ".join(f"{key}x{weight}"
                          for (key, _c, _w), weight in zip(result.fleet, result.weights)))
    print()
    for benchmark, benchmark_result in result.per_benchmark.items():
        curve = benchmark_result.curve
        print(format_curve(curve.timesteps, curve.returns,
                           label=f"{benchmark:12s} reward curve"))
        print(f"  {benchmark:12s} episodes {len(benchmark_result.episode_returns):4d}  "
              f"updates {benchmark_result.total_updates:6d}")
    if result.qat_event:
        print(f"fleet-wide precision switch at t={result.qat_event.timestep} "
              f"(activations -> {result.qat_event.num_bits} bits)")

    # Price the fleet on the modelled platform: mixed layer dimensions served
    # back to back by the single accelerator, vs the homogeneous equivalents.
    first_benchmark = fleet_spec[0][0]
    platform = FixarPlatform(
        WorkloadSpec.from_benchmark(first_benchmark, hidden_sizes=HIDDEN_SIZES)
    )
    print()
    print("modelled platform (batch 64, one update per collected step):")
    report = platform.infer_fleet(fleet_spec, args.num_envs)
    print(f"  fleet inference round: {report.total_seconds * 1e3:6.2f} ms "
          f"for {report.num_states} states "
          f"({report.states_per_second:,.0f} states/sec)")
    mixed = platform.fleet_training_steps_per_second(
        fleet_spec, args.num_envs, 64, pipelined=args.pipeline_depth > 0
    )
    print(f"  mixed fleet training throughput : {mixed:8.1f} steps/sec")
    for benchmark, _count, _width in fleet_spec:
        homogeneous = platform.fleet_training_steps_per_second(
            [(benchmark, total_workers)], args.num_envs, 64,
            pipelined=args.pipeline_depth > 0,
        )
        print(f"  homogeneous {benchmark:12s} fleet  : {homogeneous:8.1f} steps/sec")


if __name__ == "__main__":
    main()
