#!/usr/bin/env python3
"""Quickstart: train a FIXAR system at reduced scale and print its reports.

Builds the full FIXAR stack for the HalfCheetah benchmark — synthetic
environment on the "host CPU", a DDPG agent under the dynamic fixed-point
regime, the Algorithm 1 QAT controller, the FPGA accelerator simulator, and
the platform timing models — runs a short quantization-aware training run,
and prints the learning curve, the throughput/efficiency report, and the
Table I resource summary.

Run:
    python examples/quickstart.py
"""

from __future__ import annotations

from repro.core import (
    FixarConfig,
    FixarSystem,
    format_breakdown,
    format_curve,
    format_series,
    format_table,
    smoke_test_config,
)


def main() -> None:
    # A reduced-scale configuration: every moving part of the paper's
    # pipeline, but small networks and a few thousand timesteps so the run
    # finishes in well under a minute.
    config = smoke_test_config(
        benchmark="HalfCheetah",
        total_timesteps=3_000,
        batch_size=32,
        hidden_sizes=(64, 48),
    )
    system = FixarSystem(config)

    print("=== FIXAR quickstart ===")
    print(f"benchmark            : {system.env.name}")
    print(f"state / action dims  : {system.env.state_dim} / {system.env.action_dim}")
    print(f"numeric regime       : {config.numeric_regime}")
    print(f"quantization delay   : {config.qat.quantization_delay} timesteps")
    print(f"accelerator          : {config.accelerator.num_cores} AAP cores, "
          f"{config.accelerator.geometry.rows}x{config.accelerator.geometry.cols} PEs each")
    print()

    print("Training with quantization-aware training (Algorithm 1)...")
    result = system.train()
    print(format_curve(result.curve.timesteps, result.curve.returns, label="reward curve"))
    if result.qat_event is not None:
        event = result.qat_event
        print(
            f"precision switch at t={event.timestep}: activations 32b -> {event.num_bits}b, "
            f"range [{event.activation_min:.2f}, {event.activation_max:.2f}], delta={event.delta:.5f}"
        )
    print()

    print("Platform throughput vs the CPU-GPU baseline (Fig. 8 style),")
    print(f"for this quickstart's reduced-size networks {config.ddpg.hidden_sizes}:")
    report = system.throughput_report()
    print(format_series(report.platform_ips, name="FIXAR platform IPS "))
    print(format_series(report.baseline_platform_ips, name="CPU-GPU platform IPS"))
    print(format_series(report.platform_speedups, name="speedup             ", precision=2))
    print()

    print("Single-timestep breakdown at batch 256 (Fig. 9 style):")
    print(format_breakdown(report.time_breakdowns[256]))
    print()

    # The paper's numbers use the full 400/300 networks; report those too so
    # the headline matches the evaluation section.
    paper_system = FixarSystem(FixarConfig(benchmark=config.benchmark))
    summary = paper_system.headline_summary()
    print("Headline summary for the paper-scale workload (400/300 hidden units):")
    for key, value in summary.items():
        print(f"  {key:32s} {value:10.1f}")
    print()

    print(format_table(system.resource_table(), title="Table I — FPGA resource usage (modelled)"))


if __name__ == "__main__":
    main()
