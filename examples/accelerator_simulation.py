#!/usr/bin/env python3
"""Drive the FPGA accelerator simulator directly.

Loads the paper's full-size actor and critic networks (400/300 hidden units)
into the accelerator's on-chip weight memory, runs fixed-point inference
through the AAP cores, compares it against the software network, switches
the configurable datapath to half precision, and prints the cycle breakdown,
throughput, utilization, resource usage, and power of a training timestep.

Run:
    python examples/accelerator_simulation.py
"""

from __future__ import annotations

import numpy as np

from repro.accelerator import FixarAccelerator, PrecisionMode, PowerModel, ResourceModel
from repro.core import format_table
from repro.rl import DDPGAgent, DDPGConfig


def main() -> None:
    rng = np.random.default_rng(7)
    print("=== FIXAR accelerator simulation ===")

    # The paper's HalfCheetah workload: 17-dim state, 6-dim action, 400/300
    # hidden units for both the actor and the critic.
    agent = DDPGAgent(17, 6, DDPGConfig(), rng=rng)
    accelerator = FixarAccelerator()
    accelerator.load_agent(agent)

    report = accelerator.memory_report()
    print(f"actor layers   : {accelerator.network_shapes('actor')}")
    print(f"critic layers  : {accelerator.network_shapes('critic')}")
    print(f"weight memory  : {report['weight_memory_used_bytes'] / 1024:.1f} KB used "
          f"of {accelerator.weight_memory.capacity_bytes / 1024:.1f} KB "
          f"({100 * report['weight_memory']:.1f}%) — no external DRAM needed")
    print()

    # Functional check: the fixed-point datapath tracks the software network.
    state = rng.normal(size=17)
    software = agent.actor.forward(state)[0]
    hardware = accelerator.infer("actor", state)
    print("actor inference on one state (software vs accelerator fixed point):")
    print("  software   :", np.round(software, 4))
    print("  accelerator:", np.round(hardware, 4))
    print(f"  max abs err: {np.max(np.abs(software - hardware)):.6f}")
    noisy = accelerator.infer("actor", state, add_noise=True)
    print("  with PRNG exploration noise:", np.round(noisy, 4))
    print()

    # Timing: one full DDPG training timestep (critic FP/BP/WU, actor
    # FP/BP/WU, actor inference) at each paper batch size.
    print("Training-timestep cycle counts (full precision):")
    for batch in (64, 128, 256, 512):
        breakdown = accelerator.timestep_breakdown(batch)
        seconds = accelerator.timestep_seconds(batch)
        print(
            f"  batch {batch:4d}: {breakdown.total_cycles:9d} cycles "
            f"= {seconds * 1e3:6.2f} ms -> {accelerator.ips(batch):8.0f} IPS, "
            f"utilization {100 * accelerator.utilization(batch):5.1f}%"
        )
    print()

    print("Phase breakdown at batch 256 (cycles):")
    for phase, cycles in accelerator.timestep_breakdown(256).phases.items():
        print(f"  {phase:24s} {cycles:9d}")
    print()

    # The configurable datapath: after the QAT switch the PEs process two
    # 16-bit activations per cycle.
    full_ips = accelerator.ips(256)
    accelerator.set_precision(PrecisionMode.HALF)
    half_ips = accelerator.ips(256)
    print(f"half-precision datapath: {full_ips:.0f} IPS -> {half_ips:.0f} IPS "
          f"({half_ips / full_ips:.2f}x) at batch 256")
    print()

    resources = ResourceModel(accelerator.config)
    print(format_table(resources.table(), title="Table I — modelled FPGA resource usage (Alveo U50)"))
    print()

    power = PowerModel(accelerator.config)
    breakdown = power.breakdown(utilization=accelerator.utilization(512))
    print("Power model:")
    for key, value in breakdown.as_dict().items():
        print(f"  {key:18s} {value:6.2f} W")
    print(f"  energy efficiency  {accelerator.ips(512) / breakdown.total_watts:6.1f} IPS/W at batch 512")


if __name__ == "__main__":
    main()
