#!/usr/bin/env python3
"""Domain scenario: quantization-aware training on the Hopper benchmark.

Hopper is the paper's benchmark with early termination: the agent falls if
its posture drifts too far, so the learning problem couples forward progress
with stability.  This example trains a DDPG agent with Algorithm 1's QAT on
Hopper — collecting experience through the vectorized rollout engine, which
steps ``--num-envs`` Hopper instances in lock-step with one batched actor
inference per step — reports the reward before and after the precision
switch, and then offloads the trained actor to the accelerator simulator to
compare the fixed-point policy's behaviour against the software policy in
the live environment.

With ``--num-workers W`` experience collection fans out over W collection
workers, each owning its own VectorEnv of ``--num-envs`` Hopper instances
(worker ``w``'s environment ``i`` is seeded ``seed + w * num_envs + i``) and
an actor replica that is refreshed from the learner every round; the workers
are scheduled deterministically, so a run is reproducible for any topology.

With ``--pipeline-depth D > 0`` the training schedule is *pipelined*: the
worker fleet collects round k+1 while the learner drains round k and runs
its updates, with collection acting on weights at most D rounds stale.  On
the modelled platform the two phases overlap (``max`` instead of sum); the
run itself stays deterministic, so results are still reproducible.

Run:
    python examples/train_hopper_qat.py [--timesteps 4000] [--num-envs 4] \
        [--num-workers 2] [--pipeline-depth 1]
"""

from __future__ import annotations

import argparse

import numpy as np

from repro.accelerator import FixarAccelerator, PrecisionMode
from repro.core import format_curve
from repro.envs import HopperEnv
from repro.nn import DynamicFixedPointNumerics
from repro.rl import (
    DDPGAgent,
    DDPGConfig,
    QATController,
    QATSchedule,
    TrainingConfig,
    evaluate_policy,
    train,
    worker_env_seed,
)


def rollout_with_accelerator(env: HopperEnv, accelerator: FixarAccelerator, episodes: int = 3) -> float:
    """Average return when actions come from the accelerator's fixed-point actor."""
    returns = []
    for _ in range(episodes):
        observation = env.reset()
        total = 0.0
        done = False
        while not done:
            action = np.clip(accelerator.infer("actor", observation), -1.0, 1.0)
            observation, reward, done, _ = env.step(action)
            total += reward
        returns.append(total)
    return float(np.mean(returns))


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--timesteps", type=int, default=4_000)
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--num-envs", type=int, default=4,
                        help="Hopper instances rolled out in lock-step per worker")
    parser.add_argument("--num-workers", type=int, default=1,
                        help="collection workers, each owning its own VectorEnv "
                             "of --num-envs Hoppers and an actor replica")
    parser.add_argument("--pipeline-depth", type=int, default=0,
                        help="rounds the fleet may run ahead of the learner "
                             "(0 = sequential schedule; 1 = classic overlapped "
                             "pipeline with one round of weight staleness)")
    args = parser.parse_args()

    env = HopperEnv(seed=args.seed, max_episode_steps=400)
    # The evaluation env takes the seed of the fleet's (nonexistent)
    # next worker — the blessed scheme's first seed past every collector.
    eval_env = HopperEnv(
        seed=worker_env_seed(args.seed, args.num_workers, args.num_envs),
        max_episode_steps=400,
    )
    print("=== Hopper with quantization-aware training ===")
    schedule = (
        f"pipelined (depth {args.pipeline_depth})" if args.pipeline_depth else "sequential"
    )
    print(f"state dim {env.state_dim}, action dim {env.action_dim}, fall threshold enabled; "
          f"{args.num_workers} worker(s) x {args.num_envs} environments in lock-step, "
          f"{schedule} schedule")

    numerics = DynamicFixedPointNumerics(num_bits=16)
    agent = DDPGAgent(
        env.state_dim,
        env.action_dim,
        DDPGConfig(hidden_sizes=(64, 48), actor_learning_rate=1e-3, critic_learning_rate=1e-3),
        numerics=numerics,
        rng=np.random.default_rng(args.seed),
    )
    controller = QATController(numerics, QATSchedule(num_bits=16, quantization_delay=args.timesteps // 2))
    config = TrainingConfig(
        total_timesteps=args.timesteps,
        warmup_timesteps=min(500, args.timesteps // 5),
        batch_size=64,
        buffer_capacity=max(args.timesteps, 10_000),
        evaluation_interval=max(500, args.timesteps // 8),
        evaluation_episodes=5,
        exploration_noise=0.15,
        seed=args.seed,
        num_envs=args.num_envs,
        num_workers=args.num_workers,
        pipeline_depth=args.pipeline_depth,
    )

    result = train(env, agent, config, eval_env=eval_env, qat_controller=controller, label="hopper-qat")
    print(format_curve(result.curve.timesteps, result.curve.returns, label="reward curve"))
    if result.qat_event:
        event = result.qat_event
        print(f"precision switch at t={event.timestep}: activation range "
              f"[{event.activation_min:.2f}, {event.activation_max:.2f}], delta={event.delta:.5f}")
    print(f"episodes finished: {len(result.episode_returns)}  "
          f"(falls terminate episodes early; trained agents survive longer)")
    print()

    # Offload the trained actor to the accelerator and compare in-environment
    # behaviour of the software and fixed-point half-precision policies.
    accelerator = FixarAccelerator()
    accelerator.load_agent(agent)
    accelerator.set_precision(PrecisionMode.HALF)
    software_return = evaluate_policy(eval_env, agent, episodes=3)
    hardware_return = rollout_with_accelerator(eval_env, accelerator, episodes=3)
    print(f"software policy return (3 episodes)      : {software_return:8.1f}")
    print(f"accelerator fixed-point policy return    : {hardware_return:8.1f}")
    print(f"accelerator IPS at batch 64 (half prec.) : {accelerator.ips(64):8.0f}")


if __name__ == "__main__":
    main()
