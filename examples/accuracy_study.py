#!/usr/bin/env python3
"""Fig. 7 at reduced scale: training accuracy under four numeric regimes.

Trains the same DDPG agent on the HalfCheetah benchmark under the paper's
four numeric regimes — 32-bit floating point, 32-bit fixed point, 16-bit
fixed point from scratch, and FIXAR's dynamic dual fixed point — and prints
the learning curves.  The expected shape matches the paper: the three
full-precision-start regimes all learn, 16-bit-from-scratch fails, and the
dynamic regime keeps its accuracy after the precision switch.

Run:
    python examples/accuracy_study.py [--timesteps 4000]
"""

from __future__ import annotations

import argparse

import numpy as np

from repro.core import format_curve, format_table
from repro.envs import make
from repro.nn import REGIMES, make_numerics
from repro.rl import (
    DDPGAgent,
    DDPGConfig,
    QATController,
    QATSchedule,
    TrainingConfig,
    compare_curves,
    train,
)


def train_regime(regime: str, timesteps: int, seed: int = 0):
    """Train one regime and return its TrainingResult."""
    env = make("HalfCheetah", seed=seed, max_episode_steps=200)
    eval_env = make("HalfCheetah", seed=seed + 1, max_episode_steps=200)
    numerics = make_numerics(regime)
    agent = DDPGAgent(
        env.state_dim,
        env.action_dim,
        DDPGConfig(hidden_sizes=(64, 48), actor_learning_rate=1e-3, critic_learning_rate=1e-3),
        numerics=numerics,
        rng=np.random.default_rng(seed),
    )
    qat_controller = None
    if regime == "fixar-dynamic":
        qat_controller = QATController(
            numerics, QATSchedule(num_bits=16, quantization_delay=timesteps // 2)
        )
    config = TrainingConfig(
        total_timesteps=timesteps,
        warmup_timesteps=min(500, timesteps // 5),
        batch_size=64,
        buffer_capacity=max(timesteps, 10_000),
        evaluation_interval=max(500, timesteps // 8),
        evaluation_episodes=5,
        exploration_noise=0.2,
        seed=seed,
    )
    return train(env, agent, config, eval_env=eval_env, qat_controller=qat_controller, label=regime)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--timesteps", type=int, default=4_000,
                        help="training timesteps per regime (paper: 1,000,000)")
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    print("=== Fig. 7 (reduced scale): algorithm accuracy on HalfCheetah ===")
    results = {}
    for regime in REGIMES:
        print(f"training regime {regime!r} for {args.timesteps} timesteps ...")
        results[regime] = train_regime(regime, args.timesteps, args.seed)

    print()
    print("Learning curves (timestep:average return over 5 evaluation rollouts):")
    for regime, result in results.items():
        print(" ", format_curve(result.curve.timesteps, result.curve.returns, label=f"{regime:14s}"))
        if result.qat_event is not None:
            print(f"    ^ precision switch at t={result.qat_event.timestep}")

    print()
    summaries = compare_curves([result.curve for result in results.values()])
    print(format_table(summaries, title="Converged performance by regime (best first):"))

    dynamic = results["fixar-dynamic"].curve.final_return
    fixed16 = results["fixed16"].curve.final_return
    print()
    print(f"FIXAR dynamic fixed point final return : {dynamic:8.1f}")
    print(f"16-bit fixed point from scratch        : {fixed16:8.1f}   (fails to train, as in the paper)")


if __name__ == "__main__":
    main()
