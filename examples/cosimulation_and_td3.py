#!/usr/bin/env python3
"""Co-simulation trace and the TD3 extension.

Two extensions of the base reproduction in one scenario:

1. **Trace-driven co-simulation** — instead of asking the analytic models
   "how fast would a timestep be", an actual reduced-scale QAT training run
   is executed and every timestep is priced with the platform timing models
   (host environment, PCIe runtime, FPGA accelerator, including the effect
   of the precision switch).  The same trace is priced on the CPU-GPU
   baseline, giving an end-to-end simulated speedup for a *real* run.
2. **TD3** — the DDPG variant the paper cites (twin critics, target policy
   smoothing, delayed policy updates), trained under the same dynamic
   fixed-point regime and checkpointed to disk.

Run:
    python examples/cosimulation_and_td3.py [--timesteps 2000]
"""

from __future__ import annotations

import argparse
import tempfile
from pathlib import Path

import numpy as np

from repro.core import FixarSystem, format_curve, smoke_test_config
from repro.envs import SwimmerEnv
from repro.nn import DynamicFixedPointNumerics
from repro.rl import (
    QATController,
    QATSchedule,
    TD3Agent,
    TD3Config,
    TrainingConfig,
    load_agent_into,
    save_agent,
    train,
)


def run_cosimulation(timesteps: int) -> None:
    print("--- Part 1: trace-driven co-simulation (DDPG + QAT on HalfCheetah) ---")
    config = smoke_test_config(
        "HalfCheetah", total_timesteps=timesteps, batch_size=64, hidden_sizes=(64, 48)
    )
    system = FixarSystem(config)
    result = system.cosimulate()

    print(f"timesteps simulated        : {result.timesteps}")
    print(f"training updates           : {result.training_updates}")
    print(f"precision switch at        : t={result.precision_switch_timestep}")
    print(f"simulated platform time    : {result.simulated_seconds:.3f} s "
          f"(wall clock {result.wall_clock_seconds:.1f} s)")
    for component, seconds in result.component_seconds.items():
        share = 100.0 * seconds / result.simulated_seconds
        print(f"  {component:16s} {seconds:8.3f} s  ({share:4.1f}%)")
    print(f"simulated platform IPS     : {result.platform_ips:10.1f}")
    print(f"CPU-GPU baseline IPS       : {result.baseline_ips:10.1f}")
    print(f"end-to-end speedup         : {result.speedup_vs_baseline:10.2f}x")
    if result.episode_returns:
        print(f"last episode return        : {result.episode_returns[-1]:10.1f}")
    print()


def run_td3(timesteps: int, seed: int = 3) -> None:
    print("--- Part 2: TD3 (twin critics, delayed policy updates) on Swimmer ---")
    env = SwimmerEnv(seed=seed, max_episode_steps=200)
    eval_env = SwimmerEnv(seed=seed + 1, max_episode_steps=200)
    numerics = DynamicFixedPointNumerics()
    agent = TD3Agent(
        env.state_dim,
        env.action_dim,
        TD3Config(hidden_sizes=(48, 32), actor_learning_rate=1e-3, critic_learning_rate=1e-3),
        numerics=numerics,
        rng=np.random.default_rng(seed),
    )
    controller = QATController(numerics, QATSchedule(16, quantization_delay=timesteps // 2))
    config = TrainingConfig(
        total_timesteps=timesteps,
        warmup_timesteps=min(300, timesteps // 5),
        batch_size=64,
        buffer_capacity=max(timesteps, 10_000),
        evaluation_interval=max(500, timesteps // 4),
        evaluation_episodes=3,
        exploration_noise=0.1,
        seed=seed,
    )
    result = train(env, agent, config, eval_env=eval_env, qat_controller=controller, label="td3-qat")
    print(format_curve(result.curve.timesteps, result.curve.returns, label="TD3 reward curve"))
    print(f"critic networks: 2x {agent.critic_1.layer_shapes}, "
          f"total parameters {agent.parameter_count():,}")

    checkpoint = Path(tempfile.gettempdir()) / "fixar_td3_swimmer.npz"
    save_agent(agent, checkpoint)
    restored = TD3Agent(
        env.state_dim,
        env.action_dim,
        TD3Config(hidden_sizes=(48, 32)),
        numerics=DynamicFixedPointNumerics(),
        rng=np.random.default_rng(0),
    )
    metadata = load_agent_into(restored, checkpoint)
    probe = np.zeros(env.state_dim)
    agreement = np.allclose(agent.act(probe), restored.act(probe))
    print(f"checkpoint saved to {checkpoint} and restored "
          f"(half-mode={metadata['qat']['half_mode']}, policies agree: {agreement})")
    print()


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--timesteps", type=int, default=2_000)
    args = parser.parse_args()
    run_cosimulation(args.timesteps)
    run_td3(args.timesteps)


if __name__ == "__main__":
    main()
