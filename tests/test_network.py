"""Unit tests for the MLP container and actor/critic builders."""

import numpy as np
import pytest

from repro.nn import (
    MLP,
    DynamicFixedPointNumerics,
    Linear,
    ReLU,
    build_actor,
    build_critic,
)


class TestMLP:
    def _simple_mlp(self, rng):
        return MLP([Linear(4, 8, rng=rng), ReLU(), Linear(8, 2, rng=rng)])

    def test_forward_shape(self, rng):
        mlp = self._simple_mlp(rng)
        out = mlp.forward(np.ones((3, 4)))
        assert out.shape == (3, 2)

    def test_single_vector_promoted_to_batch(self, rng):
        mlp = self._simple_mlp(rng)
        out = mlp.forward(np.ones(4))
        assert out.shape == (1, 2)

    def test_empty_layer_list_rejected(self):
        with pytest.raises(ValueError):
            MLP([])

    def test_backward_returns_input_gradient(self, rng):
        mlp = self._simple_mlp(rng)
        x = rng.normal(size=(3, 4))
        mlp.forward(x)
        grad = mlp.backward(np.ones((3, 2)))
        assert grad.shape == (3, 4)

    def test_end_to_end_gradient_matches_numerical(self, rng):
        mlp = self._simple_mlp(rng)
        x = rng.normal(size=(2, 4))
        upstream = rng.normal(size=(2, 2))
        mlp.zero_grad()
        mlp.forward(x)
        mlp.backward(upstream)
        grads = mlp.gradients()
        params = mlp.parameters()
        name = "0.linear.weight"
        eps = 1e-6
        analytic = grads[name][1, 3]
        params[name][1, 3] += eps
        plus = np.sum(mlp.forward(x) * upstream)
        params[name][1, 3] -= 2 * eps
        minus = np.sum(mlp.forward(x) * upstream)
        params[name][1, 3] += eps
        assert analytic == pytest.approx((plus - minus) / (2 * eps), rel=1e-4, abs=1e-6)

    def test_parameters_are_views(self, rng):
        mlp = self._simple_mlp(rng)
        params = mlp.parameters()
        key = next(iter(params))
        params[key][...] = 0.0
        assert np.all(mlp.parameters()[key] == 0.0)

    def test_set_parameters_validates(self, rng):
        mlp = self._simple_mlp(rng)
        with pytest.raises(KeyError):
            mlp.set_parameters({"nope": np.zeros((1,))})
        params = mlp.parameters()
        key = next(iter(params))
        with pytest.raises(ValueError):
            mlp.set_parameters({key: np.zeros((1, 1))})

    def test_copy_from(self, rng):
        a = self._simple_mlp(rng)
        b = self._simple_mlp(rng)
        b.copy_from(a)
        x = rng.normal(size=(2, 4))
        np.testing.assert_allclose(a.forward(x), b.forward(x))

    def test_soft_update(self, rng):
        a = self._simple_mlp(rng)
        b = self._simple_mlp(rng)
        before = {k: v.copy() for k, v in b.parameters().items()}
        b.soft_update_from(a, tau=0.25)
        for name, value in b.parameters().items():
            expected = 0.25 * a.parameters()[name] + 0.75 * before[name]
            np.testing.assert_allclose(value, expected)

    def test_soft_update_rejects_bad_tau(self, rng):
        a = self._simple_mlp(rng)
        with pytest.raises(ValueError):
            a.soft_update_from(self._simple_mlp(rng), tau=1.5)

    def test_parameter_count_and_size(self, rng):
        mlp = self._simple_mlp(rng)
        assert mlp.parameter_count == (4 * 8 + 8) + (8 * 2 + 2)
        assert mlp.model_size_bytes(32) == mlp.parameter_count * 4
        assert mlp.model_size_bytes(16) == mlp.parameter_count * 2

    def test_layer_shapes(self, rng):
        mlp = self._simple_mlp(rng)
        assert mlp.layer_shapes == [(4, 8), (8, 2)]

    def test_numerics_observes_activations(self, rng):
        numerics = DynamicFixedPointNumerics()
        mlp = MLP([Linear(4, 8, rng=rng), ReLU(), Linear(8, 2, rng=rng)], numerics=numerics)
        mlp.forward(rng.normal(size=(5, 4)))
        assert numerics.range_tracker.initialized


class TestBuilders:
    def test_actor_shapes_match_paper(self, rng):
        actor = build_actor(17, 6, rng=rng)
        assert actor.layer_shapes == [(17, 400), (400, 300), (300, 6)]

    def test_critic_shapes_match_paper(self, rng):
        critic = build_critic(17, 6, rng=rng)
        assert critic.layer_shapes == [(23, 400), (400, 300), (300, 1)]

    def test_actor_output_bounded_by_tanh(self, rng):
        actor = build_actor(8, 3, (16, 12), rng=rng)
        out = actor.forward(rng.normal(scale=100, size=(10, 8)))
        assert np.all(np.abs(out) <= 1.0)

    def test_critic_scalar_output(self, rng):
        critic = build_critic(8, 3, (16, 12), rng=rng)
        out = critic.forward(rng.normal(size=(10, 11)))
        assert out.shape == (10, 1)

    def test_final_layer_initialised_small(self, rng):
        actor = build_actor(8, 3, (16, 12), rng=rng)
        final = [layer for layer in actor.layers if isinstance(layer, Linear)][-1]
        assert np.max(np.abs(final.weight)) <= 3e-3

    def test_custom_hidden_sizes(self, rng):
        actor = build_actor(5, 2, (10, 7, 4), rng=rng)
        assert actor.layer_shapes == [(5, 10), (10, 7), (7, 4), (4, 2)]
