"""Unit tests for the host, PCIe, GPU baseline, and metrics models."""

import numpy as np
import pytest

from repro.envs import HalfCheetahEnv
from repro.platform import (
    CpuGpuPlatform,
    GpuAcceleratorModel,
    GpuConfig,
    HostConfig,
    HostModel,
    PcieConfig,
    PcieModel,
    average_ips,
    geometric_mean,
    ips,
    ips_per_watt,
    normalize_to_dsp,
    speedup,
)


class TestMetrics:
    def test_ips(self):
        assert ips(512, 0.01) == pytest.approx(51200)
        with pytest.raises(ValueError):
            ips(10, 0.0)
        with pytest.raises(ValueError):
            ips(-1, 1.0)

    def test_ips_per_watt(self):
        assert ips_per_watt(53826.8, 20.4) == pytest.approx(2638.57, rel=1e-3)
        with pytest.raises(ValueError):
            ips_per_watt(1000, 0.0)

    def test_speedup(self):
        assert speedup(27.0, 10.0) == pytest.approx(2.7)
        with pytest.raises(ValueError):
            speedup(1.0, 0.0)

    def test_geometric_mean(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)
        with pytest.raises(ValueError):
            geometric_mean([])
        with pytest.raises(ValueError):
            geometric_mean([1.0, -1.0])

    def test_normalize_to_dsp(self):
        assert normalize_to_dsp(1000, dsp_count=2000, reference_dsp_count=1000) == pytest.approx(500)
        with pytest.raises(ValueError):
            normalize_to_dsp(1000, 0, 100)

    def test_average_ips(self):
        assert average_ips([10.0, 20.0, 30.0]) == pytest.approx(20.0)
        with pytest.raises(ValueError):
            average_ips([])


class TestHostModel:
    def test_env_step_time_is_roughly_constant_2ms(self):
        host = HostModel()
        for benchmark in ("HalfCheetah", "Hopper", "Swimmer"):
            assert host.env_step_seconds(benchmark) == pytest.approx(2e-3, rel=0.2)

    def test_unknown_benchmark_uses_default(self):
        host = HostModel()
        assert host.env_step_seconds("Ant") == HostConfig().default_env_step_seconds

    def test_timestep_grows_weakly_with_batch(self):
        host = HostModel()
        small = host.timestep_seconds("HalfCheetah", 64)
        large = host.timestep_seconds("HalfCheetah", 512)
        assert large > small
        assert large < 1.5 * small

    def test_calibration_overrides_default(self):
        host = HostModel()
        env = HalfCheetahEnv(seed=0, max_episode_steps=50)
        measured = host.calibrate(env, steps=20)
        assert measured > 0
        assert host.env_step_seconds("HalfCheetah") == pytest.approx(measured)

    def test_validation(self):
        with pytest.raises(ValueError):
            HostConfig(default_env_step_seconds=0.0)
        with pytest.raises(ValueError):
            HostModel().timestep_seconds("HalfCheetah", 0)
        with pytest.raises(ValueError):
            HostModel().calibrate(HalfCheetahEnv(seed=0), steps=0)


class TestPcieModel:
    def test_batch_bytes(self):
        model = PcieModel()
        per_transition = (2 * 17 + 6 + 2) * 4
        assert model.batch_bytes(64, 17, 6) == 64 * per_transition + 17 * 4

    def test_transfer_time_linear_in_bytes(self):
        model = PcieModel()
        assert model.transfer_seconds(2_000_000) == pytest.approx(
            2 * model.transfer_seconds(1_000_000)
        )

    def test_runtime_dominated_by_fixed_overhead(self):
        """Fig. 9: runtime grows only marginally when the batch doubles."""
        model = PcieModel()
        t64 = model.timestep_seconds(64, 17, 6)
        t512 = model.timestep_seconds(512, 17, 6)
        assert t512 > t64
        assert t512 < 2.0 * t64

    def test_validation(self):
        model = PcieModel()
        with pytest.raises(ValueError):
            model.batch_bytes(0, 17, 6)
        with pytest.raises(ValueError):
            model.transfer_seconds(-1)
        with pytest.raises(ValueError):
            PcieConfig(bandwidth_bytes_per_second=0)
        with pytest.raises(ValueError):
            model.batch_bytes(64, 17, 6, bytes_per_value=0)
        with pytest.raises(ValueError):
            model.inference_bytes(8, 17, 6, bytes_per_value=-2)

    def test_timestep_prices_extra_actions_at_bytes_per_value(self):
        """Regression: the extra returned actions of the additional lock-stepped
        envs were hardcoded at 4 bytes each, silently mispricing
        half-precision transfer studies.  The whole payload — including that
        term — must scale with ``bytes_per_value``."""
        model = PcieModel()
        batch, state_dim, action_dim, num_envs = 64, 17, 6, 4
        for bytes_per_value in (2, 4, 8):
            expected_payload = model.batch_bytes(
                batch, state_dim, action_dim,
                bytes_per_value=bytes_per_value, num_envs=num_envs,
            ) + (num_envs - 1) * action_dim * bytes_per_value
            expected = (
                model.config.base_overhead_seconds
                + model.BUFFERS_PER_TIMESTEP * model.config.per_buffer_seconds
                + model.config.per_transition_seconds * batch
                + model.transfer_seconds(expected_payload)
            )
            actual = model.timestep_seconds(
                batch, state_dim, action_dim,
                num_envs=num_envs, bytes_per_value=bytes_per_value,
            )
            assert actual == pytest.approx(expected)
        # Half precision strictly undercuts full precision for the same shape.
        assert model.timestep_seconds(
            batch, state_dim, action_dim, num_envs=num_envs, bytes_per_value=2
        ) < model.timestep_seconds(batch, state_dim, action_dim, num_envs=num_envs)
        # The default stays the 4-byte pricing (the paper's Fig. 9 numbers).
        assert model.timestep_seconds(batch, state_dim, action_dim) == pytest.approx(
            model.timestep_seconds(batch, state_dim, action_dim, bytes_per_value=4)
        )


class TestGpuBaseline:
    def test_ips_grows_with_batch(self):
        gpu = GpuAcceleratorModel()
        values = [gpu.ips(batch) for batch in (64, 128, 256, 512)]
        assert values == sorted(values)
        assert values[-1] > 3 * values[0]

    def test_utilization_grows_with_batch(self):
        gpu = GpuAcceleratorModel()
        assert gpu.utilization(512) > gpu.utilization(64)
        assert gpu.utilization(10 ** 7) <= 1.0

    def test_power_and_efficiency(self):
        gpu = GpuAcceleratorModel()
        assert gpu.average_watts() == pytest.approx(56.7)
        assert gpu.ips_per_watt(512) == pytest.approx(gpu.ips(512) / 56.7)

    def test_platform_breakdown_and_sweep(self):
        platform = CpuGpuPlatform()
        breakdown = platform.timestep_breakdown("HalfCheetah", 128)
        assert set(breakdown) == {"cpu_environment", "framework", "gpu"}
        sweep = platform.sweep_ips("HalfCheetah", (64, 512))
        assert sweep[512] > sweep[64]

    def test_platform_time_includes_all_components(self):
        platform = CpuGpuPlatform()
        assert platform.timestep_seconds("HalfCheetah", 64) == pytest.approx(
            sum(platform.timestep_breakdown("HalfCheetah", 64).values())
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            GpuConfig(fixed_overhead_seconds=0.0)
        with pytest.raises(ValueError):
            GpuConfig(average_watts=0.0)
        with pytest.raises(ValueError):
            GpuAcceleratorModel().ips(0)
