"""Unit tests for the fixed-point Q-format descriptions."""

import numpy as np
import pytest

from repro.fixedpoint import (
    ACTIVATION_FULL_FORMAT,
    ACTIVATION_HALF_FORMAT,
    GRADIENT_FORMAT,
    WEIGHT_FORMAT,
    QFormat,
)


class TestQFormatConstruction:
    def test_basic_properties(self):
        fmt = QFormat(word_length=16, frac_bits=8)
        assert fmt.int_bits == 7
        assert fmt.resolution == pytest.approx(1 / 256)
        assert fmt.scale == 256
        assert fmt.raw_min == -(1 << 15)
        assert fmt.raw_max == (1 << 15) - 1

    def test_value_range(self):
        fmt = QFormat(word_length=8, frac_bits=4)
        assert fmt.min_value == pytest.approx(-8.0)
        assert fmt.max_value == pytest.approx(8.0 - 1 / 16)

    def test_rejects_too_small_word(self):
        with pytest.raises(ValueError):
            QFormat(word_length=1, frac_bits=0)

    def test_rejects_too_large_word(self):
        with pytest.raises(ValueError):
            QFormat(word_length=64, frac_bits=16)

    def test_rejects_negative_frac_bits(self):
        with pytest.raises(ValueError):
            QFormat(word_length=16, frac_bits=-1)

    def test_rejects_frac_bits_consuming_sign(self):
        with pytest.raises(ValueError):
            QFormat(word_length=16, frac_bits=16)

    def test_is_hashable_and_comparable(self):
        assert QFormat(32, 16) == QFormat(32, 16)
        assert QFormat(32, 16) != QFormat(16, 8)
        assert len({QFormat(32, 16), QFormat(32, 16)}) == 1


class TestQFormatConversions:
    def test_roundtrip_exact_values(self):
        fmt = QFormat(16, 8)
        values = np.array([0.0, 1.0, -1.0, 0.5, -3.25, 100.00390625])
        raw = fmt.to_raw(values)
        back = fmt.from_raw(raw)
        np.testing.assert_allclose(back, values)

    def test_quantize_rounds_to_nearest(self):
        fmt = QFormat(16, 8)
        assert fmt.quantize(0.001) == pytest.approx(0.0)
        assert fmt.quantize(0.003) == pytest.approx(1 / 256)

    def test_quantization_error_bounded_by_half_lsb(self):
        fmt = QFormat(16, 8)
        values = np.linspace(-10, 10, 1001)
        err = np.abs(fmt.quantize(values) - values)
        assert err.max() <= fmt.resolution / 2 + 1e-12

    def test_saturation_on_overflow(self):
        fmt = QFormat(8, 4)
        assert fmt.quantize(100.0) == pytest.approx(fmt.max_value)
        assert fmt.quantize(-100.0) == pytest.approx(fmt.min_value)

    def test_no_saturate_raises(self):
        fmt = QFormat(8, 4)
        with pytest.raises(ValueError):
            fmt.to_raw(100.0, saturate=False)

    def test_clip_raw(self):
        fmt = QFormat(8, 4)
        raw = np.array([fmt.raw_min - 10, 0, fmt.raw_max + 10])
        clipped = fmt.clip_raw(raw)
        assert clipped[0] == fmt.raw_min
        assert clipped[2] == fmt.raw_max

    def test_representable_mask(self):
        fmt = QFormat(8, 4)
        mask = fmt.representable(np.array([0.0, 7.9, 8.5, -8.0, -9.0]))
        assert list(mask) == [True, True, False, True, False]


class TestPaperFormats:
    def test_weight_format_is_32_bit(self):
        assert WEIGHT_FORMAT.word_length == 32
        assert GRADIENT_FORMAT.word_length == 32

    def test_activation_formats_halve(self):
        assert ACTIVATION_FULL_FORMAT.word_length == 32
        assert ACTIVATION_HALF_FORMAT.word_length == 16
        assert ACTIVATION_FULL_FORMAT.half() == ACTIVATION_HALF_FORMAT

    def test_half_always_valid(self):
        fmt = QFormat(32, 30)
        half = fmt.half()
        assert half.word_length == 16
        assert half.frac_bits < half.word_length
