"""Tests for the pipelined training schedule (``TrainingConfig.pipeline_depth``).

The load-bearing guarantees:

* ``pipeline_depth == 0`` is the sequential oracle: the loop is bit-exact
  with the pre-pipeline ``train()`` (whose own oracle chain reaches back to
  :func:`train_scalar_reference`);
* with frozen collection replicas (``sync_interval`` beyond the run) the
  pipelined schedule only *reorders* work, so the replay-buffer contents —
  and in the deterministic emulation the entire run — match the sequential
  schedule bit for bit;
* when updates do feed back into collection, the pipelined schedule's one
  visible semantic difference is bounded weight staleness;
* the collector's deferred-drain path (``step_sync(drain=False)`` +
  ``drain``) inserts exactly what the immediate-drain path inserts.
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np
import pytest

from repro.envs import HopperEnv
from repro.nn import DynamicFixedPointNumerics, make_numerics
from repro.rl import (
    AsyncCollector,
    CollectorWorker,
    DDPGAgent,
    DDPGConfig,
    QATController,
    QATSchedule,
    ReplayBuffer,
    TrainingConfig,
    train,
)


def _agent(env, seed=42, regime="float32"):
    return DDPGAgent(
        env.state_dim,
        env.action_dim,
        DDPGConfig(hidden_sizes=(24, 16)),
        numerics=make_numerics(regime),
        rng=np.random.default_rng(seed),
    )


def _config(**overrides):
    base = TrainingConfig(
        total_timesteps=240,
        warmup_timesteps=48,
        batch_size=16,
        buffer_capacity=5_000,
        evaluation_interval=120,
        evaluation_episodes=2,
        exploration_noise=0.2,
        seed=3,
        num_envs=2,
        num_workers=2,
    )
    return replace(base, **overrides)


def _run(config, env_seed=5, agent_seed=42, regime="float32", qat_controller=None):
    env = HopperEnv(seed=env_seed, max_episode_steps=40)
    agent = _agent(env, seed=agent_seed, regime=regime)
    result = train(
        env,
        agent,
        config,
        eval_env=HopperEnv(seed=9, max_episode_steps=40),
        qat_controller=qat_controller,
    )
    return result, agent


def _buffer_rows(buffer):
    """Every stored transition flattened to one sortable row."""
    n = len(buffer)
    return np.hstack(
        [
            buffer._states[:n],
            buffer._actions[:n],
            buffer._rewards[:n].reshape(n, -1),
            buffer._next_states[:n],
            buffer._dones[:n].reshape(n, -1).astype(float),
        ]
    )


class TestConfig:
    def test_pipeline_depth_validated(self):
        with pytest.raises(ValueError, match="pipeline_depth"):
            _config(pipeline_depth=-1)

    def test_result_records_depth(self):
        result, _ = _run(_config(pipeline_depth=1))
        assert result.pipeline_depth == 1
        assert result.summary()["pipeline_depth"] == 1


class TestSequentialOracle:
    @pytest.mark.smoke
    @pytest.mark.pipelined
    def test_depth_zero_is_bit_exact_with_scalar_oracle(self):
        """depth 0 at 1 worker x 1 env still reproduces the scalar loop."""
        from repro.rl import train_scalar_reference

        config = _config(total_timesteps=200, num_envs=1, num_workers=1, pipeline_depth=0)
        reference_agent = _agent(HopperEnv(seed=5))
        reference = train_scalar_reference(
            HopperEnv(seed=5, max_episode_steps=40),
            reference_agent,
            config,
            eval_env=HopperEnv(seed=9, max_episode_steps=40),
        )
        sequential, sequential_agent = _run(
            replace(config, pipeline_depth=0), env_seed=5
        )
        np.testing.assert_array_equal(
            reference.curve.returns, sequential.curve.returns
        )
        assert reference.episode_returns == sequential.episode_returns
        for attr in ("_states", "_actions", "_rewards", "_next_states", "_dones"):
            np.testing.assert_array_equal(
                getattr(reference.replay_buffer, attr),
                getattr(sequential.replay_buffer, attr),
            )
        for name, value in reference_agent.actor.parameters().items():
            np.testing.assert_array_equal(
                value, sequential_agent.actor.parameters()[name]
            )


class TestPipelinedRegression:
    @pytest.mark.smoke
    @pytest.mark.pipelined
    def test_depth_one_keeps_replay_contents_with_frozen_replicas(self):
        """The issue's regression: identical replay-buffer contents (order
        may differ) under a fixed seed.  With ``sync_interval`` beyond the
        run the replicas never refresh, so pipelining only reorders work."""
        frozen = _config(sync_interval=10**9)
        sequential, sequential_agent = _run(replace(frozen, pipeline_depth=0))
        pipelined, pipelined_agent = _run(replace(frozen, pipeline_depth=1))

        assert len(sequential.replay_buffer) == len(pipelined.replay_buffer)
        seq_rows = _buffer_rows(sequential.replay_buffer)
        pipe_rows = _buffer_rows(pipelined.replay_buffer)
        order = lambda rows: rows[np.lexsort(rows.T)]
        np.testing.assert_array_equal(order(seq_rows), order(pipe_rows))

        # The deterministic emulation in fact preserves the whole run: same
        # insertion order, same curve, same updates, same final weights.
        np.testing.assert_array_equal(seq_rows, pipe_rows)
        np.testing.assert_array_equal(
            sequential.curve.returns, pipelined.curve.returns
        )
        assert sequential.total_updates == pipelined.total_updates
        for name, value in sequential_agent.actor.parameters().items():
            np.testing.assert_array_equal(
                value, pipelined_agent.actor.parameters()[name]
            )

    def test_depth_one_introduces_bounded_staleness(self):
        """With updates feeding back into collection every round, the
        pipelined schedule acts on one-round-stale weights, so post-warmup
        trajectories legitimately diverge — while the work accounting
        (steps, updates, curve cadence) stays identical."""
        feedback = _config(sync_interval=1)
        sequential, _ = _run(replace(feedback, pipeline_depth=0))
        pipelined, _ = _run(replace(feedback, pipeline_depth=1))

        assert sequential.total_timesteps == pipelined.total_timesteps
        assert sequential.total_updates == pipelined.total_updates
        np.testing.assert_array_equal(
            sequential.curve.timesteps, pipelined.curve.timesteps
        )
        assert not np.array_equal(
            _buffer_rows(sequential.replay_buffer),
            _buffer_rows(pipelined.replay_buffer),
        )

    def test_deeper_pipelines_drain_fully(self):
        """Any depth drains its backlog: every collected step is updated on."""
        for depth in (2, 5):
            result, _ = _run(_config(pipeline_depth=depth))
            steps_per_round = 4
            expected_steps = -(-240 // steps_per_round) * steps_per_round
            assert result.total_timesteps == expected_steps
            assert result.total_updates == expected_steps - 48
            assert len(result.replay_buffer) == expected_steps

    def test_progress_callback_metrics_match_sequential_with_frozen_replicas(self):
        """The callback's episode count is snapshotted at the evaluated
        round's collection, so the fleet running ahead must not inflate it:
        with frozen replicas the pipelined metrics equal the sequential ones
        boundary for boundary."""

        def run(depth):
            seen = []
            env = HopperEnv(seed=5, max_episode_steps=40)
            config = _config(
                sync_interval=10**9, evaluation_interval=60, pipeline_depth=depth
            )
            train(
                env,
                _agent(env),
                config,
                eval_env=HopperEnv(seed=9, max_episode_steps=40),
                progress_callback=lambda step, metrics: seen.append((step, metrics)),
            )
            return seen

        sequential, pipelined = run(0), run(2)
        assert len(sequential) == len(pipelined) == 4
        for (seq_step, seq_metrics), (pipe_step, pipe_metrics) in zip(
            sequential, pipelined
        ):
            assert seq_step == pipe_step
            assert seq_metrics["episodes"] == pipe_metrics["episodes"]
            assert seq_metrics["average_return"] == pipe_metrics["average_return"]

    def test_pipelined_rejects_shared_evaluation_env(self):
        """A training env that must double as the evaluation env forces
        post-evaluation restarts, which the overlapped schedule cannot honor
        at the right point in the collection timeline — refuse loudly."""

        class PickyHopper(HopperEnv):
            def __init__(self, seed, max_episode_steps=40):
                super().__init__(seed=seed, max_episode_steps=max_episode_steps)

        env = PickyHopper(seed=5)
        config = _config(num_envs=2, num_workers=1, pipeline_depth=1)
        with pytest.raises(ValueError, match="eval_env"):
            train(env, _agent(env), config)  # no eval_env, not constructible
        # An explicit eval_env makes the same setup legal.
        result = train(
            env, _agent(env), config, eval_env=HopperEnv(seed=9, max_episode_steps=40)
        )
        assert result.pipeline_depth == 1

    def test_pipelined_run_is_reproducible(self):
        first, first_agent = _run(_config(pipeline_depth=1))
        second, second_agent = _run(_config(pipeline_depth=1))
        np.testing.assert_array_equal(first.curve.returns, second.curve.returns)
        assert first.episode_returns == second.episode_returns
        for name, value in first_agent.actor.parameters().items():
            np.testing.assert_array_equal(value, second_agent.actor.parameters()[name])


class TestPipelinedQat:
    @pytest.mark.pipelined
    def test_qat_switch_fires_in_pipelined_mode(self):
        env = HopperEnv(seed=5, max_episode_steps=40)
        agent = _agent(env, regime="fixar-dynamic")
        controller = QATController(
            agent.numerics, QATSchedule(16, quantization_delay=100)
        )
        config = _config(total_timesteps=240, pipeline_depth=1)
        result = train(
            env,
            agent,
            config,
            eval_env=HopperEnv(seed=9, max_episode_steps=40),
            qat_controller=controller,
        )
        assert result.qat_event is not None
        assert result.qat_event.timestep >= 100
        assert agent.numerics.half_mode
        # The controller's reported width agrees with the numerics in effect.
        assert controller.activation_bits_at(result.qat_event.timestep) == 16


class TestDeferredDrain:
    def test_step_sync_drain_false_defers_buffer_insertion(self):
        env = HopperEnv(seed=0, max_episode_steps=30)
        agent = _agent(env)
        immediate_buffer = ReplayBuffer(1_000, 11, 6, seed=0)
        deferred_buffer = ReplayBuffer(1_000, 11, 6, seed=0)

        def collector_for(buffer):
            workers = [
                CollectorWorker.from_agent(
                    w, agent, HopperEnv(seed=0, max_episode_steps=30), 2, seed=10
                )
                for w in range(2)
            ]
            collector = AsyncCollector(workers, buffer, source_agent=agent)
            for worker in workers:
                worker.engine.reset()
            return collector

        immediate = collector_for(immediate_buffer)
        deferred = collector_for(deferred_buffer)

        immediate.step_sync()
        rounds = deferred.step_sync(drain=False)
        assert len(deferred_buffer) == 0  # nothing drained yet
        assert len(immediate_buffer) == 4
        deferred.drain(rounds)
        assert len(deferred_buffer) == 4
        for attr in ("_states", "_actions", "_rewards", "_next_states", "_dones"):
            np.testing.assert_array_equal(
                getattr(immediate_buffer, attr), getattr(deferred_buffer, attr)
            )
