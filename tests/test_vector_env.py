"""Property tests for the vectorized environment.

The contract under test: for any benchmark, any number of environments N,
and any action sequence, ``VectorEnv`` produces *bitwise identical*
trajectories to N independently seeded scalar environments (the ``seed + i``
rule), including across auto-reset boundaries — the property that makes the
vectorized rollout engine a drop-in replacement for the scalar loop.

The tests are seeded-random property loops: each case draws fresh action
sequences (deliberately exceeding the action bounds so the clipping path is
exercised) and walks both executions step by step, comparing observations,
rewards, done flags, and terminal observations exactly.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.envs import (
    BENCHMARK_SUITE,
    HalfCheetahEnv,
    HopperEnv,
    VectorEnv,
    make,
)


def _assert_lockstep_matches_scalars(name, num_envs, steps, seed, max_episode_steps, vectorized):
    """Walk a VectorEnv and N scalar envs in parallel, comparing bitwise."""
    vec = VectorEnv.make(
        name, num_envs, seed=seed, max_episode_steps=max_episode_steps,
        vectorized=vectorized,
    )
    scalars = [
        make(name, seed=s, max_episode_steps=max_episode_steps)
        for s in VectorEnv.spawn_seeds(seed, num_envs)
    ]
    action_rng = np.random.default_rng(seed * 7919 + num_envs)

    vec_obs = vec.reset()
    scalar_obs = np.stack([env.reset() for env in scalars])
    np.testing.assert_array_equal(vec_obs, scalar_obs)

    resets = 0
    for _ in range(steps):
        actions = action_rng.uniform(-1.5, 1.5, size=(num_envs, vec.action_dim))
        result = vec.step(actions)
        for i, env in enumerate(scalars):
            scalar_result = env.step(actions[i])
            assert scalar_result.reward == result.rewards[i]
            assert bool(scalar_result.done) == bool(result.dones[i])
            if scalar_result.done:
                resets += 1
                np.testing.assert_array_equal(
                    result.infos[i]["final_observation"], scalar_result.observation
                )
                np.testing.assert_array_equal(result.observations[i], env.reset())
            else:
                np.testing.assert_array_equal(
                    result.observations[i], scalar_result.observation
                )
    return resets


class TestBitwiseEquivalence:
    @pytest.mark.parametrize("name", BENCHMARK_SUITE)
    @pytest.mark.parametrize("num_envs", [1, 2, 5])
    def test_matches_independently_seeded_scalar_envs(self, name, num_envs):
        resets = _assert_lockstep_matches_scalars(
            name, num_envs, steps=90, seed=13, max_episode_steps=40, vectorized=None
        )
        # The 40-step horizon guarantees auto-resets were crossed.
        assert resets >= num_envs

    def test_randomized_configurations(self):
        """Seeded-random property loop over N, seed, horizon, and benchmark."""
        case_rng = np.random.default_rng(2024)
        for _ in range(6):
            name = BENCHMARK_SUITE[case_rng.integers(len(BENCHMARK_SUITE))]
            num_envs = int(case_rng.integers(1, 9))
            seed = int(case_rng.integers(0, 10_000))
            horizon = int(case_rng.integers(7, 60))
            _assert_lockstep_matches_scalars(
                name, num_envs, steps=75, seed=seed,
                max_episode_steps=horizon, vectorized=None,
            )

    @pytest.mark.parametrize("num_envs", [1, 3])
    def test_loop_fallback_path_matches_too(self, num_envs):
        """The generic (non-vectorized) path obeys the same contract."""
        resets = _assert_lockstep_matches_scalars(
            "Hopper", num_envs, steps=70, seed=5, max_episode_steps=30,
            vectorized=False,
        )
        assert resets >= num_envs

    def test_fast_and_loop_paths_agree(self):
        """Both execution paths produce the same streams from the same seeds."""
        fast = VectorEnv.make("Swimmer", 4, seed=3, max_episode_steps=25)
        loop = VectorEnv.make("Swimmer", 4, seed=3, max_episode_steps=25, vectorized=False)
        assert fast.is_vectorized and not loop.is_vectorized
        rng = np.random.default_rng(0)
        np.testing.assert_array_equal(fast.reset(), loop.reset())
        for _ in range(60):
            actions = rng.uniform(-1.0, 1.0, size=(4, fast.action_dim))
            fast_result = fast.step(actions)
            loop_result = loop.step(actions)
            np.testing.assert_array_equal(fast_result.observations, loop_result.observations)
            np.testing.assert_array_equal(fast_result.rewards, loop_result.rewards)
            np.testing.assert_array_equal(fast_result.dones, loop_result.dones)


class TestVectorEnvApi:
    def test_fast_path_detection(self):
        homogeneous = VectorEnv.make("HalfCheetah", 3, seed=0)
        assert homogeneous.is_vectorized
        mixed = VectorEnv([HalfCheetahEnv(seed=0), HalfCheetahEnv(seed=1, max_episode_steps=10)])
        assert not mixed.is_vectorized  # different configs -> loop path

    def test_forcing_vectorized_on_heterogeneous_envs_fails(self):
        with pytest.raises(ValueError, match="homogeneous"):
            VectorEnv(
                [HalfCheetahEnv(seed=0), HalfCheetahEnv(seed=1, max_episode_steps=10)],
                vectorized=True,
            )

    def test_mismatched_spaces_rejected(self):
        with pytest.raises(ValueError, match="spaces"):
            VectorEnv([HalfCheetahEnv(seed=0), HopperEnv(seed=0)])

    def test_step_before_reset_raises(self):
        vec = VectorEnv.make("Hopper", 2, seed=0)
        with pytest.raises(RuntimeError, match="reset"):
            vec.step(np.zeros((2, vec.action_dim)))

    def test_action_shape_validated(self):
        vec = VectorEnv.make("Hopper", 2, seed=0)
        vec.reset()
        with pytest.raises(ValueError, match="shape"):
            vec.step(np.zeros((3, vec.action_dim)))

    def test_spawn_seeds(self):
        assert VectorEnv.spawn_seeds(10, 3) == [10, 11, 12]
        assert VectorEnv.spawn_seeds(None, 2) == [None, None]

    def test_from_template_replicates_custom_horizon(self):
        template = HopperEnv(seed=4, max_episode_steps=17)
        vec = VectorEnv.from_template(template, 3, seed=4)
        assert vec.num_envs == 3
        assert all(env.max_episode_steps == 17 for env in vec.envs)
        assert vec.is_vectorized

    def test_reseed_restarts_streams(self):
        vec = VectorEnv.make("Swimmer", 2, seed=9, max_episode_steps=20)
        first = vec.reset().copy()
        vec.step(np.zeros((2, vec.action_dim)))
        vec.seed(9)
        np.testing.assert_array_equal(vec.reset(), first)

    def test_make_requires_positive_count(self):
        with pytest.raises(ValueError, match="num_envs"):
            VectorEnv.make("Hopper", 0)

    def test_step_result_unpacks(self):
        vec = VectorEnv.make("Hopper", 2, seed=0, max_episode_steps=10)
        vec.reset()
        obs, rewards, dones, infos = vec.step(np.zeros((2, vec.action_dim)))
        assert obs.shape == (2, vec.state_dim)
        assert rewards.shape == (2,)
        assert dones.shape == (2,)
        assert len(infos) == 2
