"""Tests for the invariant linter (``repro.analysis``).

Every shipped rule gets two fixtures — one that fires and one that stays
quiet — plus pragma-suppression, JSON round-trip, registry, and CLI
exit-code coverage, and two acceptance probes against the *real* tree:
adding ``np.dot`` to an env kernel must fail lint, and deleting any one
oracle method from ``AcceleratorPool`` must fail lint.

Fixture files are written under ``tmp_path`` at paths that mirror the repo
layout (``src/repro/envs/...``), because rules scope themselves by posix
path fragments.  Pragma text inside fixtures is built by string
concatenation so the linter's lexical pragma scanner can never match this
test file's own source.
"""

from __future__ import annotations

import ast
import json
import textwrap
from pathlib import Path

import pytest

from repro.analysis import (
    PRAGMA_RULE_ID,
    RULES,
    AnalysisReport,
    BatchInvariantKernels,
    ConfigCliParity,
    DeterministicOracles,
    Finding,
    HotPathDiscipline,
    LockDiscipline,
    OracleSurfaceParity,
    PrecisionPolicyParity,
    Rule,
    SeedingScheme,
    analyze,
    register_rule,
    resolve_rules,
    scan_pragmas,
)
from repro.analysis.__main__ import main as lint_main

pytestmark = pytest.mark.lint

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Pragma prefix, concatenated so the pragma regex never matches this file.
ALLOW = "# repro-lint" + ": allow"

#: Hot-path marker, concatenated so the rule's lexical scanner never
#: mistakes this test file's own source for an annotated hot function.
HOT = "# repro-lint" + ": hot"


def _write(root: Path, rel: str, source: str) -> Path:
    path = root / rel
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(source))
    return path


def _lint(root: Path, rule: Rule) -> AnalysisReport:
    return analyze([str(root)], rules=[rule])


# --------------------------------------------------------------------- #
# Rule 1: batch-invariant-kernels
# --------------------------------------------------------------------- #
class TestBatchInvariantKernels:
    def test_fires_on_blas_calls_and_the_matmul_operator(self, tmp_path):
        _write(
            tmp_path,
            "src/repro/envs/kernel.py",
            """\
            import numpy as np

            def step(state, action, weights):
                q = np.dot(state, weights)
                torque = np.einsum("ij,j->i", weights, action)
                return q + weights @ action
            """,
        )
        report = _lint(tmp_path, BatchInvariantKernels())
        assert [f.rule for f in report.findings] == ["batch-invariant-kernels"] * 3
        assert {f.line for f in report.findings} == {4, 5, 6}
        assert all(f.severity == "error" for f in report.findings)
        assert report.exit_code() == 1

    def test_quiet_on_elementwise_kernels(self, tmp_path):
        _write(
            tmp_path,
            "src/repro/envs/kernel.py",
            """\
            import numpy as np

            def step(state, action):
                return np.sum(state * action, axis=-1)
            """,
        )
        assert _lint(tmp_path, BatchInvariantKernels()).findings == []

    def test_quiet_outside_the_envs_layer(self, tmp_path):
        _write(
            tmp_path,
            "src/repro/nn/ops.py",
            """\
            import numpy as np

            def forward(x, w):
                return np.dot(x, w)
            """,
        )
        assert _lint(tmp_path, BatchInvariantKernels()).findings == []


# --------------------------------------------------------------------- #
# Rule 2: deterministic-oracles
# --------------------------------------------------------------------- #
class TestDeterministicOracles:
    FIRING = """\
    import random
    import time

    import numpy as np

    def price():
        start = time.perf_counter()
        jitter = random.random()
        noise = np.random.rand(3)
        rng = np.random.default_rng()
        return start, jitter, noise, rng
    """

    def test_fires_on_wall_clock_and_global_randomness(self, tmp_path):
        _write(tmp_path, "src/repro/platform/timing.py", self.FIRING)
        report = _lint(tmp_path, DeterministicOracles())
        assert [f.rule for f in report.findings] == ["deterministic-oracles"] * 4
        assert {f.line for f in report.findings} == {7, 8, 9, 10}

    def test_fires_in_the_accelerator_layer_too(self, tmp_path):
        _write(
            tmp_path,
            "src/repro/accelerator/sim.py",
            """\
            import time

            def tick():
                return time.monotonic()
            """,
        )
        report = _lint(tmp_path, DeterministicOracles())
        assert len(report.findings) == 1
        assert "monotonic" in report.findings[0].message

    def test_fires_in_the_serving_layer_too(self, tmp_path):
        _write(
            tmp_path,
            "src/repro/serving/batcher.py",
            """\
            import time

            def flush_clock():
                return time.perf_counter()
            """,
        )
        report = _lint(tmp_path, DeterministicOracles())
        assert len(report.findings) == 1
        assert "perf_counter" in report.findings[0].message

    def test_quiet_on_seeded_generators(self, tmp_path):
        _write(
            tmp_path,
            "src/repro/platform/timing.py",
            """\
            import numpy as np

            def price(seed):
                rng = np.random.default_rng(seed)
                return rng.normal()
            """,
        )
        assert _lint(tmp_path, DeterministicOracles()).findings == []

    def test_quiet_outside_the_oracle_layers(self, tmp_path):
        _write(tmp_path, "src/repro/rl/loop.py", self.FIRING)
        assert _lint(tmp_path, DeterministicOracles()).findings == []


# --------------------------------------------------------------------- #
# Rule 3: lock-discipline
# --------------------------------------------------------------------- #
class TestLockDiscipline:
    def test_fires_on_unlocked_buffer_mutations(self, tmp_path):
        _write(
            tmp_path,
            "src/repro/rl/replay_buffer.py",
            """\
            import threading

            class ReplayBuffer:
                def __init__(self, capacity):
                    self._lock = threading.Lock()
                    self._size = 0
                    self._states = [None] * capacity

                def add(self, index, item):
                    self._states[index] = item
                    self._size += 1

                def clear(self):
                    with self._lock:
                        self._size = 0
            """,
        )
        report = _lint(tmp_path, LockDiscipline())
        assert [f.rule for f in report.findings] == ["lock-discipline"] * 2
        assert {f.line for f in report.findings} == {10, 11}
        assert "_states" in report.findings[0].message

    def test_quiet_when_mutations_hold_the_lock(self, tmp_path):
        _write(
            tmp_path,
            "src/repro/rl/replay_buffer.py",
            """\
            import threading

            class ReplayBuffer:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._size = 0

                def add(self, item):
                    with self._lock:
                        if item is not None:
                            self._size += 1

                def size(self):
                    with self._lock:
                        return self._size
            """,
        )
        assert _lint(tmp_path, LockDiscipline()).findings == []

    def test_fires_on_unlocked_request_queue_mutations(self, tmp_path):
        _write(
            tmp_path,
            "src/repro/serving/request_queue.py",
            """\
            import threading

            class RequestQueue:
                def __init__(self):
                    self._lock = threading.RLock()
                    self._requests = []

                def enqueue(self, request):
                    self._requests.append(request)
                    self._enqueued = len(self._requests)
            """,
        )
        report = _lint(tmp_path, LockDiscipline())
        assert [f.rule for f in report.findings] == ["lock-discipline"]
        assert "_enqueued" in report.findings[0].message
        assert "RequestQueue" in report.findings[0].message

    def test_quiet_when_request_queue_holds_the_lock(self, tmp_path):
        _write(
            tmp_path,
            "src/repro/serving/request_queue.py",
            """\
            import threading

            class RequestQueue:
                def __init__(self):
                    self._lock = threading.RLock()
                    self._enqueued = 0

                def enqueue(self, request):
                    with self._lock:
                        self._enqueued += 1
            """,
        )
        assert _lint(tmp_path, LockDiscipline()).findings == []

    def test_quiet_on_other_classes(self, tmp_path):
        _write(
            tmp_path,
            "src/repro/rl/ring.py",
            """\
            class RingBuffer:
                def add(self, item):
                    self._size += 1
            """,
        )
        assert _lint(tmp_path, LockDiscipline()).findings == []


# --------------------------------------------------------------------- #
# Rule 4: seeding-scheme
# --------------------------------------------------------------------- #
class TestSeedingScheme:
    def test_fires_on_inline_worker_seed_arithmetic(self, tmp_path):
        _write(
            tmp_path,
            "examples/run.py",
            """\
            def build(args):
                return args.seed + args.worker_id * args.num_envs
            """,
        )
        report = _lint(tmp_path, SeedingScheme())
        assert [f.rule for f in report.findings] == ["seeding-scheme"]
        assert report.findings[0].severity == "warning"

    def test_warnings_fail_only_under_strict(self, tmp_path):
        _write(
            tmp_path,
            "examples/run.py",
            "value = seed + num_workers * num_envs\n",
        )
        report = _lint(tmp_path, SeedingScheme())
        assert len(report.findings) == 1
        assert report.exit_code(strict=False) == 0
        assert report.exit_code(strict=True) == 1

    def test_quiet_inside_the_blessed_helper(self, tmp_path):
        _write(
            tmp_path,
            "src/repro/rl/workers.py",
            """\
            def worker_env_seed(seed, worker_id, num_envs):
                return seed + worker_id * num_envs
            """,
        )
        assert _lint(tmp_path, SeedingScheme()).findings == []

    def test_quiet_on_plain_seed_offsets(self, tmp_path):
        _write(tmp_path, "examples/run.py", "eval_seed = seed + 1\n")
        assert _lint(tmp_path, SeedingScheme()).findings == []


# --------------------------------------------------------------------- #
# Rule 5: oracle-surface-parity
# --------------------------------------------------------------------- #
PLATFORM_FIXTURE = """\
class FixarPlatform:
    def infer_batch(self, batch_size):
        return batch_size

    def fleet_collection_round_seconds(self, fleet):
        return 0.0

    def pipelined_round_seconds(self, num_envs):
        return 0.0

    def helper(self):
        return None

    def _private_round_seconds(self):
        return None
"""


class TestOracleSurfaceParity:
    def test_fires_per_missing_oracle_method(self, tmp_path):
        _write(tmp_path, "src/repro/platform/fixar_platform.py", PLATFORM_FIXTURE)
        _write(
            tmp_path,
            "src/repro/platform/pool.py",
            """\
            class AcceleratorPool:
                def infer_batch(self, batch_size):
                    return batch_size
            """,
        )
        report = _lint(tmp_path, OracleSurfaceParity())
        assert [f.rule for f in report.findings] == ["oracle-surface-parity"] * 2
        messages = " ".join(f.message for f in report.findings)
        assert "fleet_collection_round_seconds" in messages
        assert "pipelined_round_seconds" in messages
        # Non-oracle and private methods are not part of the surface.
        assert "helper" not in messages
        assert "_private_round_seconds" not in messages
        # Findings anchor at the pool class definition.
        assert all(f.file.endswith("pool.py") and f.line == 1 for f in report.findings)

    def test_quiet_when_the_surface_matches(self, tmp_path):
        _write(tmp_path, "src/repro/platform/fixar_platform.py", PLATFORM_FIXTURE)
        _write(
            tmp_path,
            "src/repro/platform/pool.py",
            """\
            class AcceleratorPool:
                def infer_batch(self, batch_size):
                    return batch_size

                def fleet_collection_round_seconds(self, fleet):
                    return 0.0

                def pipelined_round_seconds(self, num_envs):
                    return 0.0
            """,
        )
        assert _lint(tmp_path, OracleSurfaceParity()).findings == []

    def test_quiet_when_either_class_is_outside_the_scan(self, tmp_path):
        _write(
            tmp_path,
            "src/repro/platform/pool.py",
            "class AcceleratorPool:\n    pass\n",
        )
        assert _lint(tmp_path, OracleSurfaceParity()).findings == []


# --------------------------------------------------------------------- #
# Rule 6: config-cli-parity
# --------------------------------------------------------------------- #
CLI_FIXTURE = """\
import argparse

CONFIG_FLAG_ALIASES = {"total_timesteps": "--timesteps"}
CONFIG_FIELDS_WITHOUT_FLAGS = {"exploration_noise": "paper constant"}

def build_parser():
    parser = argparse.ArgumentParser()
    parser.add_argument("--timesteps", type=int)
    parser.add_argument("--batch-size", type=int)
    return parser
"""

SERVING_CLI_FIXTURE = """\
import argparse

SERVING_FLAG_ALIASES = {"num_requests": "--requests", "slo_seconds": "--slo-ms"}
SERVING_FIELDS_WITHOUT_FLAGS = {"timeout_seconds": "derived from --slo-ms"}

def build_serve_parser():
    parser = argparse.ArgumentParser()
    parser.add_argument("--requests", type=int)
    parser.add_argument("--qps", type=float)
    parser.add_argument("--slo-ms", type=float)
    parser.add_argument("--batch-cap", type=int)
    return parser
"""


class TestConfigCliParity:
    def _config(self, extra_field: str = "") -> str:
        return textwrap.dedent(
            """\
            from dataclasses import dataclass

            @dataclass
            class TrainingConfig:
                total_timesteps: int = 10_000
                batch_size: int = 64
                exploration_noise: float = 0.1
            """
        ) + (f"    {extra_field}\n" if extra_field else "")

    def test_quiet_when_every_field_is_covered(self, tmp_path):
        _write(tmp_path, "src/repro/rl/training.py", self._config())
        _write(tmp_path, "src/repro/cli.py", CLI_FIXTURE)
        assert _lint(tmp_path, ConfigCliParity()).findings == []

    def test_fires_on_an_unreachable_config_field(self, tmp_path):
        _write(tmp_path, "src/repro/rl/training.py", self._config("seed: int = 1"))
        _write(tmp_path, "src/repro/cli.py", CLI_FIXTURE)
        report = _lint(tmp_path, ConfigCliParity())
        assert [f.rule for f in report.findings] == ["config-cli-parity"]
        finding = report.findings[0]
        assert finding.file.endswith("training.py")
        assert "--seed" in finding.message

    def test_fires_on_stale_exclusion_entries(self, tmp_path):
        _write(tmp_path, "src/repro/rl/training.py", self._config())
        stale = CLI_FIXTURE.replace(
            '{"exploration_noise": "paper constant"}',
            '{"exploration_noise": "paper constant", "ghost": "gone"}',
        )
        _write(tmp_path, "src/repro/cli.py", stale)
        report = _lint(tmp_path, ConfigCliParity())
        assert len(report.findings) == 1
        assert "stale exclusion" in report.findings[0].message
        assert report.findings[0].file.endswith("cli.py")

    def _serving_config(self, extra_field: str = "") -> str:
        return textwrap.dedent(
            """\
            from dataclasses import dataclass

            @dataclass
            class ServingConfig:
                num_requests: int = 512
                qps: float = 2000.0
                slo_seconds: float = 0.02
                timeout_seconds: float = None
            """
        ) + (f"    {extra_field}\n" if extra_field else "")

    def test_quiet_when_every_serving_field_is_covered(self, tmp_path):
        _write(tmp_path, "src/repro/serving/server.py", self._serving_config())
        _write(tmp_path, "src/repro/cli.py", SERVING_CLI_FIXTURE)
        assert _lint(tmp_path, ConfigCliParity()).findings == []

    def test_fires_on_an_unreachable_serving_field(self, tmp_path):
        _write(
            tmp_path,
            "src/repro/serving/server.py",
            self._serving_config("placement: str = 'colocated'"),
        )
        _write(tmp_path, "src/repro/cli.py", SERVING_CLI_FIXTURE)
        report = _lint(tmp_path, ConfigCliParity())
        assert [f.rule for f in report.findings] == ["config-cli-parity"]
        finding = report.findings[0]
        assert finding.file.endswith("server.py")
        assert "--placement" in finding.message

    def test_both_specs_checked_in_one_scan(self, tmp_path):
        _write(
            tmp_path,
            "src/repro/rl/training.py",
            self._config("train_only: int = 1"),
        )
        _write(
            tmp_path,
            "src/repro/serving/server.py",
            self._serving_config("serve_only: int = 2"),
        )
        combined = CLI_FIXTURE + SERVING_CLI_FIXTURE.split("import argparse\n")[1]
        _write(tmp_path, "src/repro/cli.py", combined)
        report = _lint(tmp_path, ConfigCliParity())
        messages = sorted(f.message for f in report.findings)
        assert len(messages) == 2
        assert any("--train-only" in message for message in messages)
        assert any("--serve-only" in message for message in messages)


# --------------------------------------------------------------------- #
# Rule 7: precision-policy-parity
# --------------------------------------------------------------------- #
PRECISION_FIXTURE = """\
PRECISION_POLICIES = {}

def register_precision_policy(cls):
    PRECISION_POLICIES[cls.name] = cls
    return cls

class PrecisionPolicy:
    name = ""

@register_precision_policy
class GlobalSwitchPolicy(PrecisionPolicy):
    name = "global-switch"
"""


class TestPrecisionPolicyParity:
    def test_quiet_when_every_subclass_is_registered(self, tmp_path):
        _write(tmp_path, "src/repro/rl/precision.py", PRECISION_FIXTURE)
        assert _lint(tmp_path, PrecisionPolicyParity()).findings == []

    def test_fires_on_an_unregistered_subclass(self, tmp_path):
        _write(
            tmp_path,
            "src/repro/rl/precision.py",
            PRECISION_FIXTURE
            + textwrap.dedent(
                """\

                class RogueSchedulePolicy(PrecisionPolicy):
                    name = "rogue"
                """
            ),
        )
        report = _lint(tmp_path, PrecisionPolicyParity())
        assert [f.rule for f in report.findings] == ["precision-policy-parity"]
        finding = report.findings[0]
        assert "RogueSchedulePolicy" in finding.message
        assert "register_precision_policy" in finding.message

    def test_fires_on_a_transitive_subclass_in_a_sibling_module(self, tmp_path):
        _write(tmp_path, "src/repro/rl/precision.py", PRECISION_FIXTURE)
        _write(
            tmp_path,
            "src/repro/rl/extras.py",
            """\
            from .precision import GlobalSwitchPolicy

            class DerivedPolicy(GlobalSwitchPolicy):
                name = "derived"
            """,
        )
        report = _lint(tmp_path, PrecisionPolicyParity())
        assert [f.rule for f in report.findings] == ["precision-policy-parity"]
        assert report.findings[0].file.endswith("extras.py")

    def test_private_helpers_and_out_of_scope_classes_are_ignored(self, tmp_path):
        _write(
            tmp_path,
            "src/repro/rl/precision.py",
            PRECISION_FIXTURE
            + textwrap.dedent(
                """\

                class _TestOnlyPolicy(PrecisionPolicy):
                    name = "test-only"
                """
            ),
        )
        _write(
            tmp_path,
            "src/repro/platform/shim.py",
            """\
            class PrecisionPolicy:
                pass

            class UnrelatedPolicy(PrecisionPolicy):
                pass
            """,
        )
        assert _lint(tmp_path, PrecisionPolicyParity()).findings == []


# --------------------------------------------------------------------- #
# Rule 8: hot-path-discipline
# --------------------------------------------------------------------- #
class TestHotPathDiscipline:
    def test_fires_on_arange_dicts_and_attribute_chains(self, tmp_path):
        _write(
            tmp_path,
            "src/repro/rl/hot.py",
            """\
            import numpy as np

            class Engine:
                MARKER
                def step(self, n):
                    rows = np.arange(n)
                    info = {"rows": rows}
                    dim = self.env.action_space.dim
                    return rows, info, dim
            """.replace("MARKER", HOT),
        )
        report = _lint(tmp_path, HotPathDiscipline())
        assert [f.rule for f in report.findings] == ["hot-path-discipline"] * 3
        assert all(f.severity == "warning" for f in report.findings)
        messages = " | ".join(f.message for f in report.findings)
        assert "np.arange" in messages
        assert "dict construction" in messages
        assert "self.env.action_space.dim" in messages
        # Warnings gate CI only under --strict.
        assert report.exit_code() == 0
        assert report.exit_code(strict=True) == 1

    def test_marker_on_the_def_line_also_counts(self, tmp_path):
        _write(
            tmp_path,
            "src/repro/envs/hot.py",
            """\
            import numpy as np

            def observe(n):  MARKER
                return np.arange(n)
            """.replace("MARKER", HOT),
        )
        report = _lint(tmp_path, HotPathDiscipline())
        assert [f.rule for f in report.findings] == ["hot-path-discipline"]

    def test_outermost_chain_reported_once_and_locals_are_fine(self, tmp_path):
        _write(
            tmp_path,
            "src/repro/rl/hot.py",
            """\
            class Engine:
                MARKER
                def step(self):
                    # A three-deep chain is one finding, not two, and
                    # two-segment self.attr loads plus chains rooted at
                    # locals are the blessed spellings.
                    deep = self.env.space.dim
                    env = self.env
                    ok = env.space.dim
                    return deep + ok + self.total
            """.replace("MARKER", HOT),
        )
        report = _lint(tmp_path, HotPathDiscipline())
        assert len(report.findings) == 1
        assert "self.env.space.dim" in report.findings[0].message

    def test_quiet_without_the_marker(self, tmp_path):
        _write(
            tmp_path,
            "src/repro/rl/cold.py",
            """\
            import numpy as np

            class Engine:
                def finish(self, n):
                    final = {"rows": np.arange(n)}
                    return final, self.env.space.dim
            """,
        )
        assert _lint(tmp_path, HotPathDiscipline()).findings == []

    def test_quiet_on_a_disciplined_hot_function(self, tmp_path):
        _write(
            tmp_path,
            "src/repro/rl/hot.py",
            """\
            class Engine:
                def __init__(self, n):
                    import numpy as np
                    self._rows = np.arange(n)

                MARKER
                def step(self, dones):
                    rows = self._rows
                    prof = self.profiler
                    return rows[dones], prof
            """.replace("MARKER", HOT),
        )
        assert _lint(tmp_path, HotPathDiscipline()).findings == []


# --------------------------------------------------------------------- #
# Pragma suppression
# --------------------------------------------------------------------- #
class TestPragmas:
    def test_justified_pragma_suppresses_the_line_below(self, tmp_path):
        _write(
            tmp_path,
            "src/repro/platform/cal.py",
            "import time\n\n"
            + ALLOW
            + "[deterministic-oracles]: fixture measures a real clock on purpose\n"
            "start = time.perf_counter()\n",
        )
        report = _lint(tmp_path, DeterministicOracles())
        assert report.findings == []
        assert [f.rule for f in report.suppressed] == ["deterministic-oracles"]
        assert report.exit_code(strict=True) == 0

    def test_justified_inline_pragma_suppresses_its_own_line(self, tmp_path):
        _write(
            tmp_path,
            "src/repro/platform/cal.py",
            "import time\n\nstart = time.perf_counter()  "
            + ALLOW
            + "[deterministic-oracles]: inline fixture exception\n",
        )
        report = _lint(tmp_path, DeterministicOracles())
        assert report.findings == []
        assert len(report.suppressed) == 1

    def test_unjustified_pragma_suppresses_nothing_and_is_itself_a_finding(
        self, tmp_path
    ):
        _write(
            tmp_path,
            "src/repro/platform/cal.py",
            "import time\n\n"
            + ALLOW
            + "[deterministic-oracles]\n"
            "start = time.perf_counter()\n",
        )
        report = _lint(tmp_path, DeterministicOracles())
        assert report.suppressed == []
        assert sorted(f.rule for f in report.findings) == [
            "deterministic-oracles",
            PRAGMA_RULE_ID,
        ]
        meta = next(f for f in report.findings if f.rule == PRAGMA_RULE_ID)
        assert meta.severity == "error"
        assert "justification" in meta.message

    def test_pragma_only_covers_its_own_rule(self, tmp_path):
        _write(
            tmp_path,
            "src/repro/platform/cal.py",
            "import time\n\n"
            + ALLOW
            + "[batch-invariant-kernels]: wrong rule id\n"
            "start = time.perf_counter()\n",
        )
        report = _lint(tmp_path, DeterministicOracles())
        assert [f.rule for f in report.findings] == ["deterministic-oracles"]
        assert report.suppressed == []

    def test_scan_pragmas_parses_both_separators(self):
        source = (
            ALLOW + "[rule-a]: colon justification\n"
            + ALLOW + "[rule-b] -- dash justification\n"
        )
        pragmas = scan_pragmas(source)
        assert [(p.rule, p.justification, p.valid) for p in pragmas] == [
            ("rule-a", "colon justification", True),
            ("rule-b", "dash justification", True),
        ]


# --------------------------------------------------------------------- #
# Findings and JSON round-trip
# --------------------------------------------------------------------- #
class TestFindingsAndJson:
    def test_finding_round_trips_through_dict_and_json(self):
        finding = Finding(
            file="src/repro/envs/kernel.py",
            line=7,
            rule="batch-invariant-kernels",
            severity="error",
            message="np.dot() in an env kernel",
        )
        assert Finding.from_dict(json.loads(json.dumps(finding.to_dict()))) == finding
        assert finding.render() == (
            "src/repro/envs/kernel.py:7: error[batch-invariant-kernels] "
            "np.dot() in an env kernel"
        )

    def test_finding_rejects_bad_severity_and_line(self):
        with pytest.raises(ValueError, match="severity"):
            Finding(file="x.py", line=1, rule="r", severity="fatal", message="m")
        with pytest.raises(ValueError, match="line"):
            Finding(file="x.py", line=0, rule="r", severity="error", message="m")

    def test_report_round_trips_through_json(self, tmp_path):
        _write(
            tmp_path,
            "src/repro/envs/kernel.py",
            "import numpy as np\n\nq = np.dot([1.0], [1.0])\n",
        )
        report = _lint(tmp_path, BatchInvariantKernels())
        payload = json.loads(json.dumps(report.to_dict()))
        rebuilt = [Finding.from_dict(entry) for entry in payload["findings"]]
        assert rebuilt == report.findings
        assert payload["rules"] == ["batch-invariant-kernels"]
        assert payload["files"] == report.files

    def test_cli_json_output_is_the_report_object(self, tmp_path, capsys):
        _write(
            tmp_path,
            "src/repro/envs/kernel.py",
            "import numpy as np\n\nq = np.dot([1.0], [1.0])\n",
        )
        code = lint_main(["--format", "json", str(tmp_path)])
        payload = json.loads(capsys.readouterr().out)
        assert code == 1
        assert [f["rule"] for f in payload["findings"]] == ["batch-invariant-kernels"]
        assert payload["findings"][0]["severity"] == "error"


# --------------------------------------------------------------------- #
# Rule registry
# --------------------------------------------------------------------- #
class TestRegistry:
    def test_all_eight_rules_are_registered(self):
        assert sorted(RULES) == [
            "batch-invariant-kernels",
            "config-cli-parity",
            "deterministic-oracles",
            "hot-path-discipline",
            "lock-discipline",
            "oracle-surface-parity",
            "precision-policy-parity",
            "seeding-scheme",
        ]

    def test_resolve_rules_rejects_unknown_names(self):
        with pytest.raises(ValueError, match="batch-invariant-kernels"):
            resolve_rules(["no-such-rule"])

    def test_resolve_rules_selects_a_subset(self):
        rules = resolve_rules(["lock-discipline"])
        assert [r.rule_id for r in rules] == ["lock-discipline"]

    def test_register_rule_rejects_duplicates_and_empty_ids(self):
        class Duplicate(Rule):
            rule_id = "lock-discipline"

        class Anonymous(Rule):
            rule_id = ""

        with pytest.raises(ValueError, match="duplicate"):
            register_rule(Duplicate)
        with pytest.raises(ValueError, match="non-empty"):
            register_rule(Anonymous)
        # The failed registrations left the registry untouched.
        assert RULES["lock-discipline"] is LockDiscipline


# --------------------------------------------------------------------- #
# CLI exit codes
# --------------------------------------------------------------------- #
class TestCliExitCodes:
    def test_text_output_renders_findings_and_a_summary(self, tmp_path, capsys):
        _write(
            tmp_path,
            "src/repro/envs/kernel.py",
            "import numpy as np\n\nq = np.dot([1.0], [1.0])\n",
        )
        code = lint_main([str(tmp_path)])
        out = capsys.readouterr().out
        assert code == 1
        assert "error[batch-invariant-kernels]" in out
        assert "1 finding" in out

    def test_clean_tree_exits_zero(self, tmp_path, capsys):
        _write(tmp_path, "src/repro/envs/kernel.py", "x = 1\n")
        assert lint_main([str(tmp_path)]) == 0
        assert "0 findings" in capsys.readouterr().out

    def test_missing_path_is_a_usage_error(self, tmp_path, capsys):
        assert lint_main([str(tmp_path / "no-such-dir")]) == 2
        assert "no such file" in capsys.readouterr().err

    def test_unknown_rule_is_a_usage_error(self, tmp_path, capsys):
        assert lint_main(["--rule", "bogus", str(tmp_path)]) == 2
        assert "unknown rule" in capsys.readouterr().err

    def test_list_rules_prints_every_rule_id(self, capsys):
        assert lint_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in RULES:
            assert rule_id in out


# --------------------------------------------------------------------- #
# The repo tree itself is clean (the CI gate, pinned as a test)
# --------------------------------------------------------------------- #
class TestRepoTreeIsClean:
    PATHS = [str(REPO_ROOT / part) for part in ("src", "benchmarks", "examples")]

    def test_analyze_finds_no_unsuppressed_violations(self):
        report = analyze(self.PATHS)
        assert report.findings == []
        # The known, reviewed exceptions (wall-clock calibration/co-sim
        # measurements) are suppressed by justified pragmas, not silent.
        assert report.suppressed
        assert all(f.rule == "deterministic-oracles" for f in report.suppressed)

    def test_strict_cli_run_exits_zero(self, capsys):
        assert lint_main(["--strict", *self.PATHS]) == 0
        out = capsys.readouterr().out
        assert "0 findings" in out
        assert "suppressed" in out


# --------------------------------------------------------------------- #
# Acceptance probes against the real sources
# --------------------------------------------------------------------- #
def _class_def(source: str, class_name: str) -> ast.ClassDef:
    for node in ast.walk(ast.parse(source)):
        if isinstance(node, ast.ClassDef) and node.name == class_name:
            return node
    raise AssertionError(f"class {class_name} not found")


def _without_method(source: str, class_name: str, method: str) -> str:
    """The source with one method of the class blanked out, line-preserving."""
    class_node = _class_def(source, class_name)
    for item in class_node.body:
        if isinstance(item, ast.FunctionDef) and item.name == method:
            lines = source.splitlines(keepends=True)
            start = min(
                [item.lineno] + [d.lineno for d in item.decorator_list]
            )
            for index in range(start - 1, item.end_lineno):
                lines[index] = "\n"
            return "".join(lines)
    raise AssertionError(f"{class_name}.{method} not found")


class TestRealTreeAcceptance:
    def test_adding_np_dot_to_an_env_kernel_fails_lint(self, tmp_path):
        target = tmp_path / "src" / "repro" / "envs"
        target.mkdir(parents=True)
        for source in (REPO_ROOT / "src" / "repro" / "envs").glob("*.py"):
            (target / source.name).write_text(source.read_text())
        assert _lint(tmp_path, BatchInvariantKernels()).findings == []

        probe = sorted(target.glob("*.py"))[-1]
        probe.write_text(
            probe.read_text() + "\n\ndef _lint_probe(a, b):\n    return np.dot(a, b)\n"
        )
        report = _lint(tmp_path, BatchInvariantKernels())
        assert [f.rule for f in report.findings] == ["batch-invariant-kernels"]
        assert report.exit_code() == 1

    def test_deleting_any_pool_oracle_method_fails_lint(self, tmp_path):
        platform_dir = REPO_ROOT / "src" / "repro" / "platform"
        platform_source = (platform_dir / "fixar_platform.py").read_text()
        pool_source = (platform_dir / "pool.py").read_text()
        target = tmp_path / "src" / "repro" / "platform"
        target.mkdir(parents=True)
        (target / "fixar_platform.py").write_text(platform_source)

        surface = OracleSurfaceParity._oracle_surface(
            _class_def(platform_source, "FixarPlatform")
        )
        assert surface, "FixarPlatform lost its oracle surface"
        for method in sorted(surface):
            (target / "pool.py").write_text(
                _without_method(pool_source, "AcceleratorPool", method)
            )
            report = _lint(tmp_path, OracleSurfaceParity())
            assert any(
                f"{method}()" in finding.message for finding in report.findings
            ), f"deleting AcceleratorPool.{method} did not fail lint"
            assert report.exit_code() == 1

        # Restore the real pool: parity holds again.
        (target / "pool.py").write_text(pool_source)
        assert _lint(tmp_path, OracleSurfaceParity()).findings == []
