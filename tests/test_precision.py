"""Unit and equivalence tests for the pluggable precision-policy subsystem.

The load-bearing pin is :class:`TestGlobalSwitchEquivalence`: training under
``TrainingConfig(precision="global-switch")`` must be ``==``-exact with the
pre-refactor path that passes a bare :class:`~repro.rl.qat.QATController` —
the policy seam is a refactor, not a behavior change.  The pricing tests pin
the other end of the pipe: a per-layer precision state flows through
``FixarPlatform.with_precision_state`` and an
:class:`~repro.platform.AcceleratorPool` and changes the modelled
``fleet_training_steps_per_second``.
"""

import numpy as np
import pytest

from repro.envs import HalfCheetahEnv
from repro.nn import DynamicFixedPointNumerics, make_numerics
from repro.platform import AcceleratorPool, FixarPlatform, WorkloadSpec
from repro.rl import (
    PRECISION_POLICIES,
    DDPGAgent,
    DDPGConfig,
    GlobalSwitchPolicy,
    PerLayerSchedulePolicy,
    PrecisionPlan,
    PrecisionPolicy,
    QATController,
    QATSchedule,
    RangeDrivenPolicy,
    TrainingConfig,
    register_precision_policy,
    resolve_precision,
    train,
)
from repro.rl.scheduler import ThroughputWeightedPolicy


def _numerics(num_bits=16):
    return DynamicFixedPointNumerics(num_bits=num_bits)


def _observe(numerics, layer, low=-2.0, high=3.0):
    numerics.observe_activation(np.array([low, high]), layer=layer)


def _small_agent(rng, env, regime="fixar-dynamic"):
    return DDPGAgent(
        env.state_dim,
        env.action_dim,
        DDPGConfig(hidden_sizes=(24, 16)),
        numerics=make_numerics(regime),
        rng=rng,
    )


def _config(steps=300, **overrides):
    base = dict(
        total_timesteps=steps,
        warmup_timesteps=50,
        batch_size=16,
        buffer_capacity=5000,
        evaluation_interval=steps // 2,
        evaluation_episodes=2,
        exploration_noise=0.2,
        seed=0,
    )
    base.update(overrides)
    return TrainingConfig(**base)


# --------------------------------------------------------------------- #
# Registry
# --------------------------------------------------------------------- #
class TestRegistry:
    def test_shipped_policies_are_registered(self):
        assert sorted(PRECISION_POLICIES) == [
            "global-switch",
            "per-layer",
            "range-driven",
        ]
        assert PRECISION_POLICIES["global-switch"] is GlobalSwitchPolicy
        assert PRECISION_POLICIES["per-layer"] is PerLayerSchedulePolicy
        assert PRECISION_POLICIES["range-driven"] is RangeDrivenPolicy

    def test_resolve_rejects_unknown_names(self):
        with pytest.raises(ValueError, match="global-switch"):
            resolve_precision("no-such-policy", _numerics())

    def test_register_rejects_duplicates_and_default_names(self):
        class Duplicate(PrecisionPolicy):
            name = "global-switch"

        class Anonymous(PrecisionPolicy):
            pass  # inherits the base name

        with pytest.raises(ValueError, match="duplicate"):
            register_precision_policy(Duplicate)
        with pytest.raises(ValueError, match="distinct"):
            register_precision_policy(Anonymous)
        assert PRECISION_POLICIES["global-switch"] is GlobalSwitchPolicy

    def test_policies_require_dynamic_numerics(self):
        with pytest.raises(TypeError, match="DynamicFixedPointNumerics"):
            GlobalSwitchPolicy(make_numerics("float32"))


# --------------------------------------------------------------------- #
# Policy 1: the global switch delegates to the controller
# --------------------------------------------------------------------- #
class TestGlobalSwitchPolicy:
    def test_matches_bare_controller_step_by_step(self, rng):
        """Same decisions, same event, same quantizer as QATController."""
        samples = rng.uniform(-3, 5, size=100)
        a = _numerics()
        controller = QATController(a, QATSchedule(16, quantization_delay=10))
        b = _numerics()
        policy = GlobalSwitchPolicy(b, QATSchedule(16, quantization_delay=10))
        a.observe_activation(samples)
        b.observe_activation(samples)
        for step in range(10):
            assert controller.on_timestep(step) is None
            assert policy.on_timestep(step) is None
        expected = controller.on_timestep(10)
        event = policy.on_timestep(10)
        assert event == expected
        assert policy.switched and controller.switched
        assert b.half_mode
        assert b.quantizer.delta == a.quantizer.delta
        assert b.quantizer.zero_point == a.quantizer.zero_point

    def test_broadcast_payload_is_the_bare_quantizer(self, rng):
        numerics = _numerics()
        numerics.observe_activation(rng.uniform(-1, 1, size=50))
        policy = GlobalSwitchPolicy(numerics, QATSchedule(16, quantization_delay=0))
        assert policy.on_timestep(0) is not None
        # Identical pipe payload to the pre-refactor coordinator broadcast.
        assert policy.broadcast_payload() is numerics.quantizer

    def test_from_spec_grammar(self):
        policy = GlobalSwitchPolicy.from_spec(_numerics(), "16@1000")
        assert policy.schedule.num_bits == 16
        assert policy.schedule.quantization_delay == 1000
        delay_only = GlobalSwitchPolicy.from_spec(_numerics(), "@500")
        assert delay_only.schedule.quantization_delay == 500
        default = GlobalSwitchPolicy.from_spec(_numerics(), None)
        assert default.schedule.quantization_delay == QATSchedule().quantization_delay

    def test_precision_state_is_normalized(self, rng):
        numerics = _numerics()
        numerics.observe_activation(rng.uniform(-1, 1, size=50))
        policy = GlobalSwitchPolicy(numerics, QATSchedule(16, quantization_delay=0))
        assert policy.precision_state() == {"default": 32, "layers": {}}
        policy.on_timestep(0)
        assert policy.precision_state()["default"] == 16


class TestGlobalSwitchEquivalence:
    """The refactor pin: config.precision == explicit QATController, exactly."""

    def _run(self, steps=300, delay=150, via_config=False):
        env = HalfCheetahEnv(seed=0, max_episode_steps=50)
        eval_env = HalfCheetahEnv(seed=1, max_episode_steps=50)
        agent = _small_agent(np.random.default_rng(7), env)
        if via_config:
            config = _config(
                steps, precision="global-switch", precision_spec=f"16@{delay}"
            )
            result = train(env, agent, config, eval_env=eval_env)
        else:
            controller = QATController(
                agent.numerics, QATSchedule(16, quantization_delay=delay)
            )
            result = train(
                env, agent, _config(steps), eval_env=eval_env,
                qat_controller=controller,
            )
        return agent, result

    def test_config_precision_is_bit_exact_with_explicit_controller(self):
        legacy_agent, legacy = self._run(via_config=False)
        policy_agent, policy = self._run(via_config=True)
        assert legacy.qat_event is not None and policy.qat_event is not None
        assert policy.qat_event.timestep == legacy.qat_event.timestep
        assert policy.episode_returns == legacy.episode_returns
        np.testing.assert_array_equal(
            policy.curve.returns, legacy.curve.returns
        )
        for name, value in legacy_agent.actor.parameters().items():
            np.testing.assert_array_equal(
                policy_agent.actor.parameters()[name], value
            )
        assert policy_agent.numerics.half_mode

    def test_explicit_controller_and_config_precision_conflict(self, rng):
        env = HalfCheetahEnv(seed=0, max_episode_steps=30)
        agent = _small_agent(rng, env)
        controller = QATController(agent.numerics, QATSchedule(16, 10))
        with pytest.raises(ValueError, match="alternative precision drivers"):
            train(
                env,
                agent,
                _config(120, precision="global-switch"),
                qat_controller=controller,
            )

    def test_config_precision_requires_dynamic_numerics(self, rng):
        env = HalfCheetahEnv(seed=0, max_episode_steps=30)
        agent = _small_agent(rng, env, regime="float32")
        with pytest.raises(ValueError, match="DynamicFixedPointNumerics"):
            train(env, agent, _config(120, precision="global-switch"))


# --------------------------------------------------------------------- #
# Policy 2: static per-layer table
# --------------------------------------------------------------------- #
class TestPerLayerSchedulePolicy:
    def test_from_spec_grammar(self):
        policy = PerLayerSchedulePolicy.from_spec(
            _numerics(), "actor=16@1000,critic=32"
        )
        assert policy.table == (("actor", 16, 1000), ("critic", 32, 0))
        with pytest.raises(ValueError, match="pattern=bits"):
            PerLayerSchedulePolicy.from_spec(_numerics(), "actor16")
        with pytest.raises(ValueError, match="spec"):
            PerLayerSchedulePolicy.from_spec(_numerics(), None)

    def test_table_validation(self):
        with pytest.raises(ValueError, match="non-empty"):
            PerLayerSchedulePolicy(_numerics(), [("", 16, 0)])
        with pytest.raises(ValueError, match=">= 2"):
            PerLayerSchedulePolicy(_numerics(), [("actor", 1, 0)])
        with pytest.raises(ValueError, match="at least one"):
            PerLayerSchedulePolicy(_numerics(), [])

    def test_prefix_match_switches_only_covered_layers(self):
        numerics = _numerics()
        for layer in ("actor_fc0", "actor_out", "critic_fc0", "critic_out"):
            _observe(numerics, layer)
        policy = PerLayerSchedulePolicy(
            numerics, [("actor", 16, 5), ("critic", 32, 0)]
        )
        assert policy.on_timestep(4) is None  # before the actor delay
        event = policy.on_timestep(5)
        assert event is not None
        assert event.layers == ("actor_fc0", "actor_out")
        assert event.num_bits == 16
        assert numerics.layer_activation_bits("actor_fc0") == 16
        assert numerics.layer_activation_bits("critic_fc0") == 32
        assert "critic_fc0" not in numerics.layer_quantizers
        # Terminal once every reduced-precision layer has switched.
        assert policy.switched
        assert policy.on_timestep(6) is None

    def test_switch_postponed_until_layer_range_observed(self):
        numerics = _numerics()
        _observe(numerics, "actor_fc0")
        policy = PerLayerSchedulePolicy(numerics, [("actor", 16, 0)])
        event = policy.on_timestep(0)
        assert event is not None and event.layers == ("actor_fc0",)
        # A layer first observed later switches on a later timestep; the
        # policy is not terminal while covered layers are still pending.
        assert not policy.switched or "actor_fc1" not in numerics.layer_trackers
        _observe(numerics, "actor_fc1")
        if not policy.switched:
            follow_up = policy.on_timestep(1)
            assert follow_up is not None

    def test_layer_switch_records_frozen_quantizer_parameters(self):
        numerics = _numerics()
        _observe(numerics, "actor_fc0", low=-2.0, high=3.0)
        policy = PerLayerSchedulePolicy(numerics, [("actor_fc0", 16, 0)])
        event = policy.on_timestep(0)
        switch = event.switches[0]
        quantizer = numerics.layer_quantizers["actor_fc0"]
        assert switch.activation_min == pytest.approx(-2.0)
        assert switch.activation_max == pytest.approx(3.0)
        assert switch.delta == quantizer.delta
        assert switch.zero_point == quantizer.zero_point

    def test_plan_roundtrips_through_adopt_plan(self):
        numerics = _numerics()
        for layer in ("actor_fc0", "actor_out"):
            _observe(numerics, layer)
        policy = PerLayerSchedulePolicy(numerics, [("actor", 16, 0)])
        policy.on_timestep(0)
        plan = policy.plan()
        assert isinstance(plan, PrecisionPlan)
        assert plan.activation_bits("actor_fc0") == 16
        assert plan.activation_bits("critic_fc0") == 32
        assert plan.weight_bits == 32 and plan.gradient_bits == 32
        assert policy.broadcast_payload() == plan

        replica = _numerics()
        replica.adopt_plan(plan)
        assert replica.layer_activation_bits("actor_fc0") == 16
        original = numerics.layer_quantizers["actor_fc0"]
        adopted = replica.layer_quantizers["actor_fc0"]
        assert adopted.delta == original.delta
        assert adopted.zero_point == original.zero_point

    def test_precision_state_reports_partial_plan(self):
        numerics = _numerics()
        _observe(numerics, "actor_fc0")
        _observe(numerics, "critic_fc0")
        policy = PerLayerSchedulePolicy(numerics, [("actor", 16, 0)])
        policy.on_timestep(0)
        assert policy.precision_state() == {
            "default": 32,
            "layers": {"actor_fc0": 16},
        }

    def test_train_with_per_layer_policy_switches_actor_layers(self, rng):
        env = HalfCheetahEnv(seed=0, max_episode_steps=50)
        agent = _small_agent(rng, env)
        config = _config(
            200, precision="per-layer", precision_spec="actor=16@60,critic=32"
        )
        result = train(env, agent, config)
        assert result.qat_event is not None
        assert result.qat_event.timestep >= 60
        bits = agent.numerics.layer_bits
        assert bits and all(name.startswith("actor") for name in bits)
        assert set(bits.values()) == {16}
        assert not agent.numerics.half_mode  # critic stays full precision


# --------------------------------------------------------------------- #
# Policy 3: range-statistic-driven switches
# --------------------------------------------------------------------- #
class TestRangeDrivenPolicy:
    def test_switches_after_stable_span_checks(self):
        numerics = _numerics()
        _observe(numerics, "actor_fc0")
        policy = RangeDrivenPolicy(
            numerics, check_interval=10, patience=2, tolerance=0.05
        )
        # Check 1 records the span, checks 2 and 3 see it stable.
        assert policy.on_timestep(10) is None
        assert policy.on_timestep(20) is None
        event = policy.on_timestep(30)
        assert event is not None and event.layers == ("actor_fc0",)
        assert numerics.layer_activation_bits("actor_fc0") == 16
        assert policy.switched

    def test_growing_span_resets_patience(self):
        numerics = _numerics()
        _observe(numerics, "actor_fc0", low=-1.0, high=1.0)
        policy = RangeDrivenPolicy(
            numerics, check_interval=10, patience=2, tolerance=0.05
        )
        assert policy.on_timestep(10) is None
        _observe(numerics, "actor_fc0", low=-4.0, high=4.0)  # span doubles
        assert policy.on_timestep(20) is None  # growth resets the counter
        assert policy.on_timestep(30) is None  # stable check #1
        assert policy.on_timestep(40) is not None  # stable check #2: switch

    def test_off_interval_timesteps_are_ignored(self):
        numerics = _numerics()
        _observe(numerics, "actor_fc0")
        policy = RangeDrivenPolicy(numerics, check_interval=10, patience=1)
        for step in (1, 5, 9, 11, 15):
            assert policy.on_timestep(step) is None
        assert not policy._spans  # no check ever ran

    def test_determinism_same_observations_same_switch_timestep(self):
        def run():
            numerics = _numerics()
            _observe(numerics, "actor_fc0")
            _observe(numerics, "critic_fc0")
            policy = RangeDrivenPolicy(numerics, check_interval=10, patience=2)
            events = []
            for step in range(0, 60, 10):
                event = policy.on_timestep(step)
                if event is not None:
                    events.append((event.timestep, event.layers))
            return events

        assert run() == run()

    def test_spec_and_validation(self):
        policy = RangeDrivenPolicy.from_spec(
            _numerics(), "bits=8,interval=500,patience=3,tolerance=0.1"
        )
        assert policy.num_bits == 8
        assert policy.check_interval == 500
        assert policy.patience == 3
        assert policy.tolerance == pytest.approx(0.1)
        with pytest.raises(ValueError, match="known keys"):
            RangeDrivenPolicy.from_spec(_numerics(), "delay=100")
        with pytest.raises(ValueError, match="check_interval"):
            RangeDrivenPolicy(_numerics(), check_interval=0)
        with pytest.raises(ValueError, match="patience"):
            RangeDrivenPolicy(_numerics(), patience=0)


# --------------------------------------------------------------------- #
# Pricing: precision state through the platform and the pool
# --------------------------------------------------------------------- #
class TestPlatformPricing:
    def _platform(self):
        return FixarPlatform(WorkloadSpec.from_benchmark("HalfCheetah"))

    def _mixed_state(self, platform):
        """Every actor layer at 16 bits, critic untouched (mixed plan)."""
        layers = {}
        shapes = platform.workload.actor_shapes
        for i in range(len(shapes) - 1):
            layers[f"actor_fc{i}"] = 16
        layers["actor_out"] = 16
        return {"default": 32, "layers": layers}

    def test_none_and_all_full_states_are_identity(self):
        platform = self._platform()
        assert platform.with_precision_state(None) is platform
        assert (
            platform.with_precision_state({"default": 32, "layers": {}})
            is platform
        )

    def test_uniform_half_state_collapses_onto_legacy_mode(self):
        platform = self._platform()
        legacy = FixarPlatform(platform.workload, half_precision=True)
        uniform = platform.with_precision_state({"default": 16, "layers": {}})
        assert uniform.half_precision is True
        assert uniform.precision_state is None
        assert uniform.training_steps_per_second(64) == (
            legacy.training_steps_per_second(64)
        )
        assert uniform.transfer_bytes_per_value == 2

    def test_mixed_state_prices_between_the_uniform_extremes(self):
        platform = self._platform()
        half = platform.with_precision_state({"default": 16, "layers": {}})
        mixed = platform.with_precision_state(self._mixed_state(platform))
        full_sps = platform.training_steps_per_second(64)
        mixed_sps = mixed.training_steps_per_second(64)
        half_sps = half.training_steps_per_second(64)
        assert full_sps < mixed_sps < half_sps
        assert 2 < mixed.transfer_bytes_per_value < 4

    def test_invalid_bitwidths_rejected(self):
        with pytest.raises(ValueError, match="positive"):
            self._platform().with_precision_state(
                {"default": 32, "layers": {"actor_fc0": 0}}
            )

    def test_mixed_state_changes_fleet_throughput_on_the_platform(self):
        platform = self._platform()
        mixed = platform.with_precision_state(self._mixed_state(platform))
        fleet = [("halfcheetah", 1, 4), ("hopper", 1, 4)]
        before = platform.fleet_training_steps_per_second(fleet, 4)
        after = mixed.fleet_training_steps_per_second(fleet, 4)
        assert after > before

    def test_mixed_state_changes_fleet_throughput_through_a_pool(self):
        platform = self._platform()
        pool = AcceleratorPool(platform, num_devices=2)
        repriced = pool.with_precision_state(self._mixed_state(platform))
        assert isinstance(repriced, AcceleratorPool)
        assert repriced.num_devices == 2
        fleet = [("halfcheetah", 1, 4), ("hopper", 1, 4)]
        before = pool.fleet_training_steps_per_second(fleet, 4)
        after = repriced.fleet_training_steps_per_second(fleet, 4)
        assert after > before

    def test_single_device_pool_stays_exact_with_platform(self):
        platform = self._platform()
        state = self._mixed_state(platform)
        pool_sps = AcceleratorPool(
            platform, num_devices=1
        ).with_precision_state(state).fleet_training_steps_per_second(
            [("halfcheetah", 1, 4)], 4
        )
        platform_sps = platform.with_precision_state(
            state
        ).fleet_training_steps_per_second([("halfcheetah", 1, 4)], 4)
        assert pool_sps == platform_sps

    def test_pool_identity_when_state_is_identity(self):
        platform = self._platform()
        pool = AcceleratorPool(platform, num_devices=2)
        assert pool.with_precision_state(None) is pool
        assert (
            pool.with_precision_state({"default": 32, "layers": {}}) is pool
        )


# --------------------------------------------------------------------- #
# Adaptive re-lock: the scheduler's precision-epoch seam
# --------------------------------------------------------------------- #
class TestAdaptiveRelock:
    def _groups(self):
        class Group:
            def __init__(self, key, workers, num_envs):
                self.key = key
                self.num_workers = workers
                self.num_envs = num_envs

        return [Group("halfcheetah", 2, 8), Group("hopper", 2, 8)]

    def _half_state(self):
        return {"default": 16, "layers": {}}

    def test_non_adaptive_policy_never_relocks(self):
        platform = FixarPlatform(WorkloadSpec.from_benchmark("HalfCheetah"))
        policy = ThroughputWeightedPolicy(platform=platform)
        assert policy.relock(self._groups(), precision_state=self._half_state()) is None

    def test_adaptive_relock_reprices_from_the_switched_oracle(self):
        platform = FixarPlatform(WorkloadSpec.from_benchmark("HalfCheetah"))
        policy = ThroughputWeightedPolicy(platform=platform, adaptive=True)
        groups = self._groups()
        before = policy.lock_steps(groups)
        relocked = policy.relock(groups, precision_state=self._half_state())
        assert relocked is not None
        # Deterministic: the same state re-locks to the same allocation.
        assert relocked == policy.relock(
            groups, precision_state=self._half_state()
        )
        half = platform.with_precision_state(self._half_state())
        assert relocked == policy.lock_steps(groups, half)
        assert len(relocked) == len(before)

    def test_explicit_weights_stay_put_across_relock(self):
        platform = FixarPlatform(WorkloadSpec.from_benchmark("HalfCheetah"))
        policy = ThroughputWeightedPolicy(
            platform=platform, adaptive=True, weights={"hopper": 3}
        )
        assert policy.relock(self._groups(), precision_state=self._half_state()) is None
