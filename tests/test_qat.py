"""Unit tests for Algorithm 1's quantization-aware training schedule."""

import numpy as np
import pytest

from repro.nn import DynamicFixedPointNumerics, FixedPointNumerics
from repro.rl import QATController, QATSchedule


class TestSchedule:
    def test_defaults(self):
        schedule = QATSchedule()
        assert schedule.num_bits == 16
        assert schedule.quantization_delay == 500_000

    def test_phase_at(self):
        schedule = QATSchedule(num_bits=16, quantization_delay=100)
        assert schedule.phase_at(0) == "full"
        assert schedule.phase_at(99) == "full"
        assert schedule.phase_at(100) == "half"

    def test_validation(self):
        with pytest.raises(ValueError):
            QATSchedule(num_bits=1)
        with pytest.raises(ValueError):
            QATSchedule(quantization_delay=-1)


class TestController:
    def _controller(self, delay=10, num_bits=16):
        numerics = DynamicFixedPointNumerics(num_bits=num_bits)
        return QATController(numerics, QATSchedule(num_bits=num_bits, quantization_delay=delay)), numerics

    def test_requires_dynamic_numerics(self):
        with pytest.raises(TypeError):
            QATController(FixedPointNumerics(), QATSchedule())

    def test_bit_width_mismatch_rejected(self):
        numerics = DynamicFixedPointNumerics(num_bits=8)
        with pytest.raises(ValueError):
            QATController(numerics, QATSchedule(num_bits=16))

    def test_no_switch_before_delay(self, rng):
        controller, numerics = self._controller(delay=10)
        numerics.observe_activation(rng.normal(size=10))
        for step in range(10):
            assert controller.on_timestep(step) is None
        assert not controller.switched

    def test_switch_at_delay(self, rng):
        controller, numerics = self._controller(delay=10)
        numerics.observe_activation(rng.uniform(-3, 5, size=100))
        event = controller.on_timestep(10)
        assert event is not None
        assert controller.switched
        assert numerics.half_mode
        assert event.timestep == 10
        assert event.num_bits == 16
        assert event.activation_max == pytest.approx(numerics.range_tracker.max_value)
        assert event.delta > 0

    def test_switch_happens_once(self, rng):
        controller, numerics = self._controller(delay=5)
        numerics.observe_activation(rng.normal(size=10))
        assert controller.on_timestep(5) is not None
        assert controller.on_timestep(6) is None
        assert controller.event is not None

    def test_switch_postponed_until_range_observed(self):
        controller, numerics = self._controller(delay=0)
        # No activations observed yet: the controller must wait.
        assert controller.on_timestep(0) is None
        numerics.observe_activation(np.array([-1.0, 1.0]))
        assert controller.on_timestep(1) is not None

    def test_activation_bits_at(self):
        controller, _ = self._controller(delay=100)
        assert controller.activation_bits_at(0) == 32
        assert controller.activation_bits_at(99) == 32
        assert controller.activation_bits_at(100) == 16
