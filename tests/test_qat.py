"""Unit tests for Algorithm 1's quantization-aware training schedule."""

import numpy as np
import pytest

from repro.nn import DynamicFixedPointNumerics, FixedPointNumerics
from repro.rl import QATController, QATSchedule


class TestSchedule:
    def test_defaults(self):
        schedule = QATSchedule()
        assert schedule.num_bits == 16
        assert schedule.quantization_delay == 500_000

    def test_phase_at(self):
        schedule = QATSchedule(num_bits=16, quantization_delay=100)
        assert schedule.phase_at(0) == "full"
        assert schedule.phase_at(99) == "full"
        assert schedule.phase_at(100) == "half"

    def test_validation(self):
        with pytest.raises(ValueError):
            QATSchedule(num_bits=1)
        with pytest.raises(ValueError):
            QATSchedule(quantization_delay=-1)


class TestController:
    def _controller(self, delay=10, num_bits=16):
        numerics = DynamicFixedPointNumerics(num_bits=num_bits)
        return QATController(numerics, QATSchedule(num_bits=num_bits, quantization_delay=delay)), numerics

    def test_requires_dynamic_numerics(self):
        with pytest.raises(TypeError):
            QATController(FixedPointNumerics(), QATSchedule())

    def test_bit_width_mismatch_rejected(self):
        numerics = DynamicFixedPointNumerics(num_bits=8)
        with pytest.raises(ValueError):
            QATController(numerics, QATSchedule(num_bits=16))

    def test_no_switch_before_delay(self, rng):
        controller, numerics = self._controller(delay=10)
        numerics.observe_activation(rng.normal(size=10))
        for step in range(10):
            assert controller.on_timestep(step) is None
        assert not controller.switched

    def test_switch_at_delay(self, rng):
        controller, numerics = self._controller(delay=10)
        numerics.observe_activation(rng.uniform(-3, 5, size=100))
        event = controller.on_timestep(10)
        assert event is not None
        assert controller.switched
        assert numerics.half_mode
        assert event.timestep == 10
        assert event.num_bits == 16
        assert event.activation_max == pytest.approx(numerics.range_tracker.max_value)
        assert event.delta > 0

    def test_switch_happens_once(self, rng):
        controller, numerics = self._controller(delay=5)
        numerics.observe_activation(rng.normal(size=10))
        assert controller.on_timestep(5) is not None
        assert controller.on_timestep(6) is None
        assert controller.event is not None

    def test_switch_postponed_until_range_observed(self):
        controller, numerics = self._controller(delay=0)
        # No activations observed yet: the controller must wait.
        assert controller.on_timestep(0) is None
        numerics.observe_activation(np.array([-1.0, 1.0]))
        assert controller.on_timestep(1) is not None

    def test_activation_bits_at(self, rng):
        controller, numerics = self._controller(delay=100)
        assert controller.activation_bits_at(0) == 32
        assert controller.activation_bits_at(99) == 32
        # The switch has not happened yet (the controller may still postpone
        # it), so the numerics actually in effect at t >= delay are full
        # precision until on_timestep really flips them.
        assert controller.activation_bits_at(100) == 32
        numerics.observe_activation(rng.uniform(-2, 2, size=50))
        assert controller.on_timestep(100) is not None
        assert controller.activation_bits_at(100) == 16
        assert controller.activation_bits_at(99) == 32

    def test_activation_bits_track_postponed_switch(self, rng):
        """A postponed switch must not be reported as half precision.

        With an uninitialized range tracker the controller postpones the
        switch past the delay; activation_bits_at has to report the full
        width for those timesteps — they really ran at full precision —
        and half width only from the actual switch timestep on.
        """
        controller, numerics = self._controller(delay=10)
        # Steps 10..12 pass with no observed range: postponed, still 32-bit.
        for step in (10, 11, 12):
            assert controller.on_timestep(step) is None
            assert controller.activation_bits_at(step) == 32
        numerics.observe_activation(rng.uniform(-1, 1, size=20))
        event = controller.on_timestep(13)
        assert event is not None and event.timestep == 13
        # The postponed window keeps reporting the precision it really had.
        assert controller.activation_bits_at(10) == 32
        assert controller.activation_bits_at(12) == 32
        assert controller.activation_bits_at(13) == 16
        assert controller.activation_bits_at(999) == 16

    def test_precision_state_matches_numerics_profile(self, rng):
        """The controller speaks the same normalized precision_state()
        surface as the PrecisionPolicy seam, so the round scheduler and the
        platform pricing treat both drivers interchangeably."""
        controller, numerics = self._controller(delay=5)
        assert controller.precision_state() == {"default": 32, "layers": {}}
        numerics.observe_activation(rng.uniform(-1, 1, size=20))
        controller.on_timestep(5)
        assert controller.precision_state() == {"default": 16, "layers": {}}
        assert controller.precision_state() == numerics.precision_profile()

    def test_broadcast_payload_is_the_frozen_quantizer(self, rng):
        controller, numerics = self._controller(delay=5)
        numerics.observe_activation(rng.uniform(-1, 1, size=20))
        assert controller.on_timestep(5) is not None
        assert controller.broadcast_payload() is numerics.quantizer

    def test_activation_bits_trust_restored_half_mode_numerics(self, rng):
        """A controller resumed on checkpoint-restored numerics that are
        already in half mode must report half precision even though *it*
        never performed the switch."""
        _, numerics = self._controller(delay=10)
        numerics.observe_activation(rng.uniform(-1, 1, size=20))
        numerics.switch_to_half()  # what load_agent_into does on restore
        resumed = QATController(numerics, QATSchedule(num_bits=16, quantization_delay=10))
        assert not resumed.switched  # this controller recorded no event
        assert resumed.activation_bits_at(9) == 32
        assert resumed.activation_bits_at(10) == 16
        assert resumed.activation_bits_at(500) == 16
