"""Unit tests for agent checkpointing."""

import numpy as np
import pytest

from repro.nn import make_numerics
from repro.rl import (
    DDPGAgent,
    DDPGConfig,
    TD3Agent,
    TD3Config,
    checkpoint_metadata,
    load_agent_into,
    save_agent,
)


def _ddpg(rng, regime="float32"):
    return DDPGAgent(
        6, 2, DDPGConfig(hidden_sizes=(12, 8)), numerics=make_numerics(regime), rng=rng
    )


class TestSaveLoadDDPG:
    def test_roundtrip_restores_policy(self, rng, tmp_path):
        agent = _ddpg(rng)
        path = save_agent(agent, tmp_path / "agent.npz")
        assert path.exists()

        restored = _ddpg(np.random.default_rng(999))
        state = rng.normal(size=6)
        assert not np.allclose(agent.act(state), restored.act(state))
        metadata = load_agent_into(restored, path)
        np.testing.assert_allclose(agent.act(state), restored.act(state))
        assert metadata["agent_class"] == "DDPGAgent"

    def test_target_networks_restored(self, rng, tmp_path):
        agent = _ddpg(rng)
        path = save_agent(agent, tmp_path / "agent.npz")
        restored = _ddpg(np.random.default_rng(5))
        load_agent_into(restored, path)
        for name, value in agent.target_critic.parameters().items():
            np.testing.assert_allclose(restored.target_critic.parameters()[name], value)

    def test_update_count_restored(self, rng, tmp_path):
        agent = _ddpg(rng)
        agent.update_count = 42
        path = save_agent(agent, tmp_path / "agent.npz")
        restored = _ddpg(np.random.default_rng(5))
        load_agent_into(restored, path)
        assert restored.update_count == 42

    def test_missing_npz_suffix_normalised(self, rng, tmp_path):
        agent = _ddpg(rng)
        path = save_agent(agent, tmp_path / "agent")
        assert path.suffix == ".npz"
        assert path.exists()

    def test_metadata_contents(self, rng):
        agent = _ddpg(rng, regime="fixar-dynamic")
        metadata = checkpoint_metadata(agent)
        assert metadata["state_dim"] == 6
        assert metadata["numerics"]["name"] == "fixar-dynamic"
        assert metadata["qat"]["half_mode"] is False


class TestQatState:
    def test_half_mode_and_range_restored(self, rng, tmp_path):
        agent = _ddpg(rng, regime="fixar-dynamic")
        agent.numerics.observe_activation(np.array([-2.0, 3.0]))
        agent.numerics.switch_to_half()
        path = save_agent(agent, tmp_path / "qat.npz")

        restored = _ddpg(np.random.default_rng(1), regime="fixar-dynamic")
        load_agent_into(restored, path)
        assert restored.numerics.half_mode
        assert restored.numerics.range_tracker.min_value == pytest.approx(-2.0)
        assert restored.numerics.range_tracker.max_value == pytest.approx(3.0)

    def test_postponed_switch_roundtrip(self, rng, tmp_path):
        """Checkpoint taken *between* the quantization delay and a postponed
        switch: half_mode is still False but the range tracker is partially
        filled — both must survive the round trip, and a controller resumed
        on the restored agent must switch using the captured range."""
        from repro.rl import QATController, QATSchedule

        agent = _ddpg(rng, regime="fixar-dynamic")
        controller = QATController(
            agent.numerics, QATSchedule(num_bits=16, quantization_delay=10)
        )
        # Past the delay with no observed range: the switch is postponed.
        assert controller.on_timestep(10) is None
        agent.numerics.observe_activation(np.array([-1.5, 0.25, 2.5]))
        metadata = checkpoint_metadata(agent)
        assert metadata["qat"]["half_mode"] is False
        assert metadata["qat"]["range_min"] == pytest.approx(-1.5)
        path = save_agent(agent, tmp_path / "postponed.npz")

        restored = _ddpg(np.random.default_rng(1), regime="fixar-dynamic")
        load_agent_into(restored, path)
        assert not restored.numerics.half_mode  # the switch has NOT happened
        assert restored.numerics.range_tracker.initialized
        assert restored.numerics.range_tracker.min_value == pytest.approx(-1.5)
        assert restored.numerics.range_tracker.max_value == pytest.approx(2.5)
        assert (
            restored.numerics.range_tracker.count
            == agent.numerics.range_tracker.count
        )

        # Resuming the schedule on the restored agent completes the switch
        # with the checkpointed range, as the interrupted run would have.
        resumed = QATController(
            restored.numerics, QATSchedule(num_bits=16, quantization_delay=10)
        )
        event = resumed.on_timestep(11)
        assert event is not None
        assert restored.numerics.half_mode
        assert event.activation_min == pytest.approx(-1.5)
        assert event.activation_max == pytest.approx(2.5)


class TestPerLayerPlanState:
    def _partially_switched(self, rng):
        """A fixar-dynamic agent mid-way through a per-layer schedule:
        actor layers switched to 16 bits, critic layers still tracking."""
        from repro.rl import PerLayerSchedulePolicy

        agent = _ddpg(rng, regime="fixar-dynamic")
        numerics = agent.numerics
        for layer, bounds in (
            ("actor_fc0", (-1.5, 2.5)),
            ("actor_out", (-1.0, 1.0)),
            ("critic_fc0", (-4.0, 6.0)),
        ):
            numerics.observe_activation(np.array(bounds), layer=layer)
        policy = PerLayerSchedulePolicy(numerics, [("actor", 16, 0)])
        event = policy.on_timestep(10)
        assert event is not None and set(event.layers) == {"actor_fc0", "actor_out"}
        return agent, policy

    def test_partially_switched_plan_roundtrip_is_bit_exact(self, rng, tmp_path):
        agent, policy = self._partially_switched(rng)
        metadata = checkpoint_metadata(agent)
        layers = metadata["qat"]["layers"]
        assert layers["actor_fc0"]["switched"]
        assert layers["actor_fc0"]["bits"] == 16
        assert not layers["critic_fc0"]["switched"]
        path = save_agent(agent, tmp_path / "plan.npz")

        restored = _ddpg(np.random.default_rng(1), regime="fixar-dynamic")
        load_agent_into(restored, path)
        numerics = restored.numerics
        assert not numerics.half_mode  # no global switch happened
        assert set(numerics.layer_quantizers) == {"actor_fc0", "actor_out"}
        assert numerics.layer_activation_bits("actor_fc0") == 16
        assert numerics.layer_activation_bits("critic_fc0") == 32
        for layer in ("actor_fc0", "actor_out"):
            original = agent.numerics.layer_quantizers[layer]
            roundtripped = numerics.layer_quantizers[layer]
            assert roundtripped.num_bits == original.num_bits
            assert roundtripped.delta == original.delta
            assert roundtripped.zero_point == original.zero_point
        # The unswitched critic tracker survives with its live statistics.
        tracker = numerics.layer_trackers["critic_fc0"]
        assert tracker.min_value == pytest.approx(-4.0)
        assert tracker.max_value == pytest.approx(6.0)
        assert tracker.count == agent.numerics.layer_trackers["critic_fc0"].count

    def test_restored_plan_quantizes_activations_identically(self, rng, tmp_path):
        agent, _policy = self._partially_switched(rng)
        path = save_agent(agent, tmp_path / "plan.npz")
        restored = _ddpg(np.random.default_rng(2), regime="fixar-dynamic")
        load_agent_into(restored, path)
        samples = np.linspace(-1.5, 2.5, 64)
        np.testing.assert_array_equal(
            restored.numerics.project_activation(samples, layer="actor_fc0"),
            agent.numerics.project_activation(samples, layer="actor_fc0"),
        )

    def test_resumed_policy_continues_from_the_restored_plan(self, rng, tmp_path):
        """Continuation: a policy resumed on the restored agent switches the
        remaining critic layers with the checkpointed range statistics —
        bit-exact with what the uninterrupted run would have frozen."""
        from repro.rl import PerLayerSchedulePolicy

        agent, _policy = self._partially_switched(rng)
        path = save_agent(agent, tmp_path / "plan.npz")
        restored = _ddpg(np.random.default_rng(3), regime="fixar-dynamic")
        load_agent_into(restored, path)

        resumed = PerLayerSchedulePolicy(
            restored.numerics, [("actor", 16, 0), ("critic", 16, 20)]
        )
        event = resumed.on_timestep(20)
        assert event is not None and event.layers == ("critic_fc0",)
        switch = event.switches[0]
        assert switch.activation_min == pytest.approx(-4.0)
        assert switch.activation_max == pytest.approx(6.0)
        # Already-switched actor layers are left alone (no double switch).
        reference = PerLayerSchedulePolicy(
            agent.numerics, [("actor", 16, 0), ("critic", 16, 20)]
        )
        expected = reference.on_timestep(20)
        assert expected is not None
        assert switch == expected.switches[0]


class TestPipelinedTrainingRoundtrip:
    @pytest.mark.pipelined
    def test_pipelined_agent_save_restore_smoke(self, rng, tmp_path):
        """An agent trained under the pipelined schedule checkpoints and
        restores like any other: same policy, same update count."""
        from repro.envs import HopperEnv
        from repro.nn import make_numerics
        from repro.rl import TrainingConfig, train

        env = HopperEnv(seed=5, max_episode_steps=40)
        agent = DDPGAgent(
            env.state_dim,
            env.action_dim,
            DDPGConfig(hidden_sizes=(12, 8)),
            numerics=make_numerics("float32"),
            rng=rng,
        )
        config = TrainingConfig(
            total_timesteps=120,
            warmup_timesteps=24,
            batch_size=16,
            buffer_capacity=2_000,
            evaluation_interval=120,
            evaluation_episodes=1,
            seed=3,
            num_envs=2,
            num_workers=2,
            pipeline_depth=1,
        )
        result = train(
            env, agent, config, eval_env=HopperEnv(seed=9, max_episode_steps=40)
        )
        assert result.pipeline_depth == 1
        path = save_agent(agent, tmp_path / "pipelined.npz")

        restored = DDPGAgent(
            env.state_dim,
            env.action_dim,
            DDPGConfig(hidden_sizes=(12, 8)),
            numerics=make_numerics("float32"),
            rng=np.random.default_rng(99),
        )
        metadata = load_agent_into(restored, path)
        assert metadata["update_count"] == agent.update_count
        state = np.random.default_rng(0).normal(size=env.state_dim)
        np.testing.assert_array_equal(agent.act(state), restored.act(state))


class TestSaveLoadTD3:
    def test_roundtrip(self, rng, tmp_path):
        agent = TD3Agent(6, 2, TD3Config(hidden_sizes=(12, 8)), rng=rng)
        path = save_agent(agent, tmp_path / "td3.npz")
        restored = TD3Agent(6, 2, TD3Config(hidden_sizes=(12, 8)), rng=np.random.default_rng(7))
        load_agent_into(restored, path)
        state = rng.normal(size=6)
        np.testing.assert_allclose(agent.act(state), restored.act(state))


class TestValidation:
    def test_class_mismatch_rejected(self, rng, tmp_path):
        ddpg = _ddpg(rng)
        path = save_agent(ddpg, tmp_path / "agent.npz")
        td3 = TD3Agent(6, 2, TD3Config(hidden_sizes=(12, 8)), rng=rng)
        with pytest.raises(ValueError):
            load_agent_into(td3, path)

    def test_dimension_mismatch_rejected(self, rng, tmp_path):
        agent = _ddpg(rng)
        path = save_agent(agent, tmp_path / "agent.npz")
        other = DDPGAgent(7, 2, DDPGConfig(hidden_sizes=(12, 8)), rng=rng)
        with pytest.raises(ValueError):
            load_agent_into(other, path)

    def test_shape_mismatch_rejected(self, rng, tmp_path):
        agent = _ddpg(rng)
        path = save_agent(agent, tmp_path / "agent.npz")
        other = DDPGAgent(6, 2, DDPGConfig(hidden_sizes=(10, 8)), rng=rng)
        with pytest.raises(ValueError):
            load_agent_into(other, path)
