"""Unit tests for agent checkpointing."""

import numpy as np
import pytest

from repro.nn import make_numerics
from repro.rl import (
    DDPGAgent,
    DDPGConfig,
    TD3Agent,
    TD3Config,
    checkpoint_metadata,
    load_agent_into,
    save_agent,
)


def _ddpg(rng, regime="float32"):
    return DDPGAgent(
        6, 2, DDPGConfig(hidden_sizes=(12, 8)), numerics=make_numerics(regime), rng=rng
    )


class TestSaveLoadDDPG:
    def test_roundtrip_restores_policy(self, rng, tmp_path):
        agent = _ddpg(rng)
        path = save_agent(agent, tmp_path / "agent.npz")
        assert path.exists()

        restored = _ddpg(np.random.default_rng(999))
        state = rng.normal(size=6)
        assert not np.allclose(agent.act(state), restored.act(state))
        metadata = load_agent_into(restored, path)
        np.testing.assert_allclose(agent.act(state), restored.act(state))
        assert metadata["agent_class"] == "DDPGAgent"

    def test_target_networks_restored(self, rng, tmp_path):
        agent = _ddpg(rng)
        path = save_agent(agent, tmp_path / "agent.npz")
        restored = _ddpg(np.random.default_rng(5))
        load_agent_into(restored, path)
        for name, value in agent.target_critic.parameters().items():
            np.testing.assert_allclose(restored.target_critic.parameters()[name], value)

    def test_update_count_restored(self, rng, tmp_path):
        agent = _ddpg(rng)
        agent.update_count = 42
        path = save_agent(agent, tmp_path / "agent.npz")
        restored = _ddpg(np.random.default_rng(5))
        load_agent_into(restored, path)
        assert restored.update_count == 42

    def test_missing_npz_suffix_normalised(self, rng, tmp_path):
        agent = _ddpg(rng)
        path = save_agent(agent, tmp_path / "agent")
        assert path.suffix == ".npz"
        assert path.exists()

    def test_metadata_contents(self, rng):
        agent = _ddpg(rng, regime="fixar-dynamic")
        metadata = checkpoint_metadata(agent)
        assert metadata["state_dim"] == 6
        assert metadata["numerics"]["name"] == "fixar-dynamic"
        assert metadata["qat"]["half_mode"] is False


class TestQatState:
    def test_half_mode_and_range_restored(self, rng, tmp_path):
        agent = _ddpg(rng, regime="fixar-dynamic")
        agent.numerics.observe_activation(np.array([-2.0, 3.0]))
        agent.numerics.switch_to_half()
        path = save_agent(agent, tmp_path / "qat.npz")

        restored = _ddpg(np.random.default_rng(1), regime="fixar-dynamic")
        load_agent_into(restored, path)
        assert restored.numerics.half_mode
        assert restored.numerics.range_tracker.min_value == pytest.approx(-2.0)
        assert restored.numerics.range_tracker.max_value == pytest.approx(3.0)


class TestSaveLoadTD3:
    def test_roundtrip(self, rng, tmp_path):
        agent = TD3Agent(6, 2, TD3Config(hidden_sizes=(12, 8)), rng=rng)
        path = save_agent(agent, tmp_path / "td3.npz")
        restored = TD3Agent(6, 2, TD3Config(hidden_sizes=(12, 8)), rng=np.random.default_rng(7))
        load_agent_into(restored, path)
        state = rng.normal(size=6)
        np.testing.assert_allclose(agent.act(state), restored.act(state))


class TestValidation:
    def test_class_mismatch_rejected(self, rng, tmp_path):
        ddpg = _ddpg(rng)
        path = save_agent(ddpg, tmp_path / "agent.npz")
        td3 = TD3Agent(6, 2, TD3Config(hidden_sizes=(12, 8)), rng=rng)
        with pytest.raises(ValueError):
            load_agent_into(td3, path)

    def test_dimension_mismatch_rejected(self, rng, tmp_path):
        agent = _ddpg(rng)
        path = save_agent(agent, tmp_path / "agent.npz")
        other = DDPGAgent(7, 2, DDPGConfig(hidden_sizes=(12, 8)), rng=rng)
        with pytest.raises(ValueError):
            load_agent_into(other, path)

    def test_shape_mismatch_rejected(self, rng, tmp_path):
        agent = _ddpg(rng)
        path = save_agent(agent, tmp_path / "agent.npz")
        other = DDPGAgent(6, 2, DDPGConfig(hidden_sizes=(10, 8)), rng=rng)
        with pytest.raises(ValueError):
            load_agent_into(other, path)
