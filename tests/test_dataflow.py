"""Unit tests for the column-wise dataflow and adaptive-parallelism mappings."""

import numpy as np
import pytest

from repro.accelerator import (
    ArrayGeometry,
    Parallelism,
    column_wise_mvm,
    inference_schedule,
    interleave_columns,
    partition_batch,
    training_schedule,
)


class TestColumnWiseMvm:
    def test_matches_numpy_matmul_float(self, rng):
        matrix = rng.normal(size=(7, 5))
        vector = rng.normal(size=5)
        np.testing.assert_allclose(column_wise_mvm(matrix, vector), matrix @ vector)

    def test_matches_numpy_matmul_integer(self, rng):
        matrix = rng.integers(-100, 100, size=(6, 9))
        vector = rng.integers(-100, 100, size=9)
        np.testing.assert_array_equal(column_wise_mvm(matrix, vector), matrix @ vector)

    def test_dimension_mismatch_raises(self):
        with pytest.raises(ValueError):
            column_wise_mvm(np.zeros((3, 4)), np.zeros(5))
        with pytest.raises(ValueError):
            column_wise_mvm(np.zeros(3), np.zeros(3))


class TestInterleaving:
    def test_round_robin_assignment(self):
        groups = interleave_columns(10, 4)
        np.testing.assert_array_equal(groups[0], [0, 4, 8])
        np.testing.assert_array_equal(groups[1], [1, 5, 9])
        np.testing.assert_array_equal(groups[3], [3, 7])

    def test_covers_all_columns_exactly_once(self):
        groups = interleave_columns(23, 3)
        combined = np.sort(np.concatenate(groups))
        np.testing.assert_array_equal(combined, np.arange(23))

    def test_single_core(self):
        groups = interleave_columns(5, 1)
        assert len(groups) == 1
        np.testing.assert_array_equal(groups[0], np.arange(5))

    def test_interleaved_partial_mvm_sums_to_full(self, rng):
        """Per-core partial accumulations reduce to the full MVM result."""
        matrix = rng.integers(-50, 50, size=(8, 10))
        vector = rng.integers(-50, 50, size=10)
        groups = interleave_columns(10, 3)
        partials = [matrix[:, g] @ vector[g] for g in groups]
        np.testing.assert_array_equal(np.sum(partials, axis=0), matrix @ vector)

    def test_validation(self):
        with pytest.raises(ValueError):
            interleave_columns(-1, 2)
        with pytest.raises(ValueError):
            interleave_columns(4, 0)


class TestBatchPartition:
    def test_covers_batch(self):
        chunks = partition_batch(10, 4)
        assert sum(len(c) for c in chunks) == 10
        combined = np.sort(np.concatenate(chunks))
        np.testing.assert_array_equal(combined, np.arange(10))

    def test_balanced_sizes(self):
        chunks = partition_batch(10, 4)
        sizes = [len(c) for c in chunks]
        assert max(sizes) - min(sizes) <= 1

    def test_more_cores_than_vectors(self):
        chunks = partition_batch(2, 4)
        assert sum(len(c) for c in chunks) == 2

    def test_validation(self):
        with pytest.raises(ValueError):
            partition_batch(-1, 2)
        with pytest.raises(ValueError):
            partition_batch(4, 0)


class TestSchedules:
    GEOMETRY = ArrayGeometry(16, 16)

    def test_inference_schedule_paper_layer(self):
        # The 300x400 hidden layer: 25 row chunks, 19 column chunks.
        schedule = inference_schedule(300, 400, self.GEOMETRY, num_cores=2)
        assert schedule.parallelism is Parallelism.INTRA_LAYER
        assert schedule.row_chunks == 25
        assert schedule.col_chunks == 19
        assert schedule.tiles_per_core == 13 * 19
        assert schedule.vectors_per_core == 1
        assert schedule.needs_cross_core_accumulation

    def test_inference_half_precision_halves_row_chunks(self):
        full = inference_schedule(300, 400, self.GEOMETRY, num_cores=2, half_precision=False)
        half = inference_schedule(300, 400, self.GEOMETRY, num_cores=2, half_precision=True)
        assert half.row_chunks == (full.row_chunks + 1) // 2

    def test_single_core_needs_no_cross_core_accumulation(self):
        schedule = inference_schedule(300, 400, self.GEOMETRY, num_cores=1)
        assert not schedule.needs_cross_core_accumulation

    def test_training_schedule_intra_batch(self):
        schedule = training_schedule(300, 400, batch_size=512, geometry=self.GEOMETRY, num_cores=2)
        assert schedule.parallelism is Parallelism.INTRA_BATCH
        assert schedule.vectors_per_core == 256
        assert schedule.tiles_per_core == schedule.total_tiles
        assert not schedule.needs_cross_core_accumulation

    def test_training_vectors_per_core_scales_with_cores(self):
        two = training_schedule(300, 400, 512, self.GEOMETRY, num_cores=2)
        four = training_schedule(300, 400, 512, self.GEOMETRY, num_cores=4)
        assert four.vectors_per_core == two.vectors_per_core // 2

    def test_small_layer_has_single_tile(self):
        schedule = training_schedule(6, 16, 32, self.GEOMETRY, num_cores=2)
        assert schedule.total_tiles == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            inference_schedule(0, 10, self.GEOMETRY, 2)
        with pytest.raises(ValueError):
            training_schedule(10, 10, 0, self.GEOMETRY, 2)
        with pytest.raises(ValueError):
            training_schedule(10, 10, 8, self.GEOMETRY, 0)
        with pytest.raises(ValueError):
            ArrayGeometry(0, 16)
