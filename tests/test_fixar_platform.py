"""Unit tests for the end-to-end FIXAR platform timing model."""

import pytest

from repro.accelerator import AcceleratorConfig
from repro.envs import HalfCheetahEnv
from repro.platform import (
    PAPER_BATCH_SIZES,
    CpuGpuPlatform,
    FixarPlatform,
    WorkloadSpec,
)


@pytest.fixture
def platform():
    return FixarPlatform(WorkloadSpec("HalfCheetah", 17, 6))


class TestWorkloadSpec:
    def test_shapes_match_paper(self):
        spec = WorkloadSpec("HalfCheetah", 17, 6)
        assert spec.actor_shapes == [(17, 400), (400, 300), (300, 6)]
        assert spec.critic_shapes == [(23, 400), (400, 300), (300, 1)]

    def test_from_environment(self):
        spec = WorkloadSpec.from_environment(HalfCheetahEnv())
        assert spec.benchmark == "HalfCheetah"
        assert spec.state_dim == 17
        assert spec.action_dim == 6

    def test_custom_hidden_sizes(self):
        spec = WorkloadSpec("Hopper", 11, 6, hidden_sizes=(64, 48))
        assert spec.actor_shapes == [(11, 64), (64, 48), (48, 6)]


class TestBreakdown:
    def test_components_present(self, platform):
        breakdown = platform.timestep_breakdown(64)
        assert set(breakdown) == {"cpu_environment", "runtime", "fpga"}
        assert all(value > 0 for value in breakdown.values())

    def test_cpu_time_constant_fpga_time_linear(self, platform):
        """Fig. 9a: CPU ~constant, FPGA roughly linear in the batch size."""
        b64 = platform.timestep_breakdown(64)
        b512 = platform.timestep_breakdown(512)
        assert b512["cpu_environment"] < 1.5 * b64["cpu_environment"]
        assert b512["runtime"] < 2.0 * b64["runtime"]
        assert 4.0 < b512["fpga"] / b64["fpga"] < 10.0

    def test_bottleneck_shifts_to_fpga(self, platform):
        """Fig. 9b: CPU dominates at small batch, FPGA at large batch."""
        small = platform.timestep_ratio(64)
        large = platform.timestep_ratio(512)
        assert small["cpu_environment"] > small["fpga"] * 0.9
        assert large["fpga"] > large["cpu_environment"]
        assert sum(small.values()) == pytest.approx(1.0)
        assert sum(large.values()) == pytest.approx(1.0)

    def test_total_is_component_sum(self, platform):
        assert platform.timestep_seconds(128) == pytest.approx(
            sum(platform.timestep_breakdown(128).values())
        )


class TestThroughput:
    def test_platform_ips_grows_with_batch(self, platform):
        sweep = platform.sweep_platform_ips()
        values = [sweep[batch] for batch in PAPER_BATCH_SIZES]
        assert values == sorted(values)

    def test_headline_platform_ips_ballpark(self, platform):
        """Mean platform IPS over the paper's batch sweep ≈ 25.3 kIPS."""
        sweep = platform.sweep_platform_ips()
        mean_ips = sum(sweep.values()) / len(sweep)
        assert 18_000 < mean_ips < 33_000

    def test_accelerator_ips_flat_and_near_paper(self, platform):
        sweep = platform.sweep_accelerator_ips()
        assert min(sweep.values()) > 0.8 * max(sweep.values())
        assert 45_000 < max(sweep.values()) < 75_000

    def test_platform_beats_cpu_gpu_baseline(self, platform):
        """Fig. 8: FIXAR is 1.8–4.8× faster than the CPU-GPU platform."""
        baseline = CpuGpuPlatform()
        ratios = [
            platform.platform_ips(batch) / baseline.ips("HalfCheetah", batch)
            for batch in PAPER_BATCH_SIZES
        ]
        assert all(ratio > 1.5 for ratio in ratios)
        assert max(ratios) < 6.0
        # The advantage shrinks as the batch grows (GPU utilization improves).
        assert ratios[0] > ratios[-1]

    def test_energy_efficiency_near_paper(self, platform):
        """Fig. 10b: ≈2638 IPS/W, an order of magnitude above the GPU."""
        efficiency = platform.accelerator_ips_per_watt(256)
        assert 2_000 < efficiency < 3_600
        gpu = CpuGpuPlatform().gpu
        assert efficiency > 5 * gpu.ips_per_watt(256)

    def test_accelerator_watts_close_to_paper(self, platform):
        assert platform.accelerator_watts(512) == pytest.approx(20.4, abs=1.5)

    def test_half_precision_platform_faster(self):
        spec = WorkloadSpec("HalfCheetah", 17, 6)
        full = FixarPlatform(spec, half_precision=False)
        half = FixarPlatform(spec, half_precision=True)
        assert half.platform_ips(256) > full.platform_ips(256)

    def test_half_precision_prices_transfers_at_two_bytes(self):
        """The precision mode reaches the PCIe payload pricing, not just the
        datapath: half-precision values cross the link at 2 bytes each."""
        spec = WorkloadSpec("HalfCheetah", 17, 6)
        full = FixarPlatform(spec, half_precision=False)
        half = FixarPlatform(spec, half_precision=True)
        assert full.transfer_bytes_per_value == 4
        assert half.transfer_bytes_per_value == 2
        assert half.runtime_seconds(256) < full.runtime_seconds(256)
        assert half.infer_batch(8).pcie_bytes * 2 == full.infer_batch(8).pcie_bytes
        # An explicit override still wins over the platform's mode.
        assert half.runtime_seconds(256, bytes_per_value=4) == pytest.approx(
            full.runtime_seconds(256)
        )

    def test_more_cores_increase_throughput(self):
        spec = WorkloadSpec("HalfCheetah", 17, 6)
        two = FixarPlatform(spec, AcceleratorConfig(num_cores=2))
        four = FixarPlatform(spec, AcceleratorConfig(num_cores=4))
        assert four.accelerator_ips(512) > two.accelerator_ips(512)

    def test_utilization_high(self, platform):
        assert platform.accelerator_utilization(512) > 0.85


class TestBatchInference:
    """Batched rollout inference: the FixarPlatform.infer_batch hook."""

    def test_batched_latency_strictly_beats_serial(self, platform):
        single = platform.infer_batch(1)
        for num_states in (2, 8, 32, 128):
            batched = platform.infer_batch(num_states)
            # Weight loads and the PCIe round trip are amortised over the
            # batch, so batch-of-N must be strictly cheaper than N serial
            # single-state inferences — on the FPGA, on the runtime, and
            # end to end.
            assert batched.fpga_seconds < num_states * single.fpga_seconds
            assert batched.runtime_seconds < num_states * single.runtime_seconds
            assert batched.total_seconds < num_states * single.total_seconds

    def test_pcie_bytes_equal_batched_payload(self, platform):
        state_dim, action_dim = platform.workload.state_dim, platform.workload.action_dim
        for num_states in (1, 8, 32):
            report = platform.infer_batch(num_states)
            assert report.pcie_bytes == num_states * (state_dim + action_dim) * 4
            assert report.pcie_bytes == platform.pcie.inference_bytes(
                num_states, state_dim, action_dim
            )

    def test_energy_accounting(self, platform):
        single = platform.infer_batch(1)
        batched = platform.infer_batch(32)
        assert single.energy_joules > 0
        # Energy follows FPGA time: board power x batched pass latency, so
        # serving 32 states costs strictly less energy than 32 serial passes.
        assert batched.energy_joules < 32 * single.energy_joules
        assert batched.energy_joules == pytest.approx(
            platform.power.average_watts() * batched.fpga_seconds
        )

    def test_throughput_grows_with_batch(self, platform):
        rates = [platform.infer_batch(n).states_per_second for n in (1, 8, 32)]
        assert rates == sorted(rates)

    def test_invalid_batch_rejected(self, platform):
        with pytest.raises(ValueError):
            platform.infer_batch(0)

    def test_timestep_num_envs_amortises_rollout(self, platform):
        # A training timestep serving N envs is far cheaper than N scalar
        # timesteps, and num_envs=1 reproduces the original accounting.
        assert platform.timestep_seconds(64, num_envs=1) == platform.timestep_seconds(64)
        assert (
            platform.timestep_seconds(64, num_envs=32)
            < 32 * platform.timestep_seconds(64)
        )
        assert platform.env_steps_per_second(64, 32) > 4 * platform.env_steps_per_second(64, 1)

    def test_breakdown_num_envs_only_grows_components(self, platform):
        scalar = platform.timestep_breakdown(64)
        vector = platform.timestep_breakdown(64, num_envs=16)
        for component in scalar:
            assert vector[component] >= scalar[component]


class TestPipelinedSchedule:
    """Pricing of the pipelined training schedule (max instead of sum)."""

    def test_update_step_is_component_sum(self, platform):
        state_dim = platform.workload.state_dim
        action_dim = platform.workload.action_dim
        expected = (
            platform.host.update_phase_seconds(64)
            + platform.pcie.update_seconds(64, state_dim, action_dim)
            + platform.train_pass_seconds(64)
        )
        assert platform.update_step_seconds(64) == pytest.approx(expected)

    def test_train_pass_excludes_rollout_inference(self, platform):
        # The training-only FPGA pass plus the single-state inference must
        # reassemble the full timestep's FPGA time.
        inference = platform.timing.inference_seconds(
            platform.workload.actor_shapes, 1, half_precision=platform.half_precision
        )
        assert platform.train_pass_seconds(64) + inference == pytest.approx(
            platform.fpga_seconds(64)
        )

    def test_streamed_updates_amortise_invocation_overhead(self, platform):
        blocking = platform.update_round_seconds(64, 32, pipelined=False)
        streamed = platform.update_round_seconds(64, 32, pipelined=True)
        # One invocation overhead per round instead of one per update.
        assert streamed < blocking
        assert streamed >= 32 * platform.train_pass_seconds(64)
        assert platform.update_round_seconds(64, 0, pipelined=True) == 0.0
        with pytest.raises(ValueError):
            platform.update_round_seconds(64, -1)

    def test_pipelined_round_is_max_of_phases(self, platform):
        collection = platform.collection_round_seconds(8, 4)
        update = platform.update_round_seconds(64, 32, pipelined=True)
        inference_fpga = 4 * platform.infer_batch(8).fpga_seconds
        assert platform.pipelined_round_seconds(8, 4, 64) == pytest.approx(
            max(collection, update + inference_fpga)
        )
        # The sequential schedule pays the sum (with blocking invocations).
        assert platform.sequential_round_seconds(8, 4, 64) == pytest.approx(
            collection + platform.update_round_seconds(64, 32, pipelined=False)
        )

    def test_pipelined_never_slower_and_meets_contract(self, platform):
        for num_workers in (1, 2, 4):
            assert platform.pipelined_speedup(8, num_workers, 64) >= 1.0
        # The bench contract: >= 1.5x modelled steps/sec at 4 workers x 8 envs.
        assert platform.pipelined_speedup(8, 4, 64) >= 1.5

    def test_default_update_quota_is_one_per_env_step(self, platform):
        explicit = platform.pipelined_round_seconds(8, 4, 64, updates_per_round=32)
        assert platform.pipelined_round_seconds(8, 4, 64) == pytest.approx(explicit)

    def test_host_update_phase_accounting(self, platform):
        host = platform.host
        per_update = host.config.replay_sample_seconds_per_transition * 64
        assert host.update_phase_seconds(64) == pytest.approx(per_update)
        assert host.update_phase_seconds(64, updates=32) == pytest.approx(32 * per_update)
        with pytest.raises(ValueError):
            host.update_phase_seconds(0)
        with pytest.raises(ValueError):
            host.update_phase_seconds(64, updates=-1)

    def test_pcie_update_invocation_components(self, platform):
        pcie = platform.pcie
        assert pcie.update_bytes(64, 17, 6) == 64 * (2 * 17 + 6 + 2) * 4
        assert pcie.update_seconds(64, 17, 6) == pytest.approx(
            pcie.invocation_overhead_seconds + pcie.update_marginal_seconds(64, 17, 6)
        )
        with pytest.raises(ValueError):
            pcie.update_bytes(0, 17, 6)
