"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_train_defaults(self):
        args = build_parser().parse_args(["train"])
        assert args.benchmark == "HalfCheetah"
        assert args.regime == "fixar-dynamic"
        assert args.timesteps == 3_000

    def test_rejects_unknown_benchmark(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["train", "--benchmark", "Ant"])

    def test_throughput_batches(self):
        args = build_parser().parse_args(["throughput", "--batches", "32", "64"])
        assert args.batches == [32, 64]

    def test_train_worker_defaults(self):
        args = build_parser().parse_args(["train"])
        assert args.num_envs == 1
        assert args.num_workers == 1
        assert args.sync_interval == 1
        assert args.pipeline_depth == 0

    @pytest.mark.parametrize("value", ["-1", "one"])
    def test_rejects_bad_pipeline_depth_at_the_boundary(self, value, capsys):
        with pytest.raises(SystemExit) as excinfo:
            build_parser().parse_args(["train", "--pipeline-depth", value])
        assert excinfo.value.code == 2
        message = capsys.readouterr().err
        assert "--pipeline-depth" in message
        assert "non-negative integer" in message or "expected an integer" in message

    @pytest.mark.parametrize("flag", ["--num-envs", "--num-workers", "--sync-interval"])
    @pytest.mark.parametrize("value", ["0", "-3", "two"])
    def test_rejects_non_positive_counts_at_the_boundary(self, flag, value, capsys):
        """Values < 1 fail fast in the parser with a readable message, not as
        a deep VectorEnv/engine error."""
        with pytest.raises(SystemExit) as excinfo:
            build_parser().parse_args(["train", flag, value])
        assert excinfo.value.code == 2
        message = capsys.readouterr().err
        assert flag in message
        assert "positive integer" in message or "expected an integer" in message


class TestCommands:
    def test_resources_command(self, capsys):
        assert main(["resources"]) == 0
        output = capsys.readouterr().out
        assert "PEs" in output
        assert "fits Alveo U50: True" in output

    def test_resources_command_custom_design(self, capsys):
        assert main(["resources", "--cores", "8", "--array", "16", "16"]) == 0
        output = capsys.readouterr().out
        assert "fits Alveo U50: False" in output

    def test_compare_command_paper_numbers(self, capsys):
        assert main(["compare", "--use-paper-numbers"]) == 0
        output = capsys.readouterr().out
        assert "FA3C" in output
        assert "38779.8" in output

    def test_compare_command_modelled(self, capsys):
        assert main(["compare"]) == 0
        assert "FIXAR" in capsys.readouterr().out

    def test_throughput_command(self, capsys):
        assert main(["throughput", "--benchmark", "Swimmer", "--batches", "64", "256"]) == 0
        output = capsys.readouterr().out
        assert "FIXAR platform IPS" in output
        assert "speedup" in output
        assert "breakdown batch" in output

    def test_throughput_half_precision(self, capsys):
        assert main(["throughput", "--batches", "64", "--half-precision"]) == 0
        assert "half precision" in capsys.readouterr().out

    def test_train_command_quick(self, capsys, tmp_path):
        checkpoint = tmp_path / "agent.npz"
        exit_code = main(
            [
                "train",
                "--timesteps", "400",
                "--batch-size", "16",
                "--hidden", "24", "16",
                "--regime", "fixar-dynamic",
                "--checkpoint", str(checkpoint),
            ]
        )
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "reward curve" in output
        assert "precision switch" in output
        assert checkpoint.exists()

    def test_train_command_cosim(self, capsys):
        exit_code = main(
            ["train", "--timesteps", "300", "--batch-size", "16", "--hidden", "24", "16", "--cosim"]
        )
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "co-simulated platform trace" in output
        assert "platform_ips" in output

    def test_train_command_multi_worker(self, capsys):
        exit_code = main(
            [
                "train",
                "--timesteps", "240",
                "--batch-size", "16",
                "--hidden", "24", "16",
                "--regime", "float32",
                "--num-envs", "2",
                "--num-workers", "2",
            ]
        )
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "2 workers x 2 envs in lock-step" in output
        assert "reward curve" in output

    def test_cosim_rejects_multiple_workers(self, capsys):
        exit_code = main(
            ["train", "--timesteps", "200", "--num-workers", "2", "--cosim"]
        )
        assert exit_code == 2
        assert "--num-workers" in capsys.readouterr().err

    @pytest.mark.pipelined
    def test_train_command_pipelined(self, capsys):
        exit_code = main(
            [
                "train",
                "--timesteps", "240",
                "--batch-size", "16",
                "--hidden", "24", "16",
                "--regime", "float32",
                "--num-envs", "2",
                "--num-workers", "2",
                "--pipeline-depth", "1",
            ]
        )
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "pipelined depth 1 schedule" in output
        assert "reward curve" in output

    def test_cosim_rejects_pipelined_schedule(self, capsys):
        exit_code = main(
            ["train", "--timesteps", "200", "--pipeline-depth", "1", "--cosim"]
        )
        assert exit_code == 2
        assert "--pipeline-depth" in capsys.readouterr().err

    def test_cosim_rejects_schedule_flag(self, capsys):
        exit_code = main(
            ["train", "--timesteps", "200", "--schedule", "pipelined", "--cosim"]
        )
        assert exit_code == 2
        assert "--schedule" in capsys.readouterr().err

    def test_sequential_schedule_conflicts_with_depth(self, capsys):
        exit_code = main(
            [
                "train",
                "--timesteps", "200",
                "--schedule", "sequential",
                "--pipeline-depth", "2",
            ]
        )
        assert exit_code == 2
        assert "conflicts with pipeline_depth" in capsys.readouterr().err

    def test_train_command_explicit_sequential_schedule(self, capsys):
        exit_code = main(
            [
                "train",
                "--timesteps", "120",
                "--batch-size", "16",
                "--hidden", "24", "16",
                "--regime", "float32",
                "--num-envs", "2",
                "--schedule", "sequential",
            ]
        )
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "sequential schedule" in output
        assert "reward curve" in output

    def test_train_command_weighted_fleet_schedule(self, capsys):
        exit_code = main(
            [
                "train",
                "--fleet", "HalfCheetah:1,Hopper:1",
                "--timesteps", "96",
                "--batch-size", "16",
                "--hidden", "16", "12",
                "--regime", "float32",
                "--num-envs", "2",
                "--schedule", "weighted",
            ]
        )
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "weighted schedule" in output
        assert "Hopper reward curve" in output

    def test_fleet_accepts_mixed_width_spec(self, capsys):
        exit_code = main(
            [
                "train",
                "--fleet", "HalfCheetah:1:4,Hopper:1:2",
                "--timesteps", "96",
                "--batch-size", "16",
                "--hidden", "16", "12",
                "--regime", "float32",
            ]
        )
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "halfcheetah:1:4,hopper:1:2" in output
        assert "HalfCheetah reward curve" in output


class TestChoiceEnumeratingRejections:
    """Rejection errors for --placement/--assignment/--schedule enumerate
    the valid choices at the parser boundary (PR-7 validation sweep) —
    consistent with the positive-int validators, the user never needs the
    docs to learn what would have been accepted."""

    def test_placement_rejection_enumerates_choices(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            build_parser().parse_args(["train", "--placement", "remote"])
        assert excinfo.value.code == 2
        message = capsys.readouterr().err
        assert "--placement" in message
        for choice in ("colocated", "disaggregated"):
            assert choice in message

    def test_schedule_rejection_enumerates_choices(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            build_parser().parse_args(["train", "--schedule", "fifo"])
        assert excinfo.value.code == 2
        message = capsys.readouterr().err
        assert "--schedule" in message
        for choice in ("sequential", "pipelined", "weighted"):
            assert choice in message

    @pytest.mark.parametrize("value", ["fastest", "Hopper", "Hopper=,"])
    def test_assignment_rejection_enumerates_choices(self, value, capsys):
        with pytest.raises(SystemExit) as excinfo:
            build_parser().parse_args(["train", "--assignment", value])
        assert excinfo.value.code == 2
        message = capsys.readouterr().err
        assert "--assignment" in message
        assert "round-robin" in message
        assert "balanced" in message
        assert "Benchmark=device" in message

    def test_assignment_rejects_non_integer_device(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            build_parser().parse_args(["train", "--assignment", "Hopper=first"])
        assert excinfo.value.code == 2
        message = capsys.readouterr().err
        assert "--assignment" in message
        assert "integer" in message
        assert "Benchmark=device" in message

    def test_assignment_policy_names_parse(self):
        args = build_parser().parse_args(["train", "--assignment", "balanced"])
        assert args.assignment == "balanced"
        args = build_parser().parse_args(["train", "--assignment", "round-robin"])
        assert args.assignment == "round-robin"

    def test_assignment_mapping_parses_to_devices(self):
        args = build_parser().parse_args(
            ["train", "--assignment", "Hopper=0, HalfCheetah=1"]
        )
        assert args.assignment == {"Hopper": 0, "HalfCheetah": 1}

    def test_cosim_rejects_assignment(self, capsys):
        exit_code = main(
            ["train", "--cosim", "--assignment", "balanced", "--timesteps", "8"]
        )
        assert exit_code == 2
        assert "--assignment" in capsys.readouterr().err


class TestAssignmentFlag:
    """--assignment reaches the training path (not just the parser)."""

    def test_fleet_run_with_explicit_affinity(self, capsys):
        exit_code = main(
            [
                "train",
                "--fleet", "HalfCheetah:1,Hopper:1",
                "--timesteps", "96",
                "--batch-size", "16",
                "--hidden", "16", "12",
                "--regime", "float32",
                "--devices", "2",
                "--assignment", "Hopper=0,HalfCheetah=1",
            ]
        )
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "hopper->dev0" in output
        assert "halfcheetah->dev1" in output

    def test_fleet_run_with_balanced_assignment(self, capsys):
        exit_code = main(
            [
                "train",
                "--fleet", "HalfCheetah:1,Hopper:1",
                "--timesteps", "96",
                "--batch-size", "16",
                "--hidden", "16", "12",
                "--regime", "float32",
                "--devices", "2",
                "--assignment", "balanced",
            ]
        )
        assert exit_code == 0
        assert "device affinity:" in capsys.readouterr().out
