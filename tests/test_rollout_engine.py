"""Regression tests for the vectorized rollout engine and rewired train loop.

The load-bearing guarantee: ``train`` (which now drives every rollout
through :class:`~repro.rl.RolloutEngine`) with ``num_envs == 1`` reproduces
the pre-refactor scalar loop — preserved as
:func:`~repro.rl.train_scalar_reference` — *bit for bit* under a fixed
seed: same learning curve, same episode returns, same replay-buffer
contents, same final network weights.  That makes the refactor provably
behavior-preserving rather than merely statistically similar.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.envs import HalfCheetahEnv, HopperEnv, VectorEnv
from repro.nn import make_numerics
from repro.platform import FixarPlatform, WorkloadSpec
from repro.rl import (
    DDPGAgent,
    DDPGConfig,
    GaussianNoise,
    QATController,
    QATSchedule,
    ReplayBuffer,
    RolloutEngine,
    TD3Agent,
    TD3Config,
    TrainingConfig,
    train,
    train_scalar_reference,
)
from dataclasses import replace


def _agent(env, regime="float32", seed=42, cls=DDPGAgent, cfg_cls=DDPGConfig):
    return cls(
        env.state_dim,
        env.action_dim,
        cfg_cls(hidden_sizes=(24, 16)),
        numerics=make_numerics(regime),
        rng=np.random.default_rng(seed),
    )


def _config(**overrides):
    base = TrainingConfig(
        total_timesteps=300,
        warmup_timesteps=60,
        batch_size=16,
        buffer_capacity=5_000,
        evaluation_interval=100,
        evaluation_episodes=2,
        exploration_noise=0.2,
        seed=3,
    )
    return replace(base, **overrides)


def _assert_buffers_equal(first: ReplayBuffer, second: ReplayBuffer):
    assert len(first) == len(second)
    for attr in ("_states", "_actions", "_rewards", "_next_states", "_dones"):
        np.testing.assert_array_equal(getattr(first, attr), getattr(second, attr))


def _assert_agents_equal(first, second):
    for net in ("actor", "critic", "target_actor", "target_critic"):
        if not hasattr(first, net):
            continue
        left, right = getattr(first, net).parameters(), getattr(second, net).parameters()
        for name, value in left.items():
            np.testing.assert_array_equal(value, right[name], err_msg=f"{net}.{name}")


class TestScalarEquivalence:
    """train(num_envs=1) == train_scalar_reference, bit for bit."""

    def _run_pair(self, env_seed=5, **config_overrides):
        config = _config(**config_overrides)
        env = HopperEnv(seed=env_seed, max_episode_steps=40)
        reference_agent = _agent(env)
        reference = train_scalar_reference(
            HopperEnv(seed=env_seed, max_episode_steps=40),
            reference_agent,
            config,
            eval_env=HopperEnv(seed=9, max_episode_steps=40),
        )
        engine_agent = _agent(env)
        vectorized = train(
            HopperEnv(seed=env_seed, max_episode_steps=40),
            engine_agent,
            config,
            eval_env=HopperEnv(seed=9, max_episode_steps=40),
        )
        return reference, vectorized, reference_agent, engine_agent

    def test_returns_and_curve_identical(self):
        reference, vectorized, _, _ = self._run_pair()
        np.testing.assert_array_equal(reference.curve.timesteps, vectorized.curve.timesteps)
        np.testing.assert_array_equal(reference.curve.returns, vectorized.curve.returns)
        assert reference.episode_returns == vectorized.episode_returns
        assert reference.total_updates == vectorized.total_updates
        assert reference.total_timesteps == vectorized.total_timesteps

    def test_replay_buffer_contents_identical(self):
        reference, vectorized, _, _ = self._run_pair()
        _assert_buffers_equal(reference.replay_buffer, vectorized.replay_buffer)

    def test_final_weights_identical(self):
        _, _, reference_agent, engine_agent = self._run_pair()
        _assert_agents_equal(reference_agent, engine_agent)

    def test_equivalence_with_default_eval_env(self):
        """The fresh-instance evaluation-env path stays bit-identical too."""
        config = _config(total_timesteps=200)
        reference_agent = _agent(HopperEnv(seed=5))
        engine_agent = _agent(HopperEnv(seed=5))
        reference = train_scalar_reference(
            HopperEnv(seed=5, max_episode_steps=40), reference_agent, config
        )
        vectorized = train(HopperEnv(seed=5, max_episode_steps=40), engine_agent, config)
        np.testing.assert_array_equal(reference.curve.returns, vectorized.curve.returns)
        assert reference.episode_returns == vectorized.episode_returns
        _assert_buffers_equal(reference.replay_buffer, vectorized.replay_buffer)

    def test_equivalence_with_qat_controller(self):
        config = _config(total_timesteps=240)
        env = HalfCheetahEnv(seed=2, max_episode_steps=40)
        reference_agent = _agent(env, regime="fixar-dynamic")
        engine_agent = _agent(env, regime="fixar-dynamic")
        reference = train_scalar_reference(
            HalfCheetahEnv(seed=2, max_episode_steps=40),
            reference_agent,
            config,
            eval_env=HalfCheetahEnv(seed=8, max_episode_steps=40),
            qat_controller=QATController(
                reference_agent.numerics, QATSchedule(16, quantization_delay=120)
            ),
        )
        vectorized = train(
            HalfCheetahEnv(seed=2, max_episode_steps=40),
            engine_agent,
            config,
            eval_env=HalfCheetahEnv(seed=8, max_episode_steps=40),
            qat_controller=QATController(
                engine_agent.numerics, QATSchedule(16, quantization_delay=120)
            ),
        )
        assert reference.qat_event is not None and vectorized.qat_event is not None
        assert reference.qat_event.timestep == vectorized.qat_event.timestep
        np.testing.assert_array_equal(reference.curve.returns, vectorized.curve.returns)
        _assert_buffers_equal(reference.replay_buffer, vectorized.replay_buffer)
        _assert_agents_equal(reference_agent, engine_agent)

    def test_equivalence_for_td3(self):
        """The engine is algorithm-agnostic: TD3 matches its scalar run too."""
        config = _config(total_timesteps=200)
        env = HopperEnv(seed=5, max_episode_steps=40)
        reference_agent = _agent(env, cls=TD3Agent, cfg_cls=TD3Config)
        engine_agent = _agent(env, cls=TD3Agent, cfg_cls=TD3Config)
        reference = train_scalar_reference(
            HopperEnv(seed=5, max_episode_steps=40), reference_agent, config,
            eval_env=HopperEnv(seed=9, max_episode_steps=40),
        )
        vectorized = train(
            HopperEnv(seed=5, max_episode_steps=40), engine_agent, config,
            eval_env=HopperEnv(seed=9, max_episode_steps=40),
        )
        assert reference.episode_returns == vectorized.episode_returns
        _assert_buffers_equal(reference.replay_buffer, vectorized.replay_buffer)
        _assert_agents_equal(reference_agent, engine_agent)


class TestVectorizedTraining:
    @pytest.mark.parametrize("num_envs", [2, 4, 8])
    def test_multi_env_run_accounting(self, num_envs):
        config = _config(
            total_timesteps=320, warmup_timesteps=64, num_envs=num_envs,
            evaluation_interval=160,
        )
        env = HopperEnv(seed=5, max_episode_steps=40)
        result = train(env, _agent(env), config, eval_env=HopperEnv(seed=9, max_episode_steps=40))
        assert result.num_envs == num_envs
        assert result.total_timesteps == 320
        # One update per collected post-warmup step keeps the scalar loop's
        # update-to-data ratio at any lock-step width.
        assert result.total_updates == 320 - 64
        assert len(result.replay_buffer) == 320
        assert len(result.curve.points) == 2
        assert result.episode_returns  # 40-step horizon forces episode ends

    def test_accepts_prebuilt_vector_env(self):
        vec = VectorEnv.make("Hopper", 4, seed=11, max_episode_steps=40)
        agent = _agent(vec.envs[0])
        config = _config(total_timesteps=160, warmup_timesteps=32, num_envs=4)
        result = train(vec, agent, config, eval_env=HopperEnv(seed=9, max_episode_steps=40))
        assert result.num_envs == 4
        assert result.total_timesteps == 160

    def test_vectorized_learning_improves(self):
        """A short vectorized run actually learns, not just bookkeeps."""
        from repro.rl import evaluate_policy

        env = HalfCheetahEnv(seed=0, max_episode_steps=100)
        eval_env = HalfCheetahEnv(seed=1, max_episode_steps=100)
        agent = DDPGAgent(
            env.state_dim,
            env.action_dim,
            DDPGConfig(hidden_sizes=(24, 16), actor_learning_rate=2e-3, critic_learning_rate=2e-3),
            numerics=make_numerics("float32"),
            rng=np.random.default_rng(42),
        )
        untrained = evaluate_policy(eval_env, agent, episodes=3)
        config = TrainingConfig(
            total_timesteps=1_600,
            warmup_timesteps=200,
            batch_size=32,
            buffer_capacity=10_000,
            evaluation_interval=1_600,
            evaluation_episodes=3,
            exploration_noise=0.3,
            seed=0,
            num_envs=8,
        )
        result = train(env, agent, config, eval_env=eval_env)
        assert result.curve.final_return > untrained + 10.0


class TestRolloutEngine:
    def _engine(self, num_envs, **kwargs):
        vec = VectorEnv.make("Hopper", num_envs, seed=0, max_episode_steps=30)
        agent = _agent(vec.envs[0])
        return RolloutEngine(
            vec,
            agent,
            buffer=ReplayBuffer(10_000, vec.state_dim, vec.action_dim, seed=0),
            noise=GaussianNoise(vec.action_dim, 0.1, seed=0),
            rng=1,
            **kwargs,
        )

    def test_step_fills_buffer_in_bulk(self):
        engine = self._engine(4)
        transitions = engine.step()
        assert len(transitions) == 4
        assert len(engine.buffer) == 4
        assert engine.total_env_steps == 4

    def test_terminal_transitions_store_final_observation(self):
        engine = self._engine(3)
        saw_terminal = False
        for _ in range(40):
            transitions = engine.step()
            done_rows = np.flatnonzero(transitions.dones)
            for i in done_rows:
                saw_terminal = True
                final = transitions.infos[i]["final_observation"]
                np.testing.assert_array_equal(transitions.next_states[i], final)
                # The policy continues from the reset state, not the terminal.
                assert not np.array_equal(transitions.observations[i], final)
        assert saw_terminal
        assert engine.episode_returns

    def test_collect_counts_and_rounds_up(self):
        engine = self._engine(4)
        stats = engine.collect(10)  # 3 lock-steps of 4
        assert stats.total_steps == 12
        assert stats.iterations == 3
        assert stats.steps_per_second > 0

    def test_warmup_uses_uniform_actions(self):
        engine = self._engine(2, warmup_timesteps=10)
        transitions = engine.step()
        assert np.all(np.abs(transitions.actions) <= 1.0)

    def test_platform_hook_accumulates_modelled_time(self):
        vec = VectorEnv.make("Hopper", 4, seed=0, max_episode_steps=30)
        platform = FixarPlatform(WorkloadSpec.from_environment(vec))
        engine = self._engine(4, platform=platform)
        # Warmup steps are random actions: no inference is priced.
        engine.warmup_timesteps = 8
        engine.step()
        engine.step()
        assert engine.modelled_platform_seconds == 0.0
        engine.step()
        expected = platform.infer_batch(4).total_seconds
        assert engine.modelled_platform_seconds == pytest.approx(expected)

    def test_rejects_scalar_environment(self):
        env = HopperEnv(seed=0)
        with pytest.raises(TypeError, match="VectorEnv"):
            RolloutEngine(env, _agent(env))

    def test_noise_reset_once_per_lock_step(self):
        """K episodes ending in one lock-step reset the shared process once.

        The noise process is shared across the lock-stepped environments, so
        a lock-step where several episodes finish together must reset it a
        single time — resetting K times would, e.g., fast-forward an
        annealing wrapper K times per boundary.
        """

        class CountingNoise(GaussianNoise):
            resets = 0

            def reset(self):
                type(self).resets += 1
                super().reset()

        vec = VectorEnv.make("Swimmer", 4, seed=0, max_episode_steps=5)
        agent = _agent(vec.envs[0])
        engine = RolloutEngine(
            vec, agent, noise=CountingNoise(vec.action_dim, 0.1, seed=0), rng=1
        )
        engine.reset()
        # Swimmer never falls, so all 4 environments truncate together at
        # step 5 — one lock-step with 4 simultaneous episode ends.
        for _ in range(5):
            transitions = engine.step()
        assert int(transitions.dones.sum()) == 4
        assert CountingNoise.resets == 1


class TestGuards:
    def test_stateful_noise_rejected_for_multi_env(self):
        from repro.rl import DecayedNoise, GaussianNoise, OrnsteinUhlenbeckNoise

        vec = VectorEnv.make("Hopper", 4, seed=0, max_episode_steps=30)
        agent = _agent(vec.envs[0])
        # Stateful noise without a per-environment batch override (DecayedNoise
        # inherits the sequential-stacking default) stays rejected.
        with pytest.raises(ValueError, match="sample_batch"):
            RolloutEngine(
                vec, agent, noise=DecayedNoise(GaussianNoise(vec.action_dim, 0.1))
            )
        # OU now keeps one OU state per environment in batch mode, so the
        # guard accepts it at num_envs > 1.
        RolloutEngine(vec, agent, noise=OrnsteinUhlenbeckNoise(vec.action_dim))
        # Single-env keeps working with any stateful noise (scalar semantics).
        single = VectorEnv.make("Hopper", 1, seed=0, max_episode_steps=30)
        RolloutEngine(single, _agent(single.envs[0]), noise=OrnsteinUhlenbeckNoise(single.action_dim))

    def test_from_template_refuses_to_strip_wrappers(self):
        from repro.envs import ActionRepeat

        wrapped = ActionRepeat(HopperEnv(seed=0, max_episode_steps=30), repeat=2)
        with pytest.raises(ValueError, match="VectorEnv"):
            VectorEnv.from_template(wrapped, 4, seed=0)
