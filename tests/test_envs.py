"""Unit tests for the synthetic locomotion environments."""

import numpy as np
import pytest

from repro.envs import (
    BENCHMARK_SUITE,
    Environment,
    HalfCheetahEnv,
    HopperEnv,
    LocomotionConfig,
    LocomotionEnv,
    SwimmerEnv,
    available_benchmarks,
    benchmark_dimensions,
    make,
)


class TestEnvironmentContract:
    def test_step_before_reset_raises(self):
        env = HalfCheetahEnv(seed=0)
        with pytest.raises(RuntimeError):
            env.step(np.zeros(env.action_dim))

    def test_reset_returns_observation(self):
        env = HalfCheetahEnv(seed=0)
        obs = env.reset()
        assert obs.shape == (env.state_dim,)
        assert np.all(np.isfinite(obs))

    def test_step_result_unpacks(self):
        env = HalfCheetahEnv(seed=0)
        env.reset()
        obs, reward, done, info = env.step(np.zeros(env.action_dim))
        assert obs.shape == (env.state_dim,)
        assert isinstance(reward, float)
        assert isinstance(done, bool)
        assert isinstance(info, dict)

    def test_horizon_truncation(self):
        env = HalfCheetahEnv(seed=0, max_episode_steps=5)
        env.reset()
        for step in range(5):
            result = env.step(np.zeros(env.action_dim))
        assert result.done
        assert result.info["truncated"]

    def test_step_after_done_requires_reset(self):
        env = HalfCheetahEnv(seed=0, max_episode_steps=2)
        env.reset()
        env.step(np.zeros(env.action_dim))
        env.step(np.zeros(env.action_dim))
        with pytest.raises(RuntimeError):
            env.step(np.zeros(env.action_dim))

    def test_actions_are_clipped(self):
        env = HalfCheetahEnv(seed=0)
        env.reset()
        # A wildly out-of-range action must not blow up the dynamics.
        result = env.step(np.full(env.action_dim, 1e6))
        assert np.all(np.isfinite(result.observation))
        assert np.isfinite(result.reward)

    def test_seeding_reproducible(self):
        env_a = HalfCheetahEnv(seed=42)
        env_b = HalfCheetahEnv(seed=42)
        obs_a = env_a.reset()
        obs_b = env_b.reset()
        np.testing.assert_allclose(obs_a, obs_b)
        action = np.full(env_a.action_dim, 0.3)
        np.testing.assert_allclose(env_a.step(action).reward, env_b.step(action).reward)


class TestPaperDimensions:
    def test_halfcheetah_dimensions(self):
        env = HalfCheetahEnv()
        assert env.state_dim == 17
        assert env.action_dim == 6

    def test_hopper_dimensions(self):
        env = HopperEnv()
        assert env.state_dim == 11
        assert env.action_dim == 6

    def test_swimmer_dimensions(self):
        env = SwimmerEnv()
        assert env.state_dim == 8
        assert env.action_dim == 2


class TestLocomotionDynamics:
    def test_good_action_beats_zero_action(self):
        env = HalfCheetahEnv(seed=0, max_episode_steps=200)
        env.reset()
        good = 0.0
        for _ in range(200):
            result = env.step(env.optimal_action())
            good += result.reward
        env = HalfCheetahEnv(seed=0, max_episode_steps=200)
        env.reset()
        idle = 0.0
        for _ in range(200):
            idle += env.step(np.zeros(env.action_dim)).reward
        assert good > idle + 50.0

    def test_control_cost_penalises_wasteful_actions(self):
        config = LocomotionConfig(state_dim=6, action_dim=2, control_cost=1.0, structure_seed=3)
        env = LocomotionEnv(config, seed=0)
        env.reset()
        # An action orthogonal to the gait direction produces no thrust but
        # still pays the control cost.
        direction = env.gait_direction
        orthogonal = np.array([-direction[1], direction[0]])
        rewards = [env.step(orthogonal).reward for _ in range(20)]
        assert np.mean(rewards) < 0.0

    def test_hopper_falls_under_violent_actions(self):
        env = HopperEnv(seed=0, max_episode_steps=1000)
        env.reset()
        rng = np.random.default_rng(0)
        terminated = False
        for _ in range(1000):
            action = rng.choice([-1.0, 1.0], size=env.action_dim)
            result = env.step(action)
            if result.info.get("terminated"):
                terminated = True
                break
            if result.done:
                break
        assert terminated, "violent bang-bang control should eventually topple the hopper"

    def test_halfcheetah_never_terminates_early(self):
        env = HalfCheetahEnv(seed=0, max_episode_steps=300)
        env.reset()
        rng = np.random.default_rng(1)
        for step in range(300):
            result = env.step(rng.uniform(-1, 1, env.action_dim))
            if result.done:
                break
        assert step == 299
        assert result.info["truncated"]

    def test_info_contains_velocity(self):
        env = SwimmerEnv(seed=0)
        env.reset()
        info = env.step(np.zeros(env.action_dim)).info
        assert "velocity" in info
        assert "control_cost" in info

    def test_invalid_config_rejected(self):
        with pytest.raises(ValueError):
            LocomotionConfig(state_dim=0, action_dim=2)
        with pytest.raises(ValueError):
            LocomotionConfig(state_dim=4, action_dim=2, damping=1.5)


class TestRegistry:
    def test_suite_names(self):
        assert set(BENCHMARK_SUITE) == {"HalfCheetah", "Hopper", "Swimmer"}

    def test_make_all_benchmarks(self):
        for name in BENCHMARK_SUITE:
            env = make(name, seed=0)
            assert isinstance(env, Environment)
            assert env.name == name

    def test_make_is_case_insensitive(self):
        assert make("halfcheetah").name == "HalfCheetah"

    def test_unknown_benchmark_raises(self):
        with pytest.raises(KeyError):
            make("Ant")

    def test_available_benchmarks_sorted(self):
        names = available_benchmarks()
        assert names == sorted(names)
        assert len(names) >= 3

    def test_benchmark_dimensions(self):
        dims = benchmark_dimensions("Swimmer")
        assert dims == {"state_dim": 8, "action_dim": 2}
