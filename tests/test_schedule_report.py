"""Tests for the per-layer mapping and memory-footprint reports."""

import pytest

from repro.accelerator import (
    AcceleratorConfig,
    layer_mapping_report,
    memory_footprint_report,
    workload_mapping_report,
)

ACTOR_SHAPES = [(17, 400), (400, 300), (300, 6)]
CRITIC_SHAPES = [(23, 400), (400, 300), (300, 1)]


class TestLayerMappingReport:
    def test_one_row_per_layer(self):
        rows = layer_mapping_report(ACTOR_SHAPES, batch_size=256)
        assert len(rows) == 3
        assert rows[0]["Layer"].startswith("L0")
        assert rows[1]["Layer"] == "L1 (400x300)"

    def test_training_mode_uses_intra_batch(self):
        rows = layer_mapping_report(ACTOR_SHAPES, batch_size=256)
        assert all(row["Parallelism"] == "intra-batch" for row in rows)
        assert all(row["Vectors/core"] == 128 for row in rows)

    def test_inference_mode_uses_intra_layer(self):
        rows = layer_mapping_report(ACTOR_SHAPES, batch_size=1)
        assert all(row["Parallelism"] == "intra-layer" for row in rows)
        assert all(row["Vectors/core"] == 1 for row in rows)

    def test_half_precision_reduces_row_chunks(self):
        full = layer_mapping_report(ACTOR_SHAPES, 256, half_precision=False)
        half = layer_mapping_report(ACTOR_SHAPES, 256, half_precision=True)
        assert half[1]["Row chunks"] < full[1]["Row chunks"]
        assert half[1]["FP cycles"] < full[1]["FP cycles"]

    def test_largest_layer_dominates_cycles(self):
        rows = layer_mapping_report(ACTOR_SHAPES, 256)
        cycles = [row["FP cycles"] for row in rows]
        assert cycles[1] == max(cycles)

    def test_utilization_bounded(self):
        rows = layer_mapping_report(ACTOR_SHAPES, 512)
        assert all(0 < row["PE utilization (%)"] <= 100 for row in rows)


class TestWorkloadMappingReport:
    def test_covers_both_networks(self):
        rows = workload_mapping_report(ACTOR_SHAPES, CRITIC_SHAPES, 256)
        assert len(rows) == 6
        assert {row["Network"] for row in rows} == {"actor", "critic"}


class TestMemoryFootprintReport:
    def test_paper_workload_fits(self):
        report = memory_footprint_report(ACTOR_SHAPES, CRITIC_SHAPES)
        assert report["fits_weight_memory"]
        assert report["fits_activation_memory"]
        assert 0.9 < report["weight_memory_utilization"] <= 1.0
        assert report["actor_parameters"] == 17 * 400 + 400 + 400 * 300 + 300 + 300 * 6 + 6

    def test_oversized_workload_detected(self):
        huge = [(1000, 1000), (1000, 1000)]
        report = memory_footprint_report(huge, huge)
        assert not report["fits_weight_memory"]

    def test_half_precision_weights_halve_footprint(self):
        full = memory_footprint_report(ACTOR_SHAPES, CRITIC_SHAPES, bits_per_weight=32)
        half = memory_footprint_report(ACTOR_SHAPES, CRITIC_SHAPES, bits_per_weight=16)
        assert half["weight_bytes"] == full["weight_bytes"] // 2

    def test_custom_config(self):
        tiny = AcceleratorConfig(weight_memory_bytes=1024)
        report = memory_footprint_report(ACTOR_SHAPES, CRITIC_SHAPES, config=tiny)
        assert not report["fits_weight_memory"]
        assert report["weight_memory_utilization"] > 1.0
