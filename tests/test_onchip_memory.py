"""Unit tests for the on-chip memory models."""

import numpy as np
import pytest

from repro.accelerator import (
    ActivationMemory,
    BRAM_BYTES,
    GradientMemory,
    MemoryError_,
    OnChipMemory,
    WeightMemory,
)


class TestOnChipMemory:
    def test_row_layout(self):
        memory = OnChipMemory("test", capacity_bytes=4096, row_bits=512, word_bits=32)
        assert memory.words_per_row == 16
        assert memory.total_rows == 4096 * 8 // 512

    def test_invalid_layout_rejected(self):
        with pytest.raises(ValueError):
            OnChipMemory("bad", capacity_bytes=0)
        with pytest.raises(ValueError):
            OnChipMemory("bad", capacity_bytes=1024, row_bits=500, word_bits=32)

    def test_allocate_and_capacity_tracking(self):
        memory = OnChipMemory("test", capacity_bytes=1024)
        memory.allocate("a", (64,))       # 256 bytes
        assert memory.used_bytes == 256
        assert memory.free_bytes == 768
        assert 0 < memory.utilization < 1

    def test_allocation_overflow_raises(self):
        memory = OnChipMemory("test", capacity_bytes=128)
        with pytest.raises(MemoryError_):
            memory.allocate("too_big", (64,))  # 256 bytes > 128

    def test_duplicate_segment_rejected(self):
        memory = OnChipMemory("test", capacity_bytes=1024)
        memory.allocate("a", (4,))
        with pytest.raises(MemoryError_):
            memory.allocate("a", (4,))

    def test_free_releases_capacity(self):
        memory = OnChipMemory("test", capacity_bytes=1024)
        memory.allocate("a", (64,))
        memory.free("a")
        assert memory.used_bytes == 0
        memory.allocate("a", (64,))  # can be re-allocated

    def test_free_unknown_segment_raises(self):
        memory = OnChipMemory("test", capacity_bytes=1024)
        with pytest.raises(MemoryError_):
            memory.free("missing")

    def test_write_read_roundtrip(self):
        memory = OnChipMemory("test", capacity_bytes=1024)
        memory.allocate("a", (32,))
        data = np.arange(32, dtype=np.int64)
        rows = memory.write("a", data)
        assert rows == 2  # 32 words / 16 per row
        out = memory.read("a")
        np.testing.assert_array_equal(out, data)

    def test_partial_write_with_offset(self):
        memory = OnChipMemory("test", capacity_bytes=1024)
        memory.allocate("a", (32,))
        memory.write("a", np.full(8, 7, dtype=np.int64), offset=8)
        out = memory.read("a", count=8, offset=8)
        assert np.all(out == 7)

    def test_out_of_bounds_access_raises(self):
        memory = OnChipMemory("test", capacity_bytes=1024)
        memory.allocate("a", (16,))
        with pytest.raises(MemoryError_):
            memory.write("a", np.zeros(32, dtype=np.int64))
        with pytest.raises(MemoryError_):
            memory.read("a", count=32)

    def test_access_counters(self):
        memory = OnChipMemory("test", capacity_bytes=1024)
        memory.allocate("a", (32,))
        memory.write("a", np.zeros(32, dtype=np.int64))
        memory.read("a")
        assert memory.stats.writes == 1
        assert memory.stats.reads == 1
        assert memory.stats.written_rows == 2
        assert memory.stats.read_rows == 2

    def test_view_is_mutable(self):
        memory = OnChipMemory("test", capacity_bytes=1024)
        memory.allocate("a", (4,))
        memory.view("a")[0] = 42
        assert memory.read("a")[0] == 42

    def test_bram_count(self):
        memory = OnChipMemory("test", capacity_bytes=10 * BRAM_BYTES)
        assert memory.bram_count() == 10


class TestPaperMemories:
    def test_weight_memory_default_capacity(self):
        assert WeightMemory().capacity_bytes == int(1.05 * 1024 * 1024)

    def test_gradient_memory_matches_weight_memory(self):
        assert GradientMemory().capacity_bytes == WeightMemory().capacity_bytes

    def test_activation_memory_default_capacity(self):
        assert ActivationMemory().capacity_bytes == int(2.94 * 1024)

    def test_paper_model_fits_weight_memory(self):
        """Actor (17-400-300-6) + critic (23-400-300-1) fit at 32-bit weights."""
        actor_params = 17 * 400 + 400 + 400 * 300 + 300 + 300 * 6 + 6
        critic_params = 23 * 400 + 400 + 400 * 300 + 300 + 300 * 1 + 1
        total_bytes = (actor_params + critic_params) * 4
        assert total_bytes <= WeightMemory().capacity_bytes

    def test_activation_memory_holds_all_three_layers(self):
        """400 + 300 + action activations fit in 2.94 KB at 32-bit."""
        activations = 400 + 300 + 6
        assert activations * 4 <= ActivationMemory().capacity_bytes
