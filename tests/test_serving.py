"""Property tests for the policy-serving front end (``repro.serving``).

The serving subsystem is built determinism-first, so these tests pin exact
equivalences, not just smoke: request conservation through the queue and
batcher, the batch cap and SLO bounds, ``batch_cap=1`` bit-exactness with
a sequential ``infer_batch(1)`` loop, pool-sharded state-count
conservation, seeded load-generator determinism, and the checkpoint→server
round trip for a partially precision-switched actor.

Part of the CI smoke set; select alone with ``pytest -m serving``.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.nn import make_numerics
from repro.platform import AcceleratorPool, FixarPlatform, WorkloadSpec
from repro.rl import ActorPolicy, DDPGAgent, DDPGConfig, save_agent
from repro.serving import (
    DynamicBatcher,
    InferenceRequest,
    PolicyServer,
    RequestQueue,
    ServingConfig,
    ServingReport,
    SyntheticLoadGenerator,
    restore_serving_agent,
)

pytestmark = [pytest.mark.smoke, pytest.mark.serving]

STATE_DIM = 17
ACTION_DIM = 6
HIDDEN = (32, 24)


def _platform(hidden=HIDDEN) -> FixarPlatform:
    return FixarPlatform(
        WorkloadSpec.from_benchmark("HalfCheetah", hidden_sizes=hidden)
    )


def _agent(rng, regime="float32", hidden=HIDDEN) -> DDPGAgent:
    return DDPGAgent(
        STATE_DIM,
        ACTION_DIM,
        DDPGConfig(hidden_sizes=hidden),
        numerics=make_numerics(regime),
        rng=rng,
    )


def _requests(arrivals, state_dim=STATE_DIM):
    """Hand-built requests at explicit modelled arrival times."""
    rng = np.random.default_rng(7)
    return [
        InferenceRequest(
            request_id=index,
            state=rng.standard_normal(state_dim),
            arrival_seconds=float(arrival),
        )
        for index, arrival in enumerate(arrivals)
    ]


# --------------------------------------------------------------------- #
# RequestQueue
# --------------------------------------------------------------------- #
class TestRequestQueue:
    def test_fifo_order(self):
        queue = RequestQueue()
        requests = _requests([0.0, 0.1, 0.2])
        for request in requests:
            queue.enqueue(request)
        popped = queue.pop_batch(3)
        assert [r.request_id for r in popped] == [0, 1, 2]

    def test_len_tracks_enqueue_and_pop(self):
        queue = RequestQueue()
        queue.enqueue_many(_requests([0.0, 0.1, 0.2, 0.3]))
        assert len(queue) == 4
        queue.pop_batch(3)
        assert len(queue) == 1

    def test_pop_batch_bounded_by_max_size(self):
        queue = RequestQueue()
        queue.enqueue_many(_requests(np.linspace(0, 1, 10)))
        assert len(queue.pop_batch(4)) == 4

    def test_pop_batch_on_empty_queue_returns_empty(self):
        assert RequestQueue().pop_batch(5) == []

    def test_pop_batch_rejects_non_positive(self):
        with pytest.raises(ValueError):
            RequestQueue().pop_batch(0)

    def test_peek_does_not_remove(self):
        queue = RequestQueue()
        queue.enqueue_many(_requests([0.0, 0.1]))
        assert queue.peek().request_id == 0
        assert len(queue) == 2

    def test_peek_empty_returns_none(self):
        assert RequestQueue().peek() is None

    def test_conservation_counters(self):
        queue = RequestQueue()
        assert queue.enqueue_many(_requests(np.linspace(0, 1, 6))) == 6
        queue.pop_batch(4)
        queue.pop_batch(4)
        assert queue.enqueued_total == 6
        assert queue.popped_total == 6
        assert len(queue) == 0

    def test_concurrent_enqueue_while_flushing(self):
        """Threaded producers vs a popping consumer: every request popped
        exactly once, none lost, none duplicated — the ReplayBuffer-style
        lock-discipline guarantee for the serving queue."""
        queue = RequestQueue()
        per_producer = 500
        num_producers = 3
        errors = []
        seen = []
        stop = threading.Event()

        def producer(base):
            try:
                for index in range(per_producer):
                    queue.enqueue(
                        InferenceRequest(
                            request_id=base + index,
                            state=np.zeros(1),
                            arrival_seconds=0.0,
                        )
                    )
            except Exception as exc:  # pragma: no cover - surfaced below
                errors.append(exc)

        def consumer():
            try:
                while not stop.is_set() or len(queue):
                    for request in queue.pop_batch(16) or []:
                        seen.append(request.request_id)
            except Exception as exc:  # pragma: no cover - surfaced below
                errors.append(exc)

        producers = [
            threading.Thread(target=producer, args=(rank * per_producer,))
            for rank in range(num_producers)
        ]
        drain = threading.Thread(target=consumer)
        drain.start()
        for thread in producers:
            thread.start()
        for thread in producers:
            thread.join(timeout=60)
        stop.set()
        drain.join(timeout=60)
        assert not errors
        assert not drain.is_alive()
        expected = num_producers * per_producer
        assert queue.enqueued_total == expected
        assert queue.popped_total == expected
        assert sorted(seen) == list(range(expected))  # exactly once each


# --------------------------------------------------------------------- #
# SyntheticLoadGenerator
# --------------------------------------------------------------------- #
class TestSyntheticLoad:
    def test_same_seed_identical_trace(self):
        a = SyntheticLoadGenerator(STATE_DIM, qps=1000.0, seed=5).generate(64)
        b = SyntheticLoadGenerator(STATE_DIM, qps=1000.0, seed=5).generate(64)
        assert [r.arrival_seconds for r in a] == [r.arrival_seconds for r in b]
        np.testing.assert_array_equal(
            np.stack([r.state for r in a]), np.stack([r.state for r in b])
        )

    def test_different_seeds_distinct_traces(self):
        a = SyntheticLoadGenerator(STATE_DIM, qps=1000.0, seed=5).generate(64)
        b = SyntheticLoadGenerator(STATE_DIM, qps=1000.0, seed=6).generate(64)
        assert [r.arrival_seconds for r in a] != [r.arrival_seconds for r in b]

    def test_arrivals_sorted_and_positive(self):
        trace = SyntheticLoadGenerator(STATE_DIM, qps=500.0, seed=0).generate(128)
        arrivals = [r.arrival_seconds for r in trace]
        assert arrivals == sorted(arrivals)
        assert arrivals[0] > 0

    def test_request_ids_are_arrival_ranks(self):
        trace = SyntheticLoadGenerator(STATE_DIM, qps=500.0, seed=0).generate(32)
        assert [r.request_id for r in trace] == list(range(32))

    def test_mean_rate_tracks_qps(self):
        qps = 2000.0
        trace = SyntheticLoadGenerator(STATE_DIM, qps=qps, seed=1).generate(4096)
        empirical = len(trace) / trace[-1].arrival_seconds
        assert empirical == pytest.approx(qps, rel=0.1)

    def test_state_shape_matches_state_dim(self):
        trace = SyntheticLoadGenerator(11, qps=100.0, seed=0).generate(4)
        assert all(r.state.shape == (11,) for r in trace)

    def test_fill_enqueues_the_trace(self):
        queue = RequestQueue()
        load = SyntheticLoadGenerator(STATE_DIM, qps=100.0, seed=0)
        requests = load.fill(queue, 12)
        assert len(queue) == 12 == len(requests)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            SyntheticLoadGenerator(0, qps=1.0)
        with pytest.raises(ValueError):
            SyntheticLoadGenerator(STATE_DIM, qps=0.0)
        with pytest.raises(ValueError):
            SyntheticLoadGenerator(STATE_DIM, qps=1.0).generate(0)


# --------------------------------------------------------------------- #
# DynamicBatcher invariants
# --------------------------------------------------------------------- #
class TestDynamicBatcher:
    def _plan(self, arrivals, batch_cap=4, slo=0.05, timeout=None, platform=None):
        platform = platform or _platform()
        queue = RequestQueue()
        queue.enqueue_many(_requests(arrivals))
        batcher = DynamicBatcher(
            platform, batch_cap=batch_cap, slo_seconds=slo, timeout_seconds=timeout
        )
        return batcher.plan(queue), batcher

    def test_every_request_served_exactly_once(self):
        arrivals = np.cumsum(np.full(37, 1e-3))
        plan, _ = self._plan(arrivals, batch_cap=5)
        served = [rid for flush in plan for rid in flush.request_ids]
        assert sorted(served) == list(range(37))

    def test_fifo_within_and_across_flushes(self):
        arrivals = np.cumsum(np.full(24, 5e-4))
        plan, _ = self._plan(arrivals, batch_cap=6)
        served = [rid for flush in plan for rid in flush.request_ids]
        assert served == sorted(served)  # queue order is arrival order

    def test_batch_cap_never_exceeded(self):
        arrivals = np.cumsum(np.full(100, 1e-5))  # dense burst
        plan, _ = self._plan(arrivals, batch_cap=8)
        assert max(flush.batch_size for flush in plan) <= 8

    def test_slo_respected_by_every_request(self):
        """Offered load well under the cap's capacity: every modelled
        latency sits inside the SLO (the derived-timeout guarantee)."""
        load = SyntheticLoadGenerator(STATE_DIM, qps=1500.0, seed=9)
        queue = RequestQueue()
        queue.enqueue_many(load.generate(512))
        batcher = DynamicBatcher(_platform(), batch_cap=8, slo_seconds=0.02)
        plan = batcher.plan(queue)
        worst = max(latency for flush in plan for latency in flush.latencies)
        assert worst <= 0.02

    def test_derived_timeout_is_slo_minus_cap_service(self):
        platform = _platform()
        batcher = DynamicBatcher(platform, batch_cap=8, slo_seconds=0.02)
        expected = 0.02 - platform.serving_round_seconds(8)
        assert batcher.timeout_seconds == expected

    def test_burst_of_cap_flushes_immediately(self):
        """cap simultaneous arrivals: one full flush at the arrival time,
        latency exactly the flush's service time."""
        platform = _platform()
        plan, _ = self._plan([1e-3] * 4, batch_cap=4, platform=platform)
        assert len(plan) == 1
        flush = plan[0]
        assert flush.flush_seconds == pytest.approx(1e-3)
        service = platform.serving_round_seconds(4)
        assert all(latency == pytest.approx(service) for latency in flush.latencies)

    def test_sparse_arrivals_flush_singletons_at_timeout(self):
        """Gaps longer than the timeout: every flush is a timeout flush of
        one request, at arrival + timeout."""
        plan, batcher = self._plan([0.0, 1.0, 2.0], batch_cap=4, slo=0.05)
        assert [flush.batch_size for flush in plan] == [1, 1, 1]
        for flush in plan:
            assert flush.flush_seconds == pytest.approx(
                flush.arrival_seconds[0] + batcher.timeout_seconds
            )

    def test_zero_timeout_flushes_waiting_requests_only(self):
        """timeout 0: a flush takes exactly the requests already waiting."""
        arrivals = [1e-3, 1e-3, 1e-3, 5.0]
        plan, _ = self._plan(arrivals, batch_cap=8, timeout=0.0)
        assert [flush.batch_size for flush in plan] == [3, 1]

    def test_backlog_drains_in_cap_sized_flushes(self):
        """A burst far beyond the cap drains as consecutive full flushes,
        each starting when the previous completes."""
        plan, _ = self._plan([1e-3] * 12, batch_cap=4)
        assert [flush.batch_size for flush in plan] == [4, 4, 4]
        for previous, flush in zip(plan, plan[1:]):
            assert flush.flush_seconds == pytest.approx(
                previous.completion_seconds
            )

    def test_cap_one_bit_exact_with_sequential_infer_batch_loop(self):
        """batch_cap=1 reduces to a sequential infer_batch(1) loop:
        identical flush times, completions, and latencies, bitwise."""
        platform = _platform()
        load = SyntheticLoadGenerator(STATE_DIM, qps=400.0, seed=3)
        requests = load.generate(64)
        queue = RequestQueue()
        queue.enqueue_many(requests)
        plan = DynamicBatcher(platform, batch_cap=1, slo_seconds=0.05).plan(queue)

        service = platform.infer_batch(1).total_seconds
        free_at = 0.0
        for request, flush in zip(requests, plan):
            start = max(free_at, request.arrival_seconds)
            completion = start + service
            assert flush.request_ids == (request.request_id,)
            assert flush.flush_seconds == start  # bit-exact, not approx
            assert flush.service_seconds == service
            assert flush.completion_seconds == completion
            free_at = completion

    def test_flush_pricing_matches_infer_batch(self):
        platform = _platform()
        plan, _ = self._plan([1e-3] * 6, batch_cap=6, platform=platform)
        report = platform.infer_batch(6)
        assert plan[0].pcie_bytes == report.pcie_bytes
        assert plan[0].energy_joules == report.energy_joules
        assert plan[0].service_seconds == report.total_seconds

    def test_invalid_parameters_rejected(self):
        platform = _platform()
        with pytest.raises(ValueError):
            DynamicBatcher(platform, batch_cap=0, slo_seconds=0.02)
        with pytest.raises(ValueError):
            DynamicBatcher(platform, batch_cap=1, slo_seconds=0.0)
        with pytest.raises(ValueError):
            DynamicBatcher(
                platform, batch_cap=1, slo_seconds=0.02, timeout_seconds=-1.0
            )


# --------------------------------------------------------------------- #
# Platform serving oracle
# --------------------------------------------------------------------- #
class TestServingOracle:
    def test_platform_serving_round_is_infer_batch_latency(self):
        platform = _platform()
        for batch in (1, 4, 32):
            assert (
                platform.serving_round_seconds(batch)
                == platform.infer_batch(batch).total_seconds
            )

    def test_pool_serving_round_is_sharded_latency(self):
        pool = AcceleratorPool(_platform(), 3)
        assert (
            pool.serving_round_seconds(10)
            == pool.infer_batch(10).total_seconds
        )

    def test_one_device_pool_prices_like_the_platform(self):
        platform = _platform()
        pool = AcceleratorPool(platform, 1)
        for batch in (1, 8, 64):
            assert pool.serving_round_seconds(batch) == platform.serving_round_seconds(batch)

    def test_half_precision_state_halves_serving_payload(self):
        full = _platform()
        half = full.with_precision_state({"default": 16, "layers": {}})
        for batch in (1, 8):
            assert (
                half.infer_batch(batch).pcie_bytes
                == full.infer_batch(batch).pcie_bytes / 2
            )


# --------------------------------------------------------------------- #
# PolicyServer
# --------------------------------------------------------------------- #
class TestPolicyServer:
    CONFIG = ServingConfig(
        num_requests=96, qps=1500.0, slo_seconds=0.02, batch_cap=8, seed=3
    )

    def _server(self, rng, platform=None, config=None):
        agent = _agent(rng)
        return (
            PolicyServer.from_agent(
                agent, platform or _platform(), config or self.CONFIG
            ),
            agent,
        )

    def test_served_actions_match_direct_actor_policy(self, rng):
        server, agent = self._server(rng)
        requests = SyntheticLoadGenerator(STATE_DIM, 1500.0, seed=3).generate(96)
        result = server.serve(requests)
        states = np.stack([r.state for r in requests])
        expected = ActorPolicy.from_agent(agent).act_batch(states)
        np.testing.assert_array_equal(result.actions, expected)

    def test_report_conserves_requests(self, rng):
        server, _ = self._server(rng)
        result = server.serve_load(SyntheticLoadGenerator(STATE_DIM, 1500.0, seed=3))
        report = result.report
        assert report.num_requests == 96
        assert sum(f.batch_size for f in report.flushes) == 96
        assert len(report.latencies) == 96

    def test_report_headline_numbers(self, rng):
        server, _ = self._server(rng)
        report = server.serve_load(
            SyntheticLoadGenerator(STATE_DIM, 1500.0, seed=3)
        ).report
        assert report.qps > 0
        assert report.p50_seconds <= report.p99_seconds <= report.max_latency_seconds
        assert report.p99_seconds <= report.slo_seconds
        assert report.slo_attainment == 1.0
        per_request = report.pcie_bytes / report.num_requests
        assert report.pcie_bytes_per_request == per_request

    def test_same_seed_identical_serving_report(self, rng):
        server, _ = self._server(rng)
        first = server.serve_load(SyntheticLoadGenerator(STATE_DIM, 1500.0, seed=3))
        second = server.serve_load(SyntheticLoadGenerator(STATE_DIM, 1500.0, seed=3))
        assert first.report == second.report  # exact dataclass equality
        np.testing.assert_array_equal(first.actions, second.actions)

    def test_different_seed_different_report(self, rng):
        server, _ = self._server(rng)
        first = server.serve_load(SyntheticLoadGenerator(STATE_DIM, 1500.0, seed=3))
        second = server.serve_load(SyntheticLoadGenerator(STATE_DIM, 1500.0, seed=4))
        assert first.report != second.report

    def test_cap_one_server_matches_sequential_loop_reference(self, rng):
        """End-to-end batch_cap=1 equivalence at the server level: the
        report's latencies equal the sequential infer_batch(1) recurrence."""
        config = ServingConfig(
            num_requests=48, qps=400.0, slo_seconds=0.05, batch_cap=1, seed=5
        )
        server, _ = self._server(rng, config=config)
        requests = SyntheticLoadGenerator(STATE_DIM, 400.0, seed=5).generate(48)
        report = server.serve(requests).report

        platform = _platform()
        service = platform.infer_batch(1).total_seconds
        free_at = 0.0
        expected = []
        for request in requests:
            completion = max(free_at, request.arrival_seconds) + service
            expected.append(completion - request.arrival_seconds)
            free_at = completion
        assert list(report.latencies) == expected

    def test_empty_request_list_rejected(self, rng):
        server, _ = self._server(rng)
        with pytest.raises(ValueError):
            server.serve([])

    def test_serving_config_validation(self):
        with pytest.raises(ValueError):
            ServingConfig(num_requests=0)
        with pytest.raises(ValueError):
            ServingConfig(qps=-1.0)
        with pytest.raises(ValueError):
            ServingConfig(slo_seconds=0.0)
        with pytest.raises(ValueError):
            ServingConfig(batch_cap=0)
        with pytest.raises(ValueError):
            ServingConfig(placement="sideways")
        with pytest.raises(ValueError):
            ServingConfig(timeout_seconds=-0.1)


# --------------------------------------------------------------------- #
# Pool-sharded serving
# --------------------------------------------------------------------- #
class TestPoolServing:
    def test_sharded_flush_conserves_state_counts(self):
        pool = AcceleratorPool(_platform(), 3)
        for batch in (1, 5, 8, 17):
            report = pool.infer_batch(batch)
            assert report.num_states == batch
            assert sum(shard.num_states for _d, shard in report.shards) == batch

    def test_pool_server_actions_match_single_platform(self, rng):
        agent = _agent(rng)
        config = ServingConfig(
            num_requests=64, qps=1500.0, slo_seconds=0.02, batch_cap=8, seed=3
        )
        load = SyntheticLoadGenerator(STATE_DIM, 1500.0, seed=3)
        single = PolicyServer.from_agent(agent, _platform(), config)
        pooled = PolicyServer.from_agent(
            agent, AcceleratorPool(_platform(), 2), config
        )
        np.testing.assert_array_equal(
            single.serve_load(load).actions, pooled.serve_load(load).actions
        )

    def test_one_device_pool_report_is_bit_exact_with_platform(self, rng):
        agent = _agent(rng)
        config = ServingConfig(
            num_requests=64, qps=1500.0, slo_seconds=0.02, batch_cap=8, seed=3
        )
        load = SyntheticLoadGenerator(STATE_DIM, 1500.0, seed=3)
        single = PolicyServer.from_agent(agent, _platform(), config)
        pooled = PolicyServer.from_agent(
            agent, AcceleratorPool(_platform(), 1), config
        )
        assert single.serve_load(load).report == pooled.serve_load(load).report

    def test_pool_serving_conserves_requests(self, rng):
        agent = _agent(rng)
        config = ServingConfig(
            num_requests=80, qps=1500.0, slo_seconds=0.02, batch_cap=8, seed=3
        )
        server = PolicyServer.from_agent(
            agent, AcceleratorPool(_platform(), 3), config
        )
        report = server.serve_load(
            SyntheticLoadGenerator(STATE_DIM, 1500.0, seed=3)
        ).report
        served = sorted(
            rid for flush in report.flushes for rid in flush.request_ids
        )
        assert served == list(range(80))


# --------------------------------------------------------------------- #
# Checkpoint → server round trip
# --------------------------------------------------------------------- #
class TestCheckpointRoundTrip:
    def _partially_switched_agent(self, rng):
        """A fixar-dynamic agent mid-way through a per-layer precision
        schedule: actor layers frozen at 16 bits, critic still tracking."""
        from repro.rl import PerLayerSchedulePolicy

        agent = _agent(rng, regime="fixar-dynamic")
        numerics = agent.numerics
        for layer, bounds in (
            ("actor_fc0", (-1.5, 2.5)),
            ("actor_out", (-1.0, 1.0)),
            ("critic_fc0", (-4.0, 6.0)),
        ):
            numerics.observe_activation(np.array(bounds), layer=layer)
        policy = PerLayerSchedulePolicy(numerics, [("actor", 16, 0)])
        event = policy.on_timestep(10)
        assert event is not None and set(event.layers) == {"actor_fc0", "actor_out"}
        return agent

    def test_restore_rebuilds_a_compatible_agent(self, rng, tmp_path):
        agent = _agent(rng, hidden=(12, 8))
        path = save_agent(agent, tmp_path / "actor.npz")
        restored, metadata = restore_serving_agent(path)
        assert metadata["agent_class"] == "DDPGAgent"
        assert tuple(restored.config.hidden_sizes) == (12, 8)
        state = rng.normal(size=STATE_DIM)
        np.testing.assert_array_equal(agent.act(state), restored.act(state))

    def test_mid_switch_checkpoint_serves_bit_exact_actions(self, rng, tmp_path):
        agent = self._partially_switched_agent(rng)
        path = save_agent(agent, tmp_path / "mid_switch.npz")
        config = ServingConfig(
            num_requests=48, qps=1500.0, slo_seconds=0.02, batch_cap=8, seed=3
        )
        server = PolicyServer.from_checkpoint(path, _platform(), config)
        requests = SyntheticLoadGenerator(STATE_DIM, 1500.0, seed=3).generate(48)
        result = server.serve(requests)
        states = np.stack([r.state for r in requests])
        expected = ActorPolicy.from_agent(agent).act_batch(states)
        np.testing.assert_array_equal(result.actions, expected)  # ==-exact

    def test_restored_precision_state_prices_the_server(self, rng, tmp_path):
        """The server's platform is re-priced through the restored
        partially-switched plan: mixed per-layer payload width, strictly
        between the uniform full- and half-precision extremes."""
        agent = self._partially_switched_agent(rng)
        path = save_agent(agent, tmp_path / "mid_switch.npz")
        config = ServingConfig(num_requests=8, batch_cap=8, seed=0)
        server = PolicyServer.from_checkpoint(path, _platform(), config)
        restored_profile = server.policy.actor.numerics.precision_profile()
        assert restored_profile == agent.numerics.precision_profile()
        width = server.platform.transfer_bytes_per_value
        assert 2 < width < 4
        expected = _platform().with_precision_state(
            agent.numerics.precision_profile()
        )
        assert width == expected.transfer_bytes_per_value

    def test_mid_switch_restore_is_quantizer_exact(self, rng, tmp_path):
        agent = self._partially_switched_agent(rng)
        path = save_agent(agent, tmp_path / "mid_switch.npz")
        restored, _ = restore_serving_agent(path)
        for layer in ("actor_fc0", "actor_out"):
            original = agent.numerics.layer_quantizers[layer]
            roundtripped = restored.numerics.layer_quantizers[layer]
            assert roundtripped.delta == original.delta
            assert roundtripped.zero_point == original.zero_point
        samples = np.linspace(-1.5, 2.5, 64)
        np.testing.assert_array_equal(
            restored.numerics.project_activation(samples, layer="actor_fc0"),
            agent.numerics.project_activation(samples, layer="actor_fc0"),
        )

    def test_fixed16_checkpoint_serves_at_half_payload(self, rng, tmp_path):
        full_agent = _agent(rng, regime="float32")
        half_agent = _agent(np.random.default_rng(2), regime="fixed16")
        config = ServingConfig(num_requests=8, batch_cap=8, seed=0)
        full_path = save_agent(full_agent, tmp_path / "full.npz")
        half_path = save_agent(half_agent, tmp_path / "half.npz")
        full = PolicyServer.from_checkpoint(full_path, _platform(), config)
        half = PolicyServer.from_checkpoint(half_path, _platform(), config)
        load = SyntheticLoadGenerator(STATE_DIM, 1500.0, seed=3)
        ratio = (
            half.serve_load(load).report.pcie_bytes_per_request
            / full.serve_load(load).report.pcie_bytes_per_request
        )
        assert ratio == 0.5
